/root/repo/target/release/deps/table9-bba79a46b8dd9f96.d: crates/bench/src/bin/table9.rs

/root/repo/target/release/deps/table9-bba79a46b8dd9f96: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
