/root/repo/target/release/deps/dim_mwp-647dade49c29f2e4.d: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

/root/repo/target/release/deps/libdim_mwp-647dade49c29f2e4.rlib: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

/root/repo/target/release/deps/libdim_mwp-647dade49c29f2e4.rmeta: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

crates/mwp/src/lib.rs:
crates/mwp/src/augment.rs:
crates/mwp/src/equation.rs:
crates/mwp/src/gen.rs:
crates/mwp/src/problem.rs:
crates/mwp/src/solve.rs:
crates/mwp/src/stats.rs:
crates/mwp/src/tokenize.rs:
