/root/repo/target/release/deps/dim_core-849decf255169659.d: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/dim_core-849decf255169659: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/dimks.rs:
crates/core/src/experiments.rs:
crates/core/src/pipeline.rs:
