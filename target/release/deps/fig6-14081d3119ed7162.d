/root/repo/target/release/deps/fig6-14081d3119ed7162.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-14081d3119ed7162: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
