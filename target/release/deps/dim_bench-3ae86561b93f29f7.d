/root/repo/target/release/deps/dim_bench-3ae86561b93f29f7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/dim_bench-3ae86561b93f29f7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
