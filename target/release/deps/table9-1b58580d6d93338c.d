/root/repo/target/release/deps/table9-1b58580d6d93338c.d: crates/bench/src/bin/table9.rs

/root/repo/target/release/deps/table9-1b58580d6d93338c: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
