/root/repo/target/release/deps/dim_models-7a6f609c07c3cd27.d: crates/models/src/lib.rs crates/models/src/knowledge.rs crates/models/src/profile.rs crates/models/src/simllm.rs crates/models/src/tinylm/mod.rs crates/models/src/tinylm/choice.rs crates/models/src/tinylm/eqgen.rs crates/models/src/tinylm/extract.rs crates/models/src/tinylm/features.rs crates/models/src/tinylm/linear.rs crates/models/src/wolfram.rs

/root/repo/target/release/deps/dim_models-7a6f609c07c3cd27: crates/models/src/lib.rs crates/models/src/knowledge.rs crates/models/src/profile.rs crates/models/src/simllm.rs crates/models/src/tinylm/mod.rs crates/models/src/tinylm/choice.rs crates/models/src/tinylm/eqgen.rs crates/models/src/tinylm/extract.rs crates/models/src/tinylm/features.rs crates/models/src/tinylm/linear.rs crates/models/src/wolfram.rs

crates/models/src/lib.rs:
crates/models/src/knowledge.rs:
crates/models/src/profile.rs:
crates/models/src/simllm.rs:
crates/models/src/tinylm/mod.rs:
crates/models/src/tinylm/choice.rs:
crates/models/src/tinylm/eqgen.rs:
crates/models/src/tinylm/extract.rs:
crates/models/src/tinylm/features.rs:
crates/models/src/tinylm/linear.rs:
crates/models/src/wolfram.rs:
