/root/repo/target/release/deps/ablation_algo1-81fe3bef9df7a2c7.d: crates/bench/src/bin/ablation_algo1.rs

/root/repo/target/release/deps/ablation_algo1-81fe3bef9df7a2c7: crates/bench/src/bin/ablation_algo1.rs

crates/bench/src/bin/ablation_algo1.rs:
