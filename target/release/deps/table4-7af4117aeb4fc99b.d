/root/repo/target/release/deps/table4-7af4117aeb4fc99b.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-7af4117aeb4fc99b: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
