/root/repo/target/release/deps/linking-a2eccc14c3305026.d: crates/bench/benches/linking.rs

/root/repo/target/release/deps/linking-a2eccc14c3305026: crates/bench/benches/linking.rs

crates/bench/benches/linking.rs:
