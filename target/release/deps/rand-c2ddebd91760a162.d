/root/repo/target/release/deps/rand-c2ddebd91760a162.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-c2ddebd91760a162.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-c2ddebd91760a162.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
