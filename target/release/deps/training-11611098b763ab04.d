/root/repo/target/release/deps/training-11611098b763ab04.d: crates/bench/benches/training.rs

/root/repo/target/release/deps/training-11611098b763ab04: crates/bench/benches/training.rs

crates/bench/benches/training.rs:
