/root/repo/target/release/deps/dim_mwp-20d4595a28ef346a.d: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

/root/repo/target/release/deps/dim_mwp-20d4595a28ef346a: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

crates/mwp/src/lib.rs:
crates/mwp/src/augment.rs:
crates/mwp/src/equation.rs:
crates/mwp/src/gen.rs:
crates/mwp/src/problem.rs:
crates/mwp/src/solve.rs:
crates/mwp/src/stats.rs:
crates/mwp/src/tokenize.rs:
