/root/repo/target/release/deps/serde-46c6fa56bf99afc6.d: crates/serde/src/lib.rs

/root/repo/target/release/deps/libserde-46c6fa56bf99afc6.rlib: crates/serde/src/lib.rs

/root/repo/target/release/deps/libserde-46c6fa56bf99afc6.rmeta: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
