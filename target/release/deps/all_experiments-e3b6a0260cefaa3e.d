/root/repo/target/release/deps/all_experiments-e3b6a0260cefaa3e.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-e3b6a0260cefaa3e: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
