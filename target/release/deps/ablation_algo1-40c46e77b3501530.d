/root/repo/target/release/deps/ablation_algo1-40c46e77b3501530.d: crates/bench/src/bin/ablation_algo1.rs

/root/repo/target/release/deps/ablation_algo1-40c46e77b3501530: crates/bench/src/bin/ablation_algo1.rs

crates/bench/src/bin/ablation_algo1.rs:
