/root/repo/target/release/deps/fig4-850e9765d7bd9dc8.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-850e9765d7bd9dc8: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
