/root/repo/target/release/deps/fig6-a78a739fa23720d4.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-a78a739fa23720d4: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
