/root/repo/target/release/deps/dimension_perception-4b205f0f5df558b7.d: src/lib.rs

/root/repo/target/release/deps/dimension_perception-4b205f0f5df558b7: src/lib.rs

src/lib.rs:
