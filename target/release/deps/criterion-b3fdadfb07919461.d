/root/repo/target/release/deps/criterion-b3fdadfb07919461.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b3fdadfb07919461.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b3fdadfb07919461.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
