/root/repo/target/release/deps/dim_embed-0760e7bba96cad67.d: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs

/root/repo/target/release/deps/libdim_embed-0760e7bba96cad67.rlib: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs

/root/repo/target/release/deps/libdim_embed-0760e7bba96cad67.rmeta: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs

crates/embed/src/lib.rs:
crates/embed/src/model.rs:
crates/embed/src/tokenize.rs:
