/root/repo/target/release/deps/table8-26d4ba67ec728a64.d: crates/bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-26d4ba67ec728a64: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
