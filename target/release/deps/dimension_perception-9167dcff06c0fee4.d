/root/repo/target/release/deps/dimension_perception-9167dcff06c0fee4.d: src/lib.rs

/root/repo/target/release/deps/libdimension_perception-9167dcff06c0fee4.rlib: src/lib.rs

/root/repo/target/release/deps/libdimension_perception-9167dcff06c0fee4.rmeta: src/lib.rs

src/lib.rs:
