/root/repo/target/release/deps/fig4-b6da6afacfdefc99.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-b6da6afacfdefc99: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
