/root/repo/target/release/deps/ablation_linking-00723569f10b4e91.d: crates/bench/src/bin/ablation_linking.rs

/root/repo/target/release/deps/ablation_linking-00723569f10b4e91: crates/bench/src/bin/ablation_linking.rs

crates/bench/src/bin/ablation_linking.rs:
