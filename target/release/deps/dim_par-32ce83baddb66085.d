/root/repo/target/release/deps/dim_par-32ce83baddb66085.d: crates/par/src/lib.rs

/root/repo/target/release/deps/libdim_par-32ce83baddb66085.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/libdim_par-32ce83baddb66085.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
