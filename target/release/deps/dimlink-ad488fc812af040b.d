/root/repo/target/release/deps/dimlink-ad488fc812af040b.d: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/release/deps/libdimlink-ad488fc812af040b.rlib: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/release/deps/libdimlink-ad488fc812af040b.rmeta: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

crates/dimlink/src/lib.rs:
crates/dimlink/src/annotate.rs:
crates/dimlink/src/lev.rs:
crates/dimlink/src/linker.rs:
crates/dimlink/src/numparse.rs:
