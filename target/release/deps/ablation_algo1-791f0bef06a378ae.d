/root/repo/target/release/deps/ablation_algo1-791f0bef06a378ae.d: crates/bench/src/bin/ablation_algo1.rs

/root/repo/target/release/deps/ablation_algo1-791f0bef06a378ae: crates/bench/src/bin/ablation_algo1.rs

crates/bench/src/bin/ablation_algo1.rs:
