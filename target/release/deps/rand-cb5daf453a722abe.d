/root/repo/target/release/deps/rand-cb5daf453a722abe.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/rand-cb5daf453a722abe: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
