/root/repo/target/release/deps/ablation_linking-2daea6e83c3b4979.d: crates/bench/src/bin/ablation_linking.rs

/root/repo/target/release/deps/ablation_linking-2daea6e83c3b4979: crates/bench/src/bin/ablation_linking.rs

crates/bench/src/bin/ablation_linking.rs:
