/root/repo/target/release/deps/fig6-e9622f5b9d1bff92.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-e9622f5b9d1bff92: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
