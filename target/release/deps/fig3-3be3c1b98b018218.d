/root/repo/target/release/deps/fig3-3be3c1b98b018218.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-3be3c1b98b018218: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
