/root/repo/target/release/deps/table7-f1e809edf1678952.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-f1e809edf1678952: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
