/root/repo/target/release/deps/dimks-7c34177346f90da6.d: src/bin/dimks.rs

/root/repo/target/release/deps/dimks-7c34177346f90da6: src/bin/dimks.rs

src/bin/dimks.rs:
