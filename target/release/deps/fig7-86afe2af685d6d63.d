/root/repo/target/release/deps/fig7-86afe2af685d6d63.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-86afe2af685d6d63: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
