/root/repo/target/release/deps/serde-3708d114a152f4c4.d: crates/serde/src/lib.rs

/root/repo/target/release/deps/serde-3708d114a152f4c4: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
