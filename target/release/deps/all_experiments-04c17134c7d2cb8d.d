/root/repo/target/release/deps/all_experiments-04c17134c7d2cb8d.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-04c17134c7d2cb8d: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
