/root/repo/target/release/deps/table8-f421856e1ba38bf1.d: crates/bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-f421856e1ba38bf1: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
