/root/repo/target/release/deps/table6-45a41942d562243d.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-45a41942d562243d: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
