/root/repo/target/release/deps/serde_derive-410d0034b14c77ef.d: crates/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-410d0034b14c77ef: crates/serde_derive/src/lib.rs

crates/serde_derive/src/lib.rs:
