/root/repo/target/release/deps/all_experiments-a726465f194cf94d.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-a726465f194cf94d: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
