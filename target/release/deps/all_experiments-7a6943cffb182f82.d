/root/repo/target/release/deps/all_experiments-7a6943cffb182f82.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-7a6943cffb182f82: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
