/root/repo/target/release/deps/table7-7828ea7659e06269.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-7828ea7659e06269: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
