/root/repo/target/release/deps/kb_ops-9f56fc821307c50a.d: crates/bench/benches/kb_ops.rs

/root/repo/target/release/deps/kb_ops-9f56fc821307c50a: crates/bench/benches/kb_ops.rs

crates/bench/benches/kb_ops.rs:
