/root/repo/target/release/deps/table9-f168464e2c48153e.d: crates/bench/src/bin/table9.rs

/root/repo/target/release/deps/table9-f168464e2c48153e: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
