/root/repo/target/release/deps/dim_bench-fb1646e94bd403d6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdim_bench-fb1646e94bd403d6.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdim_bench-fb1646e94bd403d6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
