/root/repo/target/release/deps/construction-cef31d8640b3b5ea.d: crates/bench/benches/construction.rs

/root/repo/target/release/deps/construction-cef31d8640b3b5ea: crates/bench/benches/construction.rs

crates/bench/benches/construction.rs:
