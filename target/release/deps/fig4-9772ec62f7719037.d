/root/repo/target/release/deps/fig4-9772ec62f7719037.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-9772ec62f7719037: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
