/root/repo/target/release/deps/fig6-b547b6fd9dd18e62.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-b547b6fd9dd18e62: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
