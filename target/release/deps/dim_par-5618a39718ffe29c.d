/root/repo/target/release/deps/dim_par-5618a39718ffe29c.d: crates/par/src/lib.rs

/root/repo/target/release/deps/dim_par-5618a39718ffe29c: crates/par/src/lib.rs

crates/par/src/lib.rs:
