/root/repo/target/release/deps/dimension_perception-a9f06e911cff6ef0.d: src/lib.rs

/root/repo/target/release/deps/libdimension_perception-a9f06e911cff6ef0.rlib: src/lib.rs

/root/repo/target/release/deps/libdimension_perception-a9f06e911cff6ef0.rmeta: src/lib.rs

src/lib.rs:
