/root/repo/target/release/deps/serde_json-16aeb762df3011da.d: crates/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-16aeb762df3011da.rlib: crates/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-16aeb762df3011da.rmeta: crates/serde_json/src/lib.rs

crates/serde_json/src/lib.rs:
