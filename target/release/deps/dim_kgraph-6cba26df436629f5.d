/root/repo/target/release/deps/dim_kgraph-6cba26df436629f5.d: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs

/root/repo/target/release/deps/dim_kgraph-6cba26df436629f5: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs

crates/kgraph/src/lib.rs:
crates/kgraph/src/store.rs:
crates/kgraph/src/synthesize.rs:
