/root/repo/target/release/deps/mwp_ops-6d9cb7833c9f2ee3.d: crates/bench/benches/mwp_ops.rs

/root/repo/target/release/deps/mwp_ops-6d9cb7833c9f2ee3: crates/bench/benches/mwp_ops.rs

crates/bench/benches/mwp_ops.rs:
