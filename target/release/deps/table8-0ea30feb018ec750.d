/root/repo/target/release/deps/table8-0ea30feb018ec750.d: crates/bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-0ea30feb018ec750: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
