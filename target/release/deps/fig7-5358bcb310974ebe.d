/root/repo/target/release/deps/fig7-5358bcb310974ebe.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-5358bcb310974ebe: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
