/root/repo/target/release/deps/ablation_algo1-d2ee9bb018eac29f.d: crates/bench/src/bin/ablation_algo1.rs

/root/repo/target/release/deps/ablation_algo1-d2ee9bb018eac29f: crates/bench/src/bin/ablation_algo1.rs

crates/bench/src/bin/ablation_algo1.rs:
