/root/repo/target/release/deps/fig3-4860885272beef15.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-4860885272beef15: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
