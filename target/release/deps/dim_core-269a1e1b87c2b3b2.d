/root/repo/target/release/deps/dim_core-269a1e1b87c2b3b2.d: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/libdim_core-269a1e1b87c2b3b2.rlib: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/libdim_core-269a1e1b87c2b3b2.rmeta: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/dimks.rs:
crates/core/src/experiments.rs:
crates/core/src/pipeline.rs:
