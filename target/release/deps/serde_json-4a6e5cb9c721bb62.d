/root/repo/target/release/deps/serde_json-4a6e5cb9c721bb62.d: crates/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-4a6e5cb9c721bb62: crates/serde_json/src/lib.rs

crates/serde_json/src/lib.rs:
