/root/repo/target/release/deps/dim_corpus-4ba6a0138f3b912e.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs

/root/repo/target/release/deps/dim_corpus-4ba6a0138f3b912e: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/mlm.rs:
crates/corpus/src/noise.rs:
crates/corpus/src/sentence.rs:
