/root/repo/target/release/deps/dimks-d6ca62512dc3a394.d: src/bin/dimks.rs

/root/repo/target/release/deps/dimks-d6ca62512dc3a394: src/bin/dimks.rs

src/bin/dimks.rs:
