/root/repo/target/release/deps/fig7-50241495c7fc719d.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-50241495c7fc719d: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
