/root/repo/target/release/deps/table9-de2a0fa5a6a1d9ff.d: crates/bench/src/bin/table9.rs

/root/repo/target/release/deps/table9-de2a0fa5a6a1d9ff: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
