/root/repo/target/release/deps/dimeval-d5385b81a98082e7.d: crates/dimeval/src/lib.rs crates/dimeval/src/algo1.rs crates/dimeval/src/algo2.rs crates/dimeval/src/benchmark.rs crates/dimeval/src/cot.rs crates/dimeval/src/gen.rs crates/dimeval/src/metrics.rs crates/dimeval/src/task.rs

/root/repo/target/release/deps/dimeval-d5385b81a98082e7: crates/dimeval/src/lib.rs crates/dimeval/src/algo1.rs crates/dimeval/src/algo2.rs crates/dimeval/src/benchmark.rs crates/dimeval/src/cot.rs crates/dimeval/src/gen.rs crates/dimeval/src/metrics.rs crates/dimeval/src/task.rs

crates/dimeval/src/lib.rs:
crates/dimeval/src/algo1.rs:
crates/dimeval/src/algo2.rs:
crates/dimeval/src/benchmark.rs:
crates/dimeval/src/cot.rs:
crates/dimeval/src/gen.rs:
crates/dimeval/src/metrics.rs:
crates/dimeval/src/task.rs:
