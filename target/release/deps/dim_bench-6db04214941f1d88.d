/root/repo/target/release/deps/dim_bench-6db04214941f1d88.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdim_bench-6db04214941f1d88.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdim_bench-6db04214941f1d88.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
