/root/repo/target/release/deps/table6-4e148ef777a2ff74.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-4e148ef777a2ff74: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
