/root/repo/target/release/deps/table4-f1253384bdbe94c6.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-f1253384bdbe94c6: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
