/root/repo/target/release/deps/dim_corpus-d753e0e0f78e9f57.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs

/root/repo/target/release/deps/libdim_corpus-d753e0e0f78e9f57.rlib: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs

/root/repo/target/release/deps/libdim_corpus-d753e0e0f78e9f57.rmeta: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/mlm.rs:
crates/corpus/src/noise.rs:
crates/corpus/src/sentence.rs:
