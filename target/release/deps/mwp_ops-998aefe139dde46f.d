/root/repo/target/release/deps/mwp_ops-998aefe139dde46f.d: crates/bench/benches/mwp_ops.rs

/root/repo/target/release/deps/mwp_ops-998aefe139dde46f: crates/bench/benches/mwp_ops.rs

crates/bench/benches/mwp_ops.rs:
