/root/repo/target/release/deps/dim_core-3ad27b4394b6a35c.d: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/libdim_core-3ad27b4394b6a35c.rlib: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/libdim_core-3ad27b4394b6a35c.rmeta: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/dimks.rs:
crates/core/src/experiments.rs:
crates/core/src/pipeline.rs:
