/root/repo/target/release/deps/table6-c7f1bfb6660ef447.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-c7f1bfb6660ef447: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
