/root/repo/target/release/deps/construction-a3251954a230e10b.d: crates/bench/benches/construction.rs

/root/repo/target/release/deps/construction-a3251954a230e10b: crates/bench/benches/construction.rs

crates/bench/benches/construction.rs:
