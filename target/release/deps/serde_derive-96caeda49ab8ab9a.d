/root/repo/target/release/deps/serde_derive-96caeda49ab8ab9a.d: crates/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-96caeda49ab8ab9a.so: crates/serde_derive/src/lib.rs

crates/serde_derive/src/lib.rs:
