/root/repo/target/release/deps/fig4-8b80a690ba9f8189.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-8b80a690ba9f8189: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
