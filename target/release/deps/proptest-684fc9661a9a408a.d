/root/repo/target/release/deps/proptest-684fc9661a9a408a.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-684fc9661a9a408a.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-684fc9661a9a408a.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
