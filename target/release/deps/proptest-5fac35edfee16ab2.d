/root/repo/target/release/deps/proptest-5fac35edfee16ab2.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-5fac35edfee16ab2: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
