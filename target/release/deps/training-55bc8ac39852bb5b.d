/root/repo/target/release/deps/training-55bc8ac39852bb5b.d: crates/bench/benches/training.rs

/root/repo/target/release/deps/training-55bc8ac39852bb5b: crates/bench/benches/training.rs

crates/bench/benches/training.rs:
