/root/repo/target/release/deps/ablation_linking-7d210c927659068b.d: crates/bench/src/bin/ablation_linking.rs

/root/repo/target/release/deps/ablation_linking-7d210c927659068b: crates/bench/src/bin/ablation_linking.rs

crates/bench/src/bin/ablation_linking.rs:
