/root/repo/target/release/deps/dimlink-7bb6b5cc48a7c6a0.d: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/release/deps/dimlink-7bb6b5cc48a7c6a0: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

crates/dimlink/src/lib.rs:
crates/dimlink/src/annotate.rs:
crates/dimlink/src/lev.rs:
crates/dimlink/src/linker.rs:
crates/dimlink/src/numparse.rs:
