/root/repo/target/release/deps/table7-fce1596771242b4d.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-fce1596771242b4d: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
