/root/repo/target/release/deps/fig3-b8758d736fc94eb8.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-b8758d736fc94eb8: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
