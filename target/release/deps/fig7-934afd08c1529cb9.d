/root/repo/target/release/deps/fig7-934afd08c1529cb9.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-934afd08c1529cb9: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
