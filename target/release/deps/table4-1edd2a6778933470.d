/root/repo/target/release/deps/table4-1edd2a6778933470.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-1edd2a6778933470: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
