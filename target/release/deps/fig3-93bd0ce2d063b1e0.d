/root/repo/target/release/deps/fig3-93bd0ce2d063b1e0.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-93bd0ce2d063b1e0: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
