/root/repo/target/release/deps/table8-85cab9d7c42b65d4.d: crates/bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-85cab9d7c42b65d4: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
