/root/repo/target/release/deps/dimks-5792befc793fe4e0.d: src/bin/dimks.rs

/root/repo/target/release/deps/dimks-5792befc793fe4e0: src/bin/dimks.rs

src/bin/dimks.rs:
