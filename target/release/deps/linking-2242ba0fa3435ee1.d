/root/repo/target/release/deps/linking-2242ba0fa3435ee1.d: crates/bench/benches/linking.rs

/root/repo/target/release/deps/linking-2242ba0fa3435ee1: crates/bench/benches/linking.rs

crates/bench/benches/linking.rs:
