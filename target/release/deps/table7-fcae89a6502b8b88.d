/root/repo/target/release/deps/table7-fcae89a6502b8b88.d: crates/bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-fcae89a6502b8b88: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
