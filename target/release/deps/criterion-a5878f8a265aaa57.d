/root/repo/target/release/deps/criterion-a5878f8a265aaa57.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-a5878f8a265aaa57: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
