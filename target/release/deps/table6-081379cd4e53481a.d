/root/repo/target/release/deps/table6-081379cd4e53481a.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-081379cd4e53481a: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
