/root/repo/target/release/deps/table4-f79c8152f4ef1e47.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-f79c8152f4ef1e47: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
