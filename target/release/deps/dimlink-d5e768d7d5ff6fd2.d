/root/repo/target/release/deps/dimlink-d5e768d7d5ff6fd2.d: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/release/deps/libdimlink-d5e768d7d5ff6fd2.rlib: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/release/deps/libdimlink-d5e768d7d5ff6fd2.rmeta: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

crates/dimlink/src/lib.rs:
crates/dimlink/src/annotate.rs:
crates/dimlink/src/lev.rs:
crates/dimlink/src/linker.rs:
crates/dimlink/src/numparse.rs:
