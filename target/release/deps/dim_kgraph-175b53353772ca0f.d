/root/repo/target/release/deps/dim_kgraph-175b53353772ca0f.d: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs

/root/repo/target/release/deps/libdim_kgraph-175b53353772ca0f.rlib: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs

/root/repo/target/release/deps/libdim_kgraph-175b53353772ca0f.rmeta: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs

crates/kgraph/src/lib.rs:
crates/kgraph/src/store.rs:
crates/kgraph/src/synthesize.rs:
