/root/repo/target/release/deps/kb_ops-cb4160e4f4ce34dd.d: crates/bench/benches/kb_ops.rs

/root/repo/target/release/deps/kb_ops-cb4160e4f4ce34dd: crates/bench/benches/kb_ops.rs

crates/bench/benches/kb_ops.rs:
