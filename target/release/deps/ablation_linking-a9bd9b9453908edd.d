/root/repo/target/release/deps/ablation_linking-a9bd9b9453908edd.d: crates/bench/src/bin/ablation_linking.rs

/root/repo/target/release/deps/ablation_linking-a9bd9b9453908edd: crates/bench/src/bin/ablation_linking.rs

crates/bench/src/bin/ablation_linking.rs:
