/root/repo/target/release/deps/dim_embed-3365eb0000eadeee.d: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs

/root/repo/target/release/deps/dim_embed-3365eb0000eadeee: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs

crates/embed/src/lib.rs:
crates/embed/src/model.rs:
crates/embed/src/tokenize.rs:
