/root/repo/target/release/deps/serde_derive-d289211cd712ac06.d: crates/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-d289211cd712ac06.so: crates/serde_derive/src/lib.rs

crates/serde_derive/src/lib.rs:
