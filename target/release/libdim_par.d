/root/repo/target/release/libdim_par.rlib: /root/repo/crates/par/src/lib.rs
