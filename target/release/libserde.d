/root/repo/target/release/libserde.rlib: /root/repo/crates/serde/src/lib.rs /root/repo/crates/serde_derive/src/lib.rs
