/root/repo/target/release/libserde_json.rlib: /root/repo/crates/serde/src/lib.rs /root/repo/crates/serde_derive/src/lib.rs /root/repo/crates/serde_json/src/lib.rs
