/root/repo/target/release/libproptest.rlib: /root/repo/crates/proptest/src/lib.rs /root/repo/crates/rand/src/lib.rs
