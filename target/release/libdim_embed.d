/root/repo/target/release/libdim_embed.rlib: /root/repo/crates/embed/src/lib.rs /root/repo/crates/embed/src/model.rs /root/repo/crates/embed/src/tokenize.rs /root/repo/crates/rand/src/lib.rs
