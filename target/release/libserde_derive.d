/root/repo/target/release/libserde_derive.so: /root/repo/crates/serde_derive/src/lib.rs
