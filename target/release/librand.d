/root/repo/target/release/librand.rlib: /root/repo/crates/rand/src/lib.rs
