/root/repo/target/debug/deps/table8-9be238f6d363e098.d: crates/bench/src/bin/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtable8-9be238f6d363e098.rmeta: crates/bench/src/bin/table8.rs Cargo.toml

crates/bench/src/bin/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
