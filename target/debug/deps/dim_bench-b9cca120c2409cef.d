/root/repo/target/debug/deps/dim_bench-b9cca120c2409cef.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dim_bench-b9cca120c2409cef: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
