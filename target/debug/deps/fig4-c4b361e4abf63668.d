/root/repo/target/debug/deps/fig4-c4b361e4abf63668.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-c4b361e4abf63668: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
