/root/repo/target/debug/deps/ablation_algo1-7a783a6fd143b6b2.d: crates/bench/src/bin/ablation_algo1.rs Cargo.toml

/root/repo/target/debug/deps/libablation_algo1-7a783a6fd143b6b2.rmeta: crates/bench/src/bin/ablation_algo1.rs Cargo.toml

crates/bench/src/bin/ablation_algo1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
