/root/repo/target/debug/deps/table6-4129ef80b8271e7a.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-4129ef80b8271e7a: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
