/root/repo/target/debug/deps/dim_embed-540cbc73bc8116a9.d: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs

/root/repo/target/debug/deps/dim_embed-540cbc73bc8116a9: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs

crates/embed/src/lib.rs:
crates/embed/src/model.rs:
crates/embed/src/tokenize.rs:
