/root/repo/target/debug/deps/dim_core-c5911387d2a6a591.d: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/dim_core-c5911387d2a6a591: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/dimks.rs:
crates/core/src/experiments.rs:
crates/core/src/pipeline.rs:
