/root/repo/target/debug/deps/api_surface-c3c5d151b5827f98.d: tests/api_surface.rs Cargo.toml

/root/repo/target/debug/deps/libapi_surface-c3c5d151b5827f98.rmeta: tests/api_surface.rs Cargo.toml

tests/api_surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
