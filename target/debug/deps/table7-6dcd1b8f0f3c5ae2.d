/root/repo/target/debug/deps/table7-6dcd1b8f0f3c5ae2.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-6dcd1b8f0f3c5ae2: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
