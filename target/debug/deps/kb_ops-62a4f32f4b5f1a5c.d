/root/repo/target/debug/deps/kb_ops-62a4f32f4b5f1a5c.d: crates/bench/benches/kb_ops.rs Cargo.toml

/root/repo/target/debug/deps/libkb_ops-62a4f32f4b5f1a5c.rmeta: crates/bench/benches/kb_ops.rs Cargo.toml

crates/bench/benches/kb_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
