/root/repo/target/debug/deps/dim_core-2c8718c49668902e.d: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/libdim_core-2c8718c49668902e.rlib: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/libdim_core-2c8718c49668902e.rmeta: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/dimks.rs:
crates/core/src/experiments.rs:
crates/core/src/pipeline.rs:
