/root/repo/target/debug/deps/dim_corpus-ecb5402902aaeec8.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs Cargo.toml

/root/repo/target/debug/deps/libdim_corpus-ecb5402902aaeec8.rmeta: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/mlm.rs:
crates/corpus/src/noise.rs:
crates/corpus/src/sentence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
