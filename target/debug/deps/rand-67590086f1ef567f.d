/root/repo/target/debug/deps/rand-67590086f1ef567f.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-67590086f1ef567f.rlib: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-67590086f1ef567f.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
