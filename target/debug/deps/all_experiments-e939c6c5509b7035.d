/root/repo/target/debug/deps/all_experiments-e939c6c5509b7035.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-e939c6c5509b7035: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
