/root/repo/target/debug/deps/dim_corpus-82722b3e41e15d63.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs

/root/repo/target/debug/deps/dim_corpus-82722b3e41e15d63: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/mlm.rs:
crates/corpus/src/noise.rs:
crates/corpus/src/sentence.rs:
