/root/repo/target/debug/deps/table4-f655ca7c67ac3f4e.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-f655ca7c67ac3f4e: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
