/root/repo/target/debug/deps/dimension_perception-755929f5cd69f06e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdimension_perception-755929f5cd69f06e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
