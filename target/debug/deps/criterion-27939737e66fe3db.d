/root/repo/target/debug/deps/criterion-27939737e66fe3db.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-27939737e66fe3db.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
