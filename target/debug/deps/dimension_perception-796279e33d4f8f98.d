/root/repo/target/debug/deps/dimension_perception-796279e33d4f8f98.d: src/lib.rs

/root/repo/target/debug/deps/libdimension_perception-796279e33d4f8f98.rlib: src/lib.rs

/root/repo/target/debug/deps/libdimension_perception-796279e33d4f8f98.rmeta: src/lib.rs

src/lib.rs:
