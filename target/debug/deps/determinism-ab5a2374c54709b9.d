/root/repo/target/debug/deps/determinism-ab5a2374c54709b9.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-ab5a2374c54709b9: tests/determinism.rs

tests/determinism.rs:
