/root/repo/target/debug/deps/dimks-2b7e1ee67f3fa429.d: src/bin/dimks.rs Cargo.toml

/root/repo/target/debug/deps/libdimks-2b7e1ee67f3fa429.rmeta: src/bin/dimks.rs Cargo.toml

src/bin/dimks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
