/root/repo/target/debug/deps/dim_core-2178f5c5268b6901.d: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/libdim_core-2178f5c5268b6901.rlib: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/libdim_core-2178f5c5268b6901.rmeta: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/dimks.rs:
crates/core/src/experiments.rs:
crates/core/src/pipeline.rs:
