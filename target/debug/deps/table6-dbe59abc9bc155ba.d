/root/repo/target/debug/deps/table6-dbe59abc9bc155ba.d: crates/bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-dbe59abc9bc155ba.rmeta: crates/bench/src/bin/table6.rs Cargo.toml

crates/bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
