/root/repo/target/debug/deps/dim_bench-bd77c8d4a2a561dd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdim_bench-bd77c8d4a2a561dd.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdim_bench-bd77c8d4a2a561dd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
