/root/repo/target/debug/deps/paper_shapes-3414c3cbe360f4bc.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-3414c3cbe360f4bc: tests/paper_shapes.rs

tests/paper_shapes.rs:
