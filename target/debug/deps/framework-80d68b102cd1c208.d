/root/repo/target/debug/deps/framework-80d68b102cd1c208.d: tests/framework.rs Cargo.toml

/root/repo/target/debug/deps/libframework-80d68b102cd1c208.rmeta: tests/framework.rs Cargo.toml

tests/framework.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
