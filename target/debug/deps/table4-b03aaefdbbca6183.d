/root/repo/target/debug/deps/table4-b03aaefdbbca6183.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-b03aaefdbbca6183: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
