/root/repo/target/debug/deps/fig4-0eb744fa62080da1.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-0eb744fa62080da1: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
