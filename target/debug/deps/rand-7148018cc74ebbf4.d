/root/repo/target/debug/deps/rand-7148018cc74ebbf4.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/rand-7148018cc74ebbf4: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
