/root/repo/target/debug/deps/fig3-a4dc7ccac11b24cc.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-a4dc7ccac11b24cc: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
