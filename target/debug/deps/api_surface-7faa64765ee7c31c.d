/root/repo/target/debug/deps/api_surface-7faa64765ee7c31c.d: tests/api_surface.rs

/root/repo/target/debug/deps/api_surface-7faa64765ee7c31c: tests/api_surface.rs

tests/api_surface.rs:
