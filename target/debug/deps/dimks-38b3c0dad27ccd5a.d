/root/repo/target/debug/deps/dimks-38b3c0dad27ccd5a.d: src/bin/dimks.rs

/root/repo/target/debug/deps/dimks-38b3c0dad27ccd5a: src/bin/dimks.rs

src/bin/dimks.rs:
