/root/repo/target/debug/deps/dimks-a05bc7a7ceaa71e2.d: src/bin/dimks.rs Cargo.toml

/root/repo/target/debug/deps/libdimks-a05bc7a7ceaa71e2.rmeta: src/bin/dimks.rs Cargo.toml

src/bin/dimks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
