/root/repo/target/debug/deps/dimeval-3338738e182687f7.d: crates/dimeval/src/lib.rs crates/dimeval/src/algo1.rs crates/dimeval/src/algo2.rs crates/dimeval/src/benchmark.rs crates/dimeval/src/cot.rs crates/dimeval/src/gen.rs crates/dimeval/src/metrics.rs crates/dimeval/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libdimeval-3338738e182687f7.rmeta: crates/dimeval/src/lib.rs crates/dimeval/src/algo1.rs crates/dimeval/src/algo2.rs crates/dimeval/src/benchmark.rs crates/dimeval/src/cot.rs crates/dimeval/src/gen.rs crates/dimeval/src/metrics.rs crates/dimeval/src/task.rs Cargo.toml

crates/dimeval/src/lib.rs:
crates/dimeval/src/algo1.rs:
crates/dimeval/src/algo2.rs:
crates/dimeval/src/benchmark.rs:
crates/dimeval/src/cot.rs:
crates/dimeval/src/gen.rs:
crates/dimeval/src/metrics.rs:
crates/dimeval/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
