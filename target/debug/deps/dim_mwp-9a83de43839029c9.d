/root/repo/target/debug/deps/dim_mwp-9a83de43839029c9.d: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

/root/repo/target/debug/deps/dim_mwp-9a83de43839029c9: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

crates/mwp/src/lib.rs:
crates/mwp/src/augment.rs:
crates/mwp/src/equation.rs:
crates/mwp/src/gen.rs:
crates/mwp/src/problem.rs:
crates/mwp/src/solve.rs:
crates/mwp/src/stats.rs:
crates/mwp/src/tokenize.rs:
