/root/repo/target/debug/deps/fig3-03679db0021788b4.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-03679db0021788b4: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
