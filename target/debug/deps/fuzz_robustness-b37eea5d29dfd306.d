/root/repo/target/debug/deps/fuzz_robustness-b37eea5d29dfd306.d: tests/fuzz_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_robustness-b37eea5d29dfd306.rmeta: tests/fuzz_robustness.rs Cargo.toml

tests/fuzz_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
