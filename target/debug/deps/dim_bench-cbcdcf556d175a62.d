/root/repo/target/debug/deps/dim_bench-cbcdcf556d175a62.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dim_bench-cbcdcf556d175a62: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
