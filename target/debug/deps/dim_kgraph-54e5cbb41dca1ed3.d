/root/repo/target/debug/deps/dim_kgraph-54e5cbb41dca1ed3.d: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs Cargo.toml

/root/repo/target/debug/deps/libdim_kgraph-54e5cbb41dca1ed3.rmeta: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs Cargo.toml

crates/kgraph/src/lib.rs:
crates/kgraph/src/store.rs:
crates/kgraph/src/synthesize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
