/root/repo/target/debug/deps/fig6-8e0535c37512ea42.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-8e0535c37512ea42: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
