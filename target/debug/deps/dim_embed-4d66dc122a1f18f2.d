/root/repo/target/debug/deps/dim_embed-4d66dc122a1f18f2.d: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs Cargo.toml

/root/repo/target/debug/deps/libdim_embed-4d66dc122a1f18f2.rmeta: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs Cargo.toml

crates/embed/src/lib.rs:
crates/embed/src/model.rs:
crates/embed/src/tokenize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
