/root/repo/target/debug/deps/serde_derive-28c4b3700f5da677.d: crates/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-28c4b3700f5da677: crates/serde_derive/src/lib.rs

crates/serde_derive/src/lib.rs:
