/root/repo/target/debug/deps/dimlink-dab3a94c1d4ea90a.d: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/debug/deps/libdimlink-dab3a94c1d4ea90a.rlib: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/debug/deps/libdimlink-dab3a94c1d4ea90a.rmeta: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

crates/dimlink/src/lib.rs:
crates/dimlink/src/annotate.rs:
crates/dimlink/src/lev.rs:
crates/dimlink/src/linker.rs:
crates/dimlink/src/numparse.rs:
