/root/repo/target/debug/deps/mwp_ops-86bdd784a66a6769.d: crates/bench/benches/mwp_ops.rs Cargo.toml

/root/repo/target/debug/deps/libmwp_ops-86bdd784a66a6769.rmeta: crates/bench/benches/mwp_ops.rs Cargo.toml

crates/bench/benches/mwp_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
