/root/repo/target/debug/deps/dimkb-7f45dc9a74750bb7.d: crates/dimkb/src/lib.rs crates/dimkb/src/data/mod.rs crates/dimkb/src/data/base_si.rs crates/dimkb/src/data/chinese.rs crates/dimkb/src/data/derived.rs crates/dimkb/src/data/electromagnetic.rs crates/dimkb/src/data/extended.rs crates/dimkb/src/data/geometry.rs crates/dimkb/src/data/information.rs crates/dimkb/src/data/kinds.rs crates/dimkb/src/data/mechanics.rs crates/dimkb/src/data/thermal_chem.rs crates/dimkb/src/dim.rs crates/dimkb/src/error.rs crates/dimkb/src/expr.rs crates/dimkb/src/freq.rs crates/dimkb/src/kb.rs crates/dimkb/src/kind.rs crates/dimkb/src/prefix.rs crates/dimkb/src/search.rs crates/dimkb/src/spec.rs crates/dimkb/src/stats.rs crates/dimkb/src/unit.rs

/root/repo/target/debug/deps/libdimkb-7f45dc9a74750bb7.rlib: crates/dimkb/src/lib.rs crates/dimkb/src/data/mod.rs crates/dimkb/src/data/base_si.rs crates/dimkb/src/data/chinese.rs crates/dimkb/src/data/derived.rs crates/dimkb/src/data/electromagnetic.rs crates/dimkb/src/data/extended.rs crates/dimkb/src/data/geometry.rs crates/dimkb/src/data/information.rs crates/dimkb/src/data/kinds.rs crates/dimkb/src/data/mechanics.rs crates/dimkb/src/data/thermal_chem.rs crates/dimkb/src/dim.rs crates/dimkb/src/error.rs crates/dimkb/src/expr.rs crates/dimkb/src/freq.rs crates/dimkb/src/kb.rs crates/dimkb/src/kind.rs crates/dimkb/src/prefix.rs crates/dimkb/src/search.rs crates/dimkb/src/spec.rs crates/dimkb/src/stats.rs crates/dimkb/src/unit.rs

/root/repo/target/debug/deps/libdimkb-7f45dc9a74750bb7.rmeta: crates/dimkb/src/lib.rs crates/dimkb/src/data/mod.rs crates/dimkb/src/data/base_si.rs crates/dimkb/src/data/chinese.rs crates/dimkb/src/data/derived.rs crates/dimkb/src/data/electromagnetic.rs crates/dimkb/src/data/extended.rs crates/dimkb/src/data/geometry.rs crates/dimkb/src/data/information.rs crates/dimkb/src/data/kinds.rs crates/dimkb/src/data/mechanics.rs crates/dimkb/src/data/thermal_chem.rs crates/dimkb/src/dim.rs crates/dimkb/src/error.rs crates/dimkb/src/expr.rs crates/dimkb/src/freq.rs crates/dimkb/src/kb.rs crates/dimkb/src/kind.rs crates/dimkb/src/prefix.rs crates/dimkb/src/search.rs crates/dimkb/src/spec.rs crates/dimkb/src/stats.rs crates/dimkb/src/unit.rs

crates/dimkb/src/lib.rs:
crates/dimkb/src/data/mod.rs:
crates/dimkb/src/data/base_si.rs:
crates/dimkb/src/data/chinese.rs:
crates/dimkb/src/data/derived.rs:
crates/dimkb/src/data/electromagnetic.rs:
crates/dimkb/src/data/extended.rs:
crates/dimkb/src/data/geometry.rs:
crates/dimkb/src/data/information.rs:
crates/dimkb/src/data/kinds.rs:
crates/dimkb/src/data/mechanics.rs:
crates/dimkb/src/data/thermal_chem.rs:
crates/dimkb/src/dim.rs:
crates/dimkb/src/error.rs:
crates/dimkb/src/expr.rs:
crates/dimkb/src/freq.rs:
crates/dimkb/src/kb.rs:
crates/dimkb/src/kind.rs:
crates/dimkb/src/prefix.rs:
crates/dimkb/src/search.rs:
crates/dimkb/src/spec.rs:
crates/dimkb/src/stats.rs:
crates/dimkb/src/unit.rs:
