/root/repo/target/debug/deps/table6-3d765eefd9922bab.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-3d765eefd9922bab: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
