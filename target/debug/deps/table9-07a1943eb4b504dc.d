/root/repo/target/debug/deps/table9-07a1943eb4b504dc.d: crates/bench/src/bin/table9.rs Cargo.toml

/root/repo/target/debug/deps/libtable9-07a1943eb4b504dc.rmeta: crates/bench/src/bin/table9.rs Cargo.toml

crates/bench/src/bin/table9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
