/root/repo/target/debug/deps/serde_json-d57560ba179760fc.d: crates/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-d57560ba179760fc.rmeta: crates/serde_json/src/lib.rs Cargo.toml

crates/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
