/root/repo/target/debug/deps/rand-5dd180b16d1650f7.d: crates/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-5dd180b16d1650f7.rmeta: crates/rand/src/lib.rs Cargo.toml

crates/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
