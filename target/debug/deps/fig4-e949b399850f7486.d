/root/repo/target/debug/deps/fig4-e949b399850f7486.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-e949b399850f7486.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
