/root/repo/target/debug/deps/serde_json-92bbb74cf98c3f1d.d: crates/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-92bbb74cf98c3f1d.rmeta: crates/serde_json/src/lib.rs Cargo.toml

crates/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
