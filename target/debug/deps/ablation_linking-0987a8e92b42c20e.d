/root/repo/target/debug/deps/ablation_linking-0987a8e92b42c20e.d: crates/bench/src/bin/ablation_linking.rs Cargo.toml

/root/repo/target/debug/deps/libablation_linking-0987a8e92b42c20e.rmeta: crates/bench/src/bin/ablation_linking.rs Cargo.toml

crates/bench/src/bin/ablation_linking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
