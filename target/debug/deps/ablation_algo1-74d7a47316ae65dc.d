/root/repo/target/debug/deps/ablation_algo1-74d7a47316ae65dc.d: crates/bench/src/bin/ablation_algo1.rs

/root/repo/target/debug/deps/ablation_algo1-74d7a47316ae65dc: crates/bench/src/bin/ablation_algo1.rs

crates/bench/src/bin/ablation_algo1.rs:
