/root/repo/target/debug/deps/dimeval-9d1a55f056e1e2f7.d: crates/dimeval/src/lib.rs crates/dimeval/src/algo1.rs crates/dimeval/src/algo2.rs crates/dimeval/src/benchmark.rs crates/dimeval/src/cot.rs crates/dimeval/src/gen.rs crates/dimeval/src/metrics.rs crates/dimeval/src/task.rs

/root/repo/target/debug/deps/libdimeval-9d1a55f056e1e2f7.rlib: crates/dimeval/src/lib.rs crates/dimeval/src/algo1.rs crates/dimeval/src/algo2.rs crates/dimeval/src/benchmark.rs crates/dimeval/src/cot.rs crates/dimeval/src/gen.rs crates/dimeval/src/metrics.rs crates/dimeval/src/task.rs

/root/repo/target/debug/deps/libdimeval-9d1a55f056e1e2f7.rmeta: crates/dimeval/src/lib.rs crates/dimeval/src/algo1.rs crates/dimeval/src/algo2.rs crates/dimeval/src/benchmark.rs crates/dimeval/src/cot.rs crates/dimeval/src/gen.rs crates/dimeval/src/metrics.rs crates/dimeval/src/task.rs

crates/dimeval/src/lib.rs:
crates/dimeval/src/algo1.rs:
crates/dimeval/src/algo2.rs:
crates/dimeval/src/benchmark.rs:
crates/dimeval/src/cot.rs:
crates/dimeval/src/gen.rs:
crates/dimeval/src/metrics.rs:
crates/dimeval/src/task.rs:
