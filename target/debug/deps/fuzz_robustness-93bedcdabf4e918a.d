/root/repo/target/debug/deps/fuzz_robustness-93bedcdabf4e918a.d: tests/fuzz_robustness.rs

/root/repo/target/debug/deps/fuzz_robustness-93bedcdabf4e918a: tests/fuzz_robustness.rs

tests/fuzz_robustness.rs:
