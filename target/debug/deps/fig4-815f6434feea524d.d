/root/repo/target/debug/deps/fig4-815f6434feea524d.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-815f6434feea524d: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
