/root/repo/target/debug/deps/dimension_perception-e6bbf5e9507ef119.d: src/lib.rs

/root/repo/target/debug/deps/dimension_perception-e6bbf5e9507ef119: src/lib.rs

src/lib.rs:
