/root/repo/target/debug/deps/dim_mwp-d1519681fe65ccd2.d: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs Cargo.toml

/root/repo/target/debug/deps/libdim_mwp-d1519681fe65ccd2.rmeta: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs Cargo.toml

crates/mwp/src/lib.rs:
crates/mwp/src/augment.rs:
crates/mwp/src/equation.rs:
crates/mwp/src/gen.rs:
crates/mwp/src/problem.rs:
crates/mwp/src/solve.rs:
crates/mwp/src/stats.rs:
crates/mwp/src/tokenize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
