/root/repo/target/debug/deps/serde_derive-37356c6947990529.d: crates/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-37356c6947990529.so: crates/serde_derive/src/lib.rs Cargo.toml

crates/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
