/root/repo/target/debug/deps/dim_mwp-d8a13a936b51dfd5.d: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

/root/repo/target/debug/deps/libdim_mwp-d8a13a936b51dfd5.rlib: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

/root/repo/target/debug/deps/libdim_mwp-d8a13a936b51dfd5.rmeta: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

crates/mwp/src/lib.rs:
crates/mwp/src/augment.rs:
crates/mwp/src/equation.rs:
crates/mwp/src/gen.rs:
crates/mwp/src/problem.rs:
crates/mwp/src/solve.rs:
crates/mwp/src/stats.rs:
crates/mwp/src/tokenize.rs:
