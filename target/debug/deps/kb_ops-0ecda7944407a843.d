/root/repo/target/debug/deps/kb_ops-0ecda7944407a843.d: crates/bench/benches/kb_ops.rs Cargo.toml

/root/repo/target/debug/deps/libkb_ops-0ecda7944407a843.rmeta: crates/bench/benches/kb_ops.rs Cargo.toml

crates/bench/benches/kb_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
