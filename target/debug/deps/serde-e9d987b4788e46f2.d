/root/repo/target/debug/deps/serde-e9d987b4788e46f2.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/serde-e9d987b4788e46f2: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
