/root/repo/target/debug/deps/dim_par-996a1d1d32ce8273.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/dim_par-996a1d1d32ce8273: crates/par/src/lib.rs

crates/par/src/lib.rs:
