/root/repo/target/debug/deps/table8-bbfc2cd3427f94ab.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-bbfc2cd3427f94ab: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
