/root/repo/target/debug/deps/serde-ee0507d9b19e20e2.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-ee0507d9b19e20e2.rmeta: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
