/root/repo/target/debug/deps/criterion-57bdfe94609a55d9.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-57bdfe94609a55d9: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
