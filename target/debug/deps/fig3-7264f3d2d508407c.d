/root/repo/target/debug/deps/fig3-7264f3d2d508407c.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-7264f3d2d508407c.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
