/root/repo/target/debug/deps/table9-f7f818120f77854d.d: crates/bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-f7f818120f77854d: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
