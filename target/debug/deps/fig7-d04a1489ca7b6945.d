/root/repo/target/debug/deps/fig7-d04a1489ca7b6945.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-d04a1489ca7b6945: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
