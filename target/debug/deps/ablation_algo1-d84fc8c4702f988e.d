/root/repo/target/debug/deps/ablation_algo1-d84fc8c4702f988e.d: crates/bench/src/bin/ablation_algo1.rs

/root/repo/target/debug/deps/ablation_algo1-d84fc8c4702f988e: crates/bench/src/bin/ablation_algo1.rs

crates/bench/src/bin/ablation_algo1.rs:
