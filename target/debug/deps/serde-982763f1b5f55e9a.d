/root/repo/target/debug/deps/serde-982763f1b5f55e9a.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-982763f1b5f55e9a.rlib: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-982763f1b5f55e9a.rmeta: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
