/root/repo/target/debug/deps/dimks-642d62898fead23e.d: src/bin/dimks.rs

/root/repo/target/debug/deps/dimks-642d62898fead23e: src/bin/dimks.rs

src/bin/dimks.rs:
