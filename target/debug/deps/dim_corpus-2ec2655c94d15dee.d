/root/repo/target/debug/deps/dim_corpus-2ec2655c94d15dee.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs Cargo.toml

/root/repo/target/debug/deps/libdim_corpus-2ec2655c94d15dee.rmeta: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/mlm.rs:
crates/corpus/src/noise.rs:
crates/corpus/src/sentence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
