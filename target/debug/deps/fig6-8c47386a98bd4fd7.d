/root/repo/target/debug/deps/fig6-8c47386a98bd4fd7.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-8c47386a98bd4fd7.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
