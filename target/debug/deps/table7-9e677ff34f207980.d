/root/repo/target/debug/deps/table7-9e677ff34f207980.d: crates/bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-9e677ff34f207980.rmeta: crates/bench/src/bin/table7.rs Cargo.toml

crates/bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
