/root/repo/target/debug/deps/dim_corpus-0da3b832b43954a2.d: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs

/root/repo/target/debug/deps/libdim_corpus-0da3b832b43954a2.rlib: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs

/root/repo/target/debug/deps/libdim_corpus-0da3b832b43954a2.rmeta: crates/corpus/src/lib.rs crates/corpus/src/generate.rs crates/corpus/src/mlm.rs crates/corpus/src/noise.rs crates/corpus/src/sentence.rs

crates/corpus/src/lib.rs:
crates/corpus/src/generate.rs:
crates/corpus/src/mlm.rs:
crates/corpus/src/noise.rs:
crates/corpus/src/sentence.rs:
