/root/repo/target/debug/deps/ablation_linking-2005a97e8f8e0bde.d: crates/bench/src/bin/ablation_linking.rs

/root/repo/target/debug/deps/ablation_linking-2005a97e8f8e0bde: crates/bench/src/bin/ablation_linking.rs

crates/bench/src/bin/ablation_linking.rs:
