/root/repo/target/debug/deps/table7-301a9abcc2f5837b.d: crates/bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-301a9abcc2f5837b.rmeta: crates/bench/src/bin/table7.rs Cargo.toml

crates/bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
