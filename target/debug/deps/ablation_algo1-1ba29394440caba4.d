/root/repo/target/debug/deps/ablation_algo1-1ba29394440caba4.d: crates/bench/src/bin/ablation_algo1.rs

/root/repo/target/debug/deps/ablation_algo1-1ba29394440caba4: crates/bench/src/bin/ablation_algo1.rs

crates/bench/src/bin/ablation_algo1.rs:
