/root/repo/target/debug/deps/table7-73083773dc94a43d.d: crates/bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-73083773dc94a43d.rmeta: crates/bench/src/bin/table7.rs Cargo.toml

crates/bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
