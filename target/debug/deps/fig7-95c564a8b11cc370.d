/root/repo/target/debug/deps/fig7-95c564a8b11cc370.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-95c564a8b11cc370: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
