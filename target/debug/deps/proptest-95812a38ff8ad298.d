/root/repo/target/debug/deps/proptest-95812a38ff8ad298.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-95812a38ff8ad298.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-95812a38ff8ad298.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
