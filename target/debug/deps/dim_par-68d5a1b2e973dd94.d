/root/repo/target/debug/deps/dim_par-68d5a1b2e973dd94.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdim_par-68d5a1b2e973dd94.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
