/root/repo/target/debug/deps/dimlink-e4e92a77a177fb36.d: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/debug/deps/dimlink-e4e92a77a177fb36: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

crates/dimlink/src/lib.rs:
crates/dimlink/src/annotate.rs:
crates/dimlink/src/lev.rs:
crates/dimlink/src/linker.rs:
crates/dimlink/src/numparse.rs:
