/root/repo/target/debug/deps/paper_shapes-22b404cb0767dec9.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-22b404cb0767dec9: tests/paper_shapes.rs

tests/paper_shapes.rs:
