/root/repo/target/debug/deps/dim_models-d1ca716fe32c5cba.d: crates/models/src/lib.rs crates/models/src/knowledge.rs crates/models/src/profile.rs crates/models/src/simllm.rs crates/models/src/tinylm/mod.rs crates/models/src/tinylm/choice.rs crates/models/src/tinylm/eqgen.rs crates/models/src/tinylm/extract.rs crates/models/src/tinylm/features.rs crates/models/src/tinylm/linear.rs crates/models/src/wolfram.rs

/root/repo/target/debug/deps/libdim_models-d1ca716fe32c5cba.rlib: crates/models/src/lib.rs crates/models/src/knowledge.rs crates/models/src/profile.rs crates/models/src/simllm.rs crates/models/src/tinylm/mod.rs crates/models/src/tinylm/choice.rs crates/models/src/tinylm/eqgen.rs crates/models/src/tinylm/extract.rs crates/models/src/tinylm/features.rs crates/models/src/tinylm/linear.rs crates/models/src/wolfram.rs

/root/repo/target/debug/deps/libdim_models-d1ca716fe32c5cba.rmeta: crates/models/src/lib.rs crates/models/src/knowledge.rs crates/models/src/profile.rs crates/models/src/simllm.rs crates/models/src/tinylm/mod.rs crates/models/src/tinylm/choice.rs crates/models/src/tinylm/eqgen.rs crates/models/src/tinylm/extract.rs crates/models/src/tinylm/features.rs crates/models/src/tinylm/linear.rs crates/models/src/wolfram.rs

crates/models/src/lib.rs:
crates/models/src/knowledge.rs:
crates/models/src/profile.rs:
crates/models/src/simllm.rs:
crates/models/src/tinylm/mod.rs:
crates/models/src/tinylm/choice.rs:
crates/models/src/tinylm/eqgen.rs:
crates/models/src/tinylm/extract.rs:
crates/models/src/tinylm/features.rs:
crates/models/src/tinylm/linear.rs:
crates/models/src/wolfram.rs:
