/root/repo/target/debug/deps/criterion-b02865bbc348d1b9.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-b02865bbc348d1b9.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
