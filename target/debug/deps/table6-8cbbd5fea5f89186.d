/root/repo/target/debug/deps/table6-8cbbd5fea5f89186.d: crates/bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-8cbbd5fea5f89186.rmeta: crates/bench/src/bin/table6.rs Cargo.toml

crates/bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
