/root/repo/target/debug/deps/serde-379c4c5270b1f466.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-379c4c5270b1f466.rmeta: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
