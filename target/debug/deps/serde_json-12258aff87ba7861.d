/root/repo/target/debug/deps/serde_json-12258aff87ba7861.d: crates/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-12258aff87ba7861: crates/serde_json/src/lib.rs

crates/serde_json/src/lib.rs:
