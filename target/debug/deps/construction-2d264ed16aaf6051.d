/root/repo/target/debug/deps/construction-2d264ed16aaf6051.d: crates/bench/benches/construction.rs Cargo.toml

/root/repo/target/debug/deps/libconstruction-2d264ed16aaf6051.rmeta: crates/bench/benches/construction.rs Cargo.toml

crates/bench/benches/construction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
