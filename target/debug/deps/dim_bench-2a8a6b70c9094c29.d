/root/repo/target/debug/deps/dim_bench-2a8a6b70c9094c29.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdim_bench-2a8a6b70c9094c29.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdim_bench-2a8a6b70c9094c29.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
