/root/repo/target/debug/deps/ablation_linking-06939fd263d56ce2.d: crates/bench/src/bin/ablation_linking.rs

/root/repo/target/debug/deps/ablation_linking-06939fd263d56ce2: crates/bench/src/bin/ablation_linking.rs

crates/bench/src/bin/ablation_linking.rs:
