/root/repo/target/debug/deps/table4-9ffc796477be07d8.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-9ffc796477be07d8: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
