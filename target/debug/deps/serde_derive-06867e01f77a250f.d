/root/repo/target/debug/deps/serde_derive-06867e01f77a250f.d: crates/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-06867e01f77a250f.so: crates/serde_derive/src/lib.rs

crates/serde_derive/src/lib.rs:
