/root/repo/target/debug/deps/table9-a07d1ed952549dd1.d: crates/bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-a07d1ed952549dd1: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
