/root/repo/target/debug/deps/table7-ca1356ae6d192a38.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-ca1356ae6d192a38: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
