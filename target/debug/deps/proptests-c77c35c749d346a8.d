/root/repo/target/debug/deps/proptests-c77c35c749d346a8.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-c77c35c749d346a8: tests/proptests.rs

tests/proptests.rs:
