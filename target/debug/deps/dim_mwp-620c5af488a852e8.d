/root/repo/target/debug/deps/dim_mwp-620c5af488a852e8.d: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

/root/repo/target/debug/deps/libdim_mwp-620c5af488a852e8.rlib: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

/root/repo/target/debug/deps/libdim_mwp-620c5af488a852e8.rmeta: crates/mwp/src/lib.rs crates/mwp/src/augment.rs crates/mwp/src/equation.rs crates/mwp/src/gen.rs crates/mwp/src/problem.rs crates/mwp/src/solve.rs crates/mwp/src/stats.rs crates/mwp/src/tokenize.rs

crates/mwp/src/lib.rs:
crates/mwp/src/augment.rs:
crates/mwp/src/equation.rs:
crates/mwp/src/gen.rs:
crates/mwp/src/problem.rs:
crates/mwp/src/solve.rs:
crates/mwp/src/stats.rs:
crates/mwp/src/tokenize.rs:
