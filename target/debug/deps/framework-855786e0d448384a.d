/root/repo/target/debug/deps/framework-855786e0d448384a.d: tests/framework.rs

/root/repo/target/debug/deps/framework-855786e0d448384a: tests/framework.rs

tests/framework.rs:
