/root/repo/target/debug/deps/dim_bench-be3037142cb35c48.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdim_bench-be3037142cb35c48.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdim_bench-be3037142cb35c48.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
