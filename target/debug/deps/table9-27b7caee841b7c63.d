/root/repo/target/debug/deps/table9-27b7caee841b7c63.d: crates/bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-27b7caee841b7c63: crates/bench/src/bin/table9.rs

crates/bench/src/bin/table9.rs:
