/root/repo/target/debug/deps/linking-b83e9cd3f630d8c7.d: crates/bench/benches/linking.rs Cargo.toml

/root/repo/target/debug/deps/liblinking-b83e9cd3f630d8c7.rmeta: crates/bench/benches/linking.rs Cargo.toml

crates/bench/benches/linking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
