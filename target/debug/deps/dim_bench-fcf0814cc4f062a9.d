/root/repo/target/debug/deps/dim_bench-fcf0814cc4f062a9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdim_bench-fcf0814cc4f062a9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
