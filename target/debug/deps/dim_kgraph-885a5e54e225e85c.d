/root/repo/target/debug/deps/dim_kgraph-885a5e54e225e85c.d: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs

/root/repo/target/debug/deps/dim_kgraph-885a5e54e225e85c: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs

crates/kgraph/src/lib.rs:
crates/kgraph/src/store.rs:
crates/kgraph/src/synthesize.rs:
