/root/repo/target/debug/deps/criterion-649bd01f296e7dcd.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-649bd01f296e7dcd.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-649bd01f296e7dcd.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
