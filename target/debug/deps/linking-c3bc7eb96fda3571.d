/root/repo/target/debug/deps/linking-c3bc7eb96fda3571.d: crates/bench/benches/linking.rs Cargo.toml

/root/repo/target/debug/deps/liblinking-c3bc7eb96fda3571.rmeta: crates/bench/benches/linking.rs Cargo.toml

crates/bench/benches/linking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
