/root/repo/target/debug/deps/ablation_linking-c5a6871b9d8c2b0b.d: crates/bench/src/bin/ablation_linking.rs Cargo.toml

/root/repo/target/debug/deps/libablation_linking-c5a6871b9d8c2b0b.rmeta: crates/bench/src/bin/ablation_linking.rs Cargo.toml

crates/bench/src/bin/ablation_linking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
