/root/repo/target/debug/deps/dimlink-512e8bff8d39de24.d: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/debug/deps/libdimlink-512e8bff8d39de24.rlib: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/debug/deps/libdimlink-512e8bff8d39de24.rmeta: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

crates/dimlink/src/lib.rs:
crates/dimlink/src/annotate.rs:
crates/dimlink/src/lev.rs:
crates/dimlink/src/linker.rs:
crates/dimlink/src/numparse.rs:
