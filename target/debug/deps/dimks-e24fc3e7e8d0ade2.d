/root/repo/target/debug/deps/dimks-e24fc3e7e8d0ade2.d: src/bin/dimks.rs

/root/repo/target/debug/deps/dimks-e24fc3e7e8d0ade2: src/bin/dimks.rs

src/bin/dimks.rs:
