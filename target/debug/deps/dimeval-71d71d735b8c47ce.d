/root/repo/target/debug/deps/dimeval-71d71d735b8c47ce.d: crates/dimeval/src/lib.rs crates/dimeval/src/algo1.rs crates/dimeval/src/algo2.rs crates/dimeval/src/benchmark.rs crates/dimeval/src/cot.rs crates/dimeval/src/gen.rs crates/dimeval/src/metrics.rs crates/dimeval/src/task.rs

/root/repo/target/debug/deps/dimeval-71d71d735b8c47ce: crates/dimeval/src/lib.rs crates/dimeval/src/algo1.rs crates/dimeval/src/algo2.rs crates/dimeval/src/benchmark.rs crates/dimeval/src/cot.rs crates/dimeval/src/gen.rs crates/dimeval/src/metrics.rs crates/dimeval/src/task.rs

crates/dimeval/src/lib.rs:
crates/dimeval/src/algo1.rs:
crates/dimeval/src/algo2.rs:
crates/dimeval/src/benchmark.rs:
crates/dimeval/src/cot.rs:
crates/dimeval/src/gen.rs:
crates/dimeval/src/metrics.rs:
crates/dimeval/src/task.rs:
