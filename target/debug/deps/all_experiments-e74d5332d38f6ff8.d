/root/repo/target/debug/deps/all_experiments-e74d5332d38f6ff8.d: crates/bench/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-e74d5332d38f6ff8.rmeta: crates/bench/src/bin/all_experiments.rs Cargo.toml

crates/bench/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
