/root/repo/target/debug/deps/dimks-c369f48d34d30a70.d: src/bin/dimks.rs

/root/repo/target/debug/deps/dimks-c369f48d34d30a70: src/bin/dimks.rs

src/bin/dimks.rs:
