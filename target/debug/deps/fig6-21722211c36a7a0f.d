/root/repo/target/debug/deps/fig6-21722211c36a7a0f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-21722211c36a7a0f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
