/root/repo/target/debug/deps/proptest-c02e3b26412bc9a7.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-c02e3b26412bc9a7: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
