/root/repo/target/debug/deps/table4-7e33b96087da724e.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-7e33b96087da724e.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
