/root/repo/target/debug/deps/table8-a6aa3e555bc6c531.d: crates/bench/src/bin/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtable8-a6aa3e555bc6c531.rmeta: crates/bench/src/bin/table8.rs Cargo.toml

crates/bench/src/bin/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
