/root/repo/target/debug/deps/dimlink-761a0e55ff27245d.d: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs Cargo.toml

/root/repo/target/debug/deps/libdimlink-761a0e55ff27245d.rmeta: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs Cargo.toml

crates/dimlink/src/lib.rs:
crates/dimlink/src/annotate.rs:
crates/dimlink/src/lev.rs:
crates/dimlink/src/linker.rs:
crates/dimlink/src/numparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
