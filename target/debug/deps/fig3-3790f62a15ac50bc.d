/root/repo/target/debug/deps/fig3-3790f62a15ac50bc.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-3790f62a15ac50bc.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
