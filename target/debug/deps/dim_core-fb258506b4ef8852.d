/root/repo/target/debug/deps/dim_core-fb258506b4ef8852.d: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/dim_core-fb258506b4ef8852: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/dimks.rs:
crates/core/src/experiments.rs:
crates/core/src/pipeline.rs:
