/root/repo/target/debug/deps/dimension_perception-207410b9737bb94e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdimension_perception-207410b9737bb94e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
