/root/repo/target/debug/deps/serde_json-c68908cf0d943958.d: crates/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c68908cf0d943958.rlib: crates/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c68908cf0d943958.rmeta: crates/serde_json/src/lib.rs

crates/serde_json/src/lib.rs:
