/root/repo/target/debug/deps/fig3-fea162bc834bac5b.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-fea162bc834bac5b.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
