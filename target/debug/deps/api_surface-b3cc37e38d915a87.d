/root/repo/target/debug/deps/api_surface-b3cc37e38d915a87.d: tests/api_surface.rs

/root/repo/target/debug/deps/api_surface-b3cc37e38d915a87: tests/api_surface.rs

tests/api_surface.rs:
