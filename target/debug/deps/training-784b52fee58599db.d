/root/repo/target/debug/deps/training-784b52fee58599db.d: crates/bench/benches/training.rs Cargo.toml

/root/repo/target/debug/deps/libtraining-784b52fee58599db.rmeta: crates/bench/benches/training.rs Cargo.toml

crates/bench/benches/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
