/root/repo/target/debug/deps/rand-c687b7fe58c1a6d3.d: crates/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-c687b7fe58c1a6d3.rmeta: crates/rand/src/lib.rs Cargo.toml

crates/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
