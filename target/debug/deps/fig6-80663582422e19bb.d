/root/repo/target/debug/deps/fig6-80663582422e19bb.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-80663582422e19bb: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
