/root/repo/target/debug/deps/table8-c16fde54e6332a74.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-c16fde54e6332a74: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
