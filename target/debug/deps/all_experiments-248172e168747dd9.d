/root/repo/target/debug/deps/all_experiments-248172e168747dd9.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-248172e168747dd9: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
