/root/repo/target/debug/deps/framework-b17a6438def0b45e.d: tests/framework.rs

/root/repo/target/debug/deps/framework-b17a6438def0b45e: tests/framework.rs

tests/framework.rs:
