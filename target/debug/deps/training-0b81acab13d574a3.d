/root/repo/target/debug/deps/training-0b81acab13d574a3.d: crates/bench/benches/training.rs Cargo.toml

/root/repo/target/debug/deps/libtraining-0b81acab13d574a3.rmeta: crates/bench/benches/training.rs Cargo.toml

crates/bench/benches/training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
