/root/repo/target/debug/deps/ablation_linking-01f471371792c498.d: crates/bench/src/bin/ablation_linking.rs

/root/repo/target/debug/deps/ablation_linking-01f471371792c498: crates/bench/src/bin/ablation_linking.rs

crates/bench/src/bin/ablation_linking.rs:
