/root/repo/target/debug/deps/dim_embed-49375f94369e4122.d: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs

/root/repo/target/debug/deps/libdim_embed-49375f94369e4122.rlib: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs

/root/repo/target/debug/deps/libdim_embed-49375f94369e4122.rmeta: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs

crates/embed/src/lib.rs:
crates/embed/src/model.rs:
crates/embed/src/tokenize.rs:
