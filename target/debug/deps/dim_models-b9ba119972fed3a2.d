/root/repo/target/debug/deps/dim_models-b9ba119972fed3a2.d: crates/models/src/lib.rs crates/models/src/knowledge.rs crates/models/src/profile.rs crates/models/src/simllm.rs crates/models/src/tinylm/mod.rs crates/models/src/tinylm/choice.rs crates/models/src/tinylm/eqgen.rs crates/models/src/tinylm/extract.rs crates/models/src/tinylm/features.rs crates/models/src/tinylm/linear.rs crates/models/src/wolfram.rs

/root/repo/target/debug/deps/dim_models-b9ba119972fed3a2: crates/models/src/lib.rs crates/models/src/knowledge.rs crates/models/src/profile.rs crates/models/src/simllm.rs crates/models/src/tinylm/mod.rs crates/models/src/tinylm/choice.rs crates/models/src/tinylm/eqgen.rs crates/models/src/tinylm/extract.rs crates/models/src/tinylm/features.rs crates/models/src/tinylm/linear.rs crates/models/src/wolfram.rs

crates/models/src/lib.rs:
crates/models/src/knowledge.rs:
crates/models/src/profile.rs:
crates/models/src/simllm.rs:
crates/models/src/tinylm/mod.rs:
crates/models/src/tinylm/choice.rs:
crates/models/src/tinylm/eqgen.rs:
crates/models/src/tinylm/extract.rs:
crates/models/src/tinylm/features.rs:
crates/models/src/tinylm/linear.rs:
crates/models/src/wolfram.rs:
