/root/repo/target/debug/deps/dim_kgraph-f5be32aab1e6a8d9.d: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs

/root/repo/target/debug/deps/libdim_kgraph-f5be32aab1e6a8d9.rlib: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs

/root/repo/target/debug/deps/libdim_kgraph-f5be32aab1e6a8d9.rmeta: crates/kgraph/src/lib.rs crates/kgraph/src/store.rs crates/kgraph/src/synthesize.rs

crates/kgraph/src/lib.rs:
crates/kgraph/src/store.rs:
crates/kgraph/src/synthesize.rs:
