/root/repo/target/debug/deps/dim_core-0d2d8cda71223a96.d: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libdim_core-0d2d8cda71223a96.rmeta: crates/core/src/lib.rs crates/core/src/dimks.rs crates/core/src/experiments.rs crates/core/src/pipeline.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/dimks.rs:
crates/core/src/experiments.rs:
crates/core/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
