/root/repo/target/debug/deps/table7-b75b4b840212f17e.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-b75b4b840212f17e: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:
