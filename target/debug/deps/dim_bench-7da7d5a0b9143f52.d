/root/repo/target/debug/deps/dim_bench-7da7d5a0b9143f52.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdim_bench-7da7d5a0b9143f52.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
