/root/repo/target/debug/deps/dimension_perception-28e97ea550c74ee6.d: src/lib.rs

/root/repo/target/debug/deps/dimension_perception-28e97ea550c74ee6: src/lib.rs

src/lib.rs:
