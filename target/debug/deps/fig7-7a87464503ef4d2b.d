/root/repo/target/debug/deps/fig7-7a87464503ef4d2b.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-7a87464503ef4d2b.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
