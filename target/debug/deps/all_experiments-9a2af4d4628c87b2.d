/root/repo/target/debug/deps/all_experiments-9a2af4d4628c87b2.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-9a2af4d4628c87b2: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
