/root/repo/target/debug/deps/dim_embed-fc97e483db111b9a.d: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs Cargo.toml

/root/repo/target/debug/deps/libdim_embed-fc97e483db111b9a.rmeta: crates/embed/src/lib.rs crates/embed/src/model.rs crates/embed/src/tokenize.rs Cargo.toml

crates/embed/src/lib.rs:
crates/embed/src/model.rs:
crates/embed/src/tokenize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
