/root/repo/target/debug/deps/dim_par-c5f995a78f61e647.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/libdim_par-c5f995a78f61e647.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/libdim_par-c5f995a78f61e647.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
