/root/repo/target/debug/deps/fuzz_robustness-011a445e406e60fb.d: tests/fuzz_robustness.rs

/root/repo/target/debug/deps/fuzz_robustness-011a445e406e60fb: tests/fuzz_robustness.rs

tests/fuzz_robustness.rs:
