/root/repo/target/debug/deps/dimlink-9c3f92fd0ab1cb05.d: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

/root/repo/target/debug/deps/dimlink-9c3f92fd0ab1cb05: crates/dimlink/src/lib.rs crates/dimlink/src/annotate.rs crates/dimlink/src/lev.rs crates/dimlink/src/linker.rs crates/dimlink/src/numparse.rs

crates/dimlink/src/lib.rs:
crates/dimlink/src/annotate.rs:
crates/dimlink/src/lev.rs:
crates/dimlink/src/linker.rs:
crates/dimlink/src/numparse.rs:
