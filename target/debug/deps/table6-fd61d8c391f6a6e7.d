/root/repo/target/debug/deps/table6-fd61d8c391f6a6e7.d: crates/bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-fd61d8c391f6a6e7.rmeta: crates/bench/src/bin/table6.rs Cargo.toml

crates/bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
