/root/repo/target/debug/deps/dimension_perception-b4f8013874903674.d: src/lib.rs

/root/repo/target/debug/deps/libdimension_perception-b4f8013874903674.rlib: src/lib.rs

/root/repo/target/debug/deps/libdimension_perception-b4f8013874903674.rmeta: src/lib.rs

src/lib.rs:
