/root/repo/target/debug/deps/ablation_linking-b970f3a007baad78.d: crates/bench/src/bin/ablation_linking.rs Cargo.toml

/root/repo/target/debug/deps/libablation_linking-b970f3a007baad78.rmeta: crates/bench/src/bin/ablation_linking.rs Cargo.toml

crates/bench/src/bin/ablation_linking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
