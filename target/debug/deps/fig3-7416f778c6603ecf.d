/root/repo/target/debug/deps/fig3-7416f778c6603ecf.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-7416f778c6603ecf: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
