/root/repo/target/debug/deps/proptest-d96246f591b61d63.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-d96246f591b61d63.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
