/root/repo/target/debug/deps/proptests-432a904af3c1f6f7.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-432a904af3c1f6f7.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
