/root/repo/target/debug/deps/table9-56a8740347855905.d: crates/bench/src/bin/table9.rs Cargo.toml

/root/repo/target/debug/deps/libtable9-56a8740347855905.rmeta: crates/bench/src/bin/table9.rs Cargo.toml

crates/bench/src/bin/table9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
