/root/repo/target/debug/deps/proptest-1a6a35932cb244db.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-1a6a35932cb244db.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
