/root/repo/target/debug/deps/fig3-9bf104cc3e4ae1f3.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-9bf104cc3e4ae1f3.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
