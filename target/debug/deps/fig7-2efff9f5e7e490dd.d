/root/repo/target/debug/deps/fig7-2efff9f5e7e490dd.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-2efff9f5e7e490dd: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
