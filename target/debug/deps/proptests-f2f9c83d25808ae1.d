/root/repo/target/debug/deps/proptests-f2f9c83d25808ae1.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-f2f9c83d25808ae1: tests/proptests.rs

tests/proptests.rs:
