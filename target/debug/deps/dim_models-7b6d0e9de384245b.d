/root/repo/target/debug/deps/dim_models-7b6d0e9de384245b.d: crates/models/src/lib.rs crates/models/src/knowledge.rs crates/models/src/profile.rs crates/models/src/simllm.rs crates/models/src/tinylm/mod.rs crates/models/src/tinylm/choice.rs crates/models/src/tinylm/eqgen.rs crates/models/src/tinylm/extract.rs crates/models/src/tinylm/features.rs crates/models/src/tinylm/linear.rs crates/models/src/wolfram.rs Cargo.toml

/root/repo/target/debug/deps/libdim_models-7b6d0e9de384245b.rmeta: crates/models/src/lib.rs crates/models/src/knowledge.rs crates/models/src/profile.rs crates/models/src/simllm.rs crates/models/src/tinylm/mod.rs crates/models/src/tinylm/choice.rs crates/models/src/tinylm/eqgen.rs crates/models/src/tinylm/extract.rs crates/models/src/tinylm/features.rs crates/models/src/tinylm/linear.rs crates/models/src/wolfram.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/knowledge.rs:
crates/models/src/profile.rs:
crates/models/src/simllm.rs:
crates/models/src/tinylm/mod.rs:
crates/models/src/tinylm/choice.rs:
crates/models/src/tinylm/eqgen.rs:
crates/models/src/tinylm/extract.rs:
crates/models/src/tinylm/features.rs:
crates/models/src/tinylm/linear.rs:
crates/models/src/wolfram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
