/root/repo/target/debug/deps/table8-09d8b483a0589095.d: crates/bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-09d8b483a0589095: crates/bench/src/bin/table8.rs

crates/bench/src/bin/table8.rs:
