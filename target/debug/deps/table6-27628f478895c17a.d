/root/repo/target/debug/deps/table6-27628f478895c17a.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-27628f478895c17a: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
