/root/repo/target/debug/examples/kb_explore-4fb8233ba6dfe7e3.d: examples/kb_explore.rs

/root/repo/target/debug/examples/kb_explore-4fb8233ba6dfe7e3: examples/kb_explore.rs

examples/kb_explore.rs:
