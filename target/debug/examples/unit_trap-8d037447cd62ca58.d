/root/repo/target/debug/examples/unit_trap-8d037447cd62ca58.d: examples/unit_trap.rs

/root/repo/target/debug/examples/unit_trap-8d037447cd62ca58: examples/unit_trap.rs

examples/unit_trap.rs:
