/root/repo/target/debug/examples/augmentation_tour-524f27acada79b88.d: examples/augmentation_tour.rs

/root/repo/target/debug/examples/augmentation_tour-524f27acada79b88: examples/augmentation_tour.rs

examples/augmentation_tour.rs:
