/root/repo/target/debug/examples/augmentation_tour-6d6aa70a3a43806e.d: examples/augmentation_tour.rs Cargo.toml

/root/repo/target/debug/examples/libaugmentation_tour-6d6aa70a3a43806e.rmeta: examples/augmentation_tour.rs Cargo.toml

examples/augmentation_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
