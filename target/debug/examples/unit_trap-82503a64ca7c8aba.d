/root/repo/target/debug/examples/unit_trap-82503a64ca7c8aba.d: examples/unit_trap.rs

/root/repo/target/debug/examples/unit_trap-82503a64ca7c8aba: examples/unit_trap.rs

examples/unit_trap.rs:
