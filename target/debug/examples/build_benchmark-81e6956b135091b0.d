/root/repo/target/debug/examples/build_benchmark-81e6956b135091b0.d: examples/build_benchmark.rs

/root/repo/target/debug/examples/build_benchmark-81e6956b135091b0: examples/build_benchmark.rs

examples/build_benchmark.rs:
