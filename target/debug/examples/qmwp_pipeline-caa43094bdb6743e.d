/root/repo/target/debug/examples/qmwp_pipeline-caa43094bdb6743e.d: examples/qmwp_pipeline.rs

/root/repo/target/debug/examples/qmwp_pipeline-caa43094bdb6743e: examples/qmwp_pipeline.rs

examples/qmwp_pipeline.rs:
