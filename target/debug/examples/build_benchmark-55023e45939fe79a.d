/root/repo/target/debug/examples/build_benchmark-55023e45939fe79a.d: examples/build_benchmark.rs Cargo.toml

/root/repo/target/debug/examples/libbuild_benchmark-55023e45939fe79a.rmeta: examples/build_benchmark.rs Cargo.toml

examples/build_benchmark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
