/root/repo/target/debug/examples/build_benchmark-4a990780d7add955.d: examples/build_benchmark.rs

/root/repo/target/debug/examples/build_benchmark-4a990780d7add955: examples/build_benchmark.rs

examples/build_benchmark.rs:
