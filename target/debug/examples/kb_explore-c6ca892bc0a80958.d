/root/repo/target/debug/examples/kb_explore-c6ca892bc0a80958.d: examples/kb_explore.rs Cargo.toml

/root/repo/target/debug/examples/libkb_explore-c6ca892bc0a80958.rmeta: examples/kb_explore.rs Cargo.toml

examples/kb_explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
