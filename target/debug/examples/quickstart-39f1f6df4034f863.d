/root/repo/target/debug/examples/quickstart-39f1f6df4034f863.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-39f1f6df4034f863: examples/quickstart.rs

examples/quickstart.rs:
