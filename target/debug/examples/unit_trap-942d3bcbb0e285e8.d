/root/repo/target/debug/examples/unit_trap-942d3bcbb0e285e8.d: examples/unit_trap.rs Cargo.toml

/root/repo/target/debug/examples/libunit_trap-942d3bcbb0e285e8.rmeta: examples/unit_trap.rs Cargo.toml

examples/unit_trap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
