/root/repo/target/debug/examples/qmwp_pipeline-11a1acbcba2b28fc.d: examples/qmwp_pipeline.rs

/root/repo/target/debug/examples/qmwp_pipeline-11a1acbcba2b28fc: examples/qmwp_pipeline.rs

examples/qmwp_pipeline.rs:
