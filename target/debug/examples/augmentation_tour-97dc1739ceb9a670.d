/root/repo/target/debug/examples/augmentation_tour-97dc1739ceb9a670.d: examples/augmentation_tour.rs

/root/repo/target/debug/examples/augmentation_tour-97dc1739ceb9a670: examples/augmentation_tour.rs

examples/augmentation_tour.rs:
