/root/repo/target/debug/examples/kb_explore-a98c9672868eeef5.d: examples/kb_explore.rs

/root/repo/target/debug/examples/kb_explore-a98c9672868eeef5: examples/kb_explore.rs

examples/kb_explore.rs:
