/root/repo/target/debug/examples/qmwp_pipeline-6a3024117b27c035.d: examples/qmwp_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libqmwp_pipeline-6a3024117b27c035.rmeta: examples/qmwp_pipeline.rs Cargo.toml

examples/qmwp_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
