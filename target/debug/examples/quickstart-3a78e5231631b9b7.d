/root/repo/target/debug/examples/quickstart-3a78e5231631b9b7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3a78e5231631b9b7: examples/quickstart.rs

examples/quickstart.rs:
