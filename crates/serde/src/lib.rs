//! Offline drop-in subset of `serde`.
//!
//! The real serde is a zero-cost visitor framework; this compat crate is a
//! small tree-based one: [`Serialize`] lowers values into a [`Value`] tree
//! and [`Deserialize`] rebuilds them from it. That is all the workspace
//! needs (everything goes through `serde_json::to_string` / `from_str`),
//! and it keeps the derive macro — `serde_derive`, re-exported behind the
//! usual `derive` feature — small enough to write without `syn`.
//!
//! Determinism note: map serialization sorts keys, so serialized output is
//! canonical — equal values always produce byte-identical JSON, which the
//! workspace's parallel-determinism tests rely on.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the interchange format between
/// [`Serialize`], [`Deserialize`] and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved by the writer.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Looks up a field in an object's field list.
pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X, found Y" constructor.
    pub fn expected(what: &str, context: &str, found: &Value) -> DeError {
        DeError(format!("{context}: expected {what}, found {}", found.kind()))
    }

    /// Missing-field constructor.
    pub fn missing(field: &str, context: &str) -> DeError {
        DeError(format!("{context}: missing field `{field}`"))
    }

    /// Unknown-variant constructor.
    pub fn unknown_variant(context: &str) -> DeError {
        DeError(format!("{context}: unknown or malformed enum variant"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produces the value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the tree doesn't fit.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = v.as_f64().ok_or_else(|| DeError::expected("number", stringify!($t), v))?;
                if n.fract() != 0.0 {
                    return Err(DeError(format!("expected integer, found {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(DeError(format!("{n} out of range for {}", stringify!($t))));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64", v))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number", "f32", v))? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool", v))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_str().ok_or_else(|| DeError::expected("string", "String", v))?.to_string())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", "char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, found {s:?}"))),
        }
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_arr().ok_or_else(|| DeError::expected("array", "[T; N]", v))?;
        if items.len() != N {
            return Err(DeError(format!("expected {N} elements, found {}", items.len())));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| DeError("array length mismatch".into()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_arr().ok_or_else(|| DeError::expected("array", "Vec", v))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::deserialize(v)?))
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Arr(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::expected("array", "tuple", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Renders a map key as a JSON object key via its serialized form.
/// Strings pass through; numbers stringify; unit enum variants (which
/// serialize as `Value::Str`) work out of the box.
fn key_to_string(key: Value) -> Result<String, DeError> {
    match key {
        Value::Str(s) => Ok(s),
        Value::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Ok(format!("{}", n as i64)),
        Value::Num(n) => Ok(format!("{n}")),
        other => Err(DeError(format!("unsupported map key type: {}", other.kind()))),
    }
}

/// Parses a map key back: first as a string (covers `String` and unit
/// enum variants), then as a number.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::deserialize(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    let n: f64 = s.parse().map_err(|_| DeError(format!("bad map key {s:?}")))?;
    K::deserialize(&Value::Num(n))
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sorted keys keep the output canonical regardless of hasher state.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k.serialize())
                    .unwrap_or_else(|e| panic!("cannot serialize map key: {e}"));
                (key, v.serialize())
            })
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_obj().ok_or_else(|| DeError::expected("object", "HashMap", v))?;
        fields.iter().map(|(k, val)| Ok((key_from_string(k)?, V::deserialize(val)?))).collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k.serialize())
                    .unwrap_or_else(|e| panic!("cannot serialize map key: {e}"));
                (key, v.serialize())
            })
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_obj().ok_or_else(|| DeError::expected("object", "BTreeMap", v))?;
        fields.iter().map(|(k, val)| Ok((key_from_string(k)?, V::deserialize(val)?))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(String::deserialize(&"hi".serialize()).unwrap(), "hi");
        assert_eq!(Option::<u8>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::deserialize(&vec![1u8, 2].serialize()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let Value::Obj(fields) = m.serialize() else { panic!("expected object") };
        assert_eq!(fields[0].0, "a");
        assert_eq!(fields[1].0, "b");
    }

    #[test]
    fn integer_bounds_checked() {
        assert!(u8::deserialize(&Value::Num(300.0)).is_err());
        assert!(u8::deserialize(&Value::Num(1.5)).is_err());
        assert!(i8::deserialize(&Value::Num(-100.0)).is_ok());
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1usize, 2.5f64);
        assert_eq!(<(usize, f64)>::deserialize(&t.serialize()).unwrap(), t);
    }
}
