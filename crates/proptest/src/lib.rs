//! Offline drop-in subset of `proptest`.
//!
//! Provides the surface the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! [`Strategy`] with `prop_map`, range strategies over the primitive types,
//! simple regex string strategies (`[class]{m,n}` and `\PC{m,n}`),
//! tuple strategies, and `prop::collection::vec`.
//!
//! Cases are seeded from a hash of the test path, so runs are fully
//! deterministic — no persistence files, no shrinking (a failing case
//! prints its inputs instead).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-test RNG (re-exported for the macro).
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named test.
pub fn test_rng(test_path: &str) -> TestRng {
    // FNV-1a over the test path keeps seeds stable across runs and
    // platforms while separating the streams of different tests.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Result of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case doesn't count.
    Reject,
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---- regex string strategies -----------------------------------------------

/// `&str` patterns act as string strategies. Supported shapes (all the
/// workspace uses): `[class]{m,n}` with ranges and `\`-escapes inside the
/// class, and `\PC{m,n}` (arbitrary printable characters).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pat = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported proptest regex {self:?}: {e}"));
        let len = rng.gen_range(pat.min_len..=pat.max_len);
        let total: u32 = pat.ranges.iter().map(|(lo, hi)| hi - lo + 1).sum();
        let mut out = String::new();
        for _ in 0..len {
            let mut pick = rng.gen_range(0..total);
            for (lo, hi) in &pat.ranges {
                let size = hi - lo + 1;
                if pick < size {
                    out.push(char::from_u32(lo + pick).unwrap_or('?'));
                    break;
                }
                pick -= size;
            }
        }
        out
    }
}

struct CharPattern {
    /// Inclusive codepoint ranges to draw from.
    ranges: Vec<(u32, u32)>,
    min_len: usize,
    max_len: usize,
}

/// Printable sample space for `\PC`: ASCII printable plus Latin-1
/// supplement, CJK, CJK punctuation, and a slice of emoji.
const PRINTABLE: &[(u32, u32)] =
    &[(0x20, 0x7E), (0xA1, 0xFF), (0x3000, 0x303F), (0x4E00, 0x4FFF), (0x1F600, 0x1F64F)];

fn parse_pattern(pat: &str) -> Result<CharPattern, String> {
    let chars: Vec<char> = pat.chars().collect();
    let mut pos;
    let ranges: Vec<(u32, u32)> = if chars.first() == Some(&'\\') {
        // `\PC` — any printable char.
        if chars.get(1) == Some(&'P') && chars.get(2) == Some(&'C') {
            pos = 3;
            PRINTABLE.to_vec()
        } else {
            return Err("only \\PC escape is supported".into());
        }
    } else if chars.first() == Some(&'[') {
        pos = 1;
        let mut ranges = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = *chars.get(pos).ok_or("unterminated char class")?;
            pos += 1;
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p as u32, p as u32));
                    }
                    break;
                }
                '\\' => {
                    let esc = *chars.get(pos).ok_or("dangling escape in class")?;
                    pos += 1;
                    if let Some(p) = pending.replace(esc) {
                        ranges.push((p as u32, p as u32));
                    }
                }
                '-' if pending.is_some() && chars.get(pos) != Some(&']') => {
                    let lo = pending.take().unwrap();
                    let mut hi = *chars.get(pos).ok_or("dangling range in class")?;
                    pos += 1;
                    if hi == '\\' {
                        hi = *chars.get(pos).ok_or("dangling escape in class")?;
                        pos += 1;
                    }
                    if (hi as u32) < (lo as u32) {
                        return Err(format!("inverted range {lo}-{hi}"));
                    }
                    ranges.push((lo as u32, hi as u32));
                }
                c => {
                    if let Some(p) = pending.replace(c) {
                        ranges.push((p as u32, p as u32));
                    }
                }
            }
        }
        if ranges.is_empty() {
            return Err("empty char class".into());
        }
        ranges
    } else {
        return Err("pattern must start with [class] or \\PC".into());
    };

    // Optional `{m,n}` repetition; default exactly one.
    let (min_len, max_len) = if chars.get(pos) == Some(&'{') {
        let rest: String = chars[pos..].iter().collect();
        let body = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or("malformed repetition")?;
        let (m, n) = body.split_once(',').ok_or("repetition must be {m,n}")?;
        (
            m.trim().parse::<usize>().map_err(|_| "bad repetition min")?,
            n.trim().parse::<usize>().map_err(|_| "bad repetition max")?,
        )
    } else if pos == chars.len() {
        (1, 1)
    } else {
        return Err(format!("trailing pattern content at {pos}"));
    };
    if min_len > max_len {
        return Err("inverted repetition".into());
    }
    Ok(CharPattern { ranges, min_len, max_len })
}

// ---- collections -----------------------------------------------------------

/// `prop::collection` etc. — the module-path aliases the real crate exposes.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with a size drawn from `sizes`.
        pub struct VecStrategy<S> {
            element: S,
            sizes: Range<usize>,
        }

        /// Generates vectors of `element` values with length in `sizes`.
        pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, sizes }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.sizes.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

// ---- macros ----------------------------------------------------------------

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}: {}", stringify!($cond), ::std::format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Rejects the current case when the assumption doesn't hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut __done = 0u32;
                let mut __attempts = 0u32;
                while __done < __config.cases && __attempts < __config.cases * 10 + 100 {
                    __attempts += 1;
                    let __vals = ($( $crate::Strategy::generate(&($strat), &mut __rng), )*);
                    let __repr = ::std::format!("{:?}", __vals);
                    let ($($arg,)*) = __vals;
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __done += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            ::std::panic!(
                                "proptest case failed: {}\n  inputs: {}",
                                __msg,
                                __repr
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_class_pattern_stays_in_class() {
        let mut rng = test_rng("charclass");
        for _ in 0..200 {
            let s = "[a-z]{0,10}".generate(&mut rng);
            assert!(s.len() <= 10);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn escaped_dash_is_literal() {
        let mut rng = test_rng("escdash");
        for _ in 0..200 {
            let s = "[0-9+\\-*/()%. x=]{0,30}".generate(&mut rng);
            for c in s.chars() {
                assert!(
                    c.is_ascii_digit() || "+-*/()%. x=".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn unicode_ranges_supported() {
        let mut rng = test_rng("unicode");
        for _ in 0..200 {
            let s = "[a-z\u{4e00}-\u{4e2f}]{0,12}".generate(&mut rng);
            for c in s.chars() {
                assert!(c.is_ascii_lowercase() || ('\u{4e00}'..='\u{4e2f}').contains(&c));
            }
        }
    }

    #[test]
    fn printable_pattern_generates() {
        let mut rng = test_rng("printable");
        let s = "\\PC{0,80}".generate(&mut rng);
        assert!(s.chars().count() <= 80);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(a in 0u32..10, b in 0u32..10) {
            prop_assert!(a < 10);
            prop_assert_eq!(a + b, b + a);
            prop_assume!(a != 11);
        }
    }
}
