//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment resolves only path dependencies, so this crate
//! provides the exact surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms, which is all the workspace
//! requires (nothing here depends on upstream rand's exact stream).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the given range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps a raw word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled. Implemented for `Range`/`RangeInclusive`
/// over the primitive types the workspace draws.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: uniform in `[0, span)`.
#[inline]
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded by
    /// SplitMix64 expansion of the 64-bit seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 stream expands the seed into four non-zero words.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0u64..1 << 60) == b.gen_range(0u64..1 << 60)).count();
        assert!(same < 4);
    }
}
