//! Canonical experiment runners — one function per table/figure of the
//! paper's evaluation. The `dim-bench` binaries print these results next
//! to the paper's reported numbers; `EXPERIMENTS.md` records the
//! comparison.

use crate::pipeline::{self, PipelineConfig};
use dim_models::profile;
use dim_models::tinylm::TinyLm;
use dim_models::{SimulatedLlm, ToolAugmented, WolframEngine};
use dim_mwp::{
    accuracy, dataset_stats, Augmenter, DatasetStats, EqTokenization, GenConfig, MwpProblem,
    MwpSolver, Source,
};
use dimeval::{evaluate, Category, DimEval, DimEvalConfig, DimEvalSolver, TaskKind};
use dimkb::stats::{statistics, top_kinds, top_units};
use dimkb::{DimUnitKb, UnitId};
use std::collections::HashSet;
use std::sync::Arc;

// Observability (no-ops unless `dim_obs::enable()` was called): one span
// per experiment runner, so `obs_report.json` breaks a full suite run down
// by table/figure.
static EXP_TABLE4: dim_obs::Histogram = dim_obs::Histogram::new("exp.table4");
static EXP_TABLE6: dim_obs::Histogram = dim_obs::Histogram::new("exp.table6");
static EXP_TABLE7: dim_obs::Histogram = dim_obs::Histogram::new("exp.table7");
static EXP_TABLE8: dim_obs::Histogram = dim_obs::Histogram::new("exp.table8");
static EXP_TABLE9: dim_obs::Histogram = dim_obs::Histogram::new("exp.table9");
static EXP_FIG6: dim_obs::Histogram = dim_obs::Histogram::new("exp.fig6");
static EXP_FIG7: dim_obs::Histogram = dim_obs::Histogram::new("exp.fig7");

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Evaluation items per DimEval task (45, matching the paper's grain).
    pub eval_per_task: usize,
    /// Problems per MWP evaluation set (225, Table VI).
    pub mwp_eval: usize,
    /// Evaluation seed (distinct from all training seeds).
    pub seed: u64,
    /// Fan-out for evaluation-set construction. Results are identical for
    /// every thread count; training fan-out is `pipeline.parallelism`.
    pub parallelism: dim_par::Parallelism,
    /// Pipeline (training) configuration.
    pub pipeline: PipelineConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            eval_per_task: 45,
            mwp_eval: 225,
            seed: 20_24,
            parallelism: dim_par::Parallelism::SEQUENTIAL,
            pipeline: PipelineConfig::default(),
        }
    }
}

/// A quick configuration for tests (smaller datasets, fewer epochs).
/// Pins one thread everywhere: CI smoke runs must exercise the reference
/// sequential paths.
pub fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        eval_per_task: 20,
        mwp_eval: 80,
        seed: 20_24,
        parallelism: dim_par::Parallelism::SEQUENTIAL,
        pipeline: PipelineConfig {
            train_per_task: 200,
            epochs: 3,
            // 17 problem templates per style need coverage even in the
            // smoke configuration.
            mwp_train: 500,
            parallelism: dim_par::Parallelism::SEQUENTIAL,
            ..Default::default()
        },
    }
}

// ===================== Table IV =====================

/// One Table IV row.
#[derive(Debug, Clone, PartialEq)]
pub struct KbRow {
    /// Resource name.
    pub name: String,
    /// `# Units`.
    pub units: usize,
    /// `# Quantity Kind`.
    pub kinds: usize,
    /// `# Dim. Vector` (0 when the resource has no dimension feature).
    pub dims: usize,
    /// Language column.
    pub lang: &'static str,
    /// Frequency-feature column.
    pub freq: bool,
}

/// The 16 quantity kinds of the UoM probing set.
const UOM_KINDS: [&str; 16] = [
    "Length", "Mass", "Time", "Temperature", "Volume", "Area", "Velocity", "Force", "Pressure",
    "Energy", "Power", "Frequency", "ElectricCurrent", "Voltage", "Information", "PlaneAngle",
];

/// A UoM-style subset: the most frequent English units of 16 kinds, capped
/// at 76 units (the UoM paper's statistics).
pub fn uom_subset(kb: &DimUnitKb) -> DimUnitKb {
    let mut keep: HashSet<UnitId> = HashSet::new();
    for kind_name in UOM_KINDS {
        let Some(kind) = kb.kind_by_name(kind_name) else { continue };
        let mut ids: Vec<UnitId> = kb.units_of_kind(kind.id).to_vec();
        ids.sort_by(|a, b| {
            kb.unit(*b)
                .frequency
                .partial_cmp(&kb.unit(*a).frequency)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for id in ids.into_iter().filter(|&id| !kb.unit(id).code.ends_with("-ZH")).take(5) {
            keep.insert(id);
        }
    }
    let mut keep: Vec<UnitId> = keep.into_iter().collect();
    keep.sort_by(|a, b| {
        kb.unit(*b)
            .frequency
            .partial_cmp(&kb.unit(*a).frequency)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    keep.truncate(76);
    let keep: HashSet<UnitId> = keep.into_iter().collect();
    kb.subset(|u| keep.contains(&u.id))
}

/// Runs the Table IV comparison.
pub fn table4() -> Vec<KbRow> {
    let _span = EXP_TABLE4.span();
    let kb = DimUnitKb::shared();
    let uom = uom_subset(&kb);
    let uom_stats = statistics(&uom);
    let engine = WolframEngine::new(kb.clone());
    let wolfram_stats = statistics(engine.kb());
    let full = statistics(&kb);
    vec![
        KbRow {
            name: "UoM".into(),
            units: uom_stats.units,
            kinds: uom_stats.quantity_kinds,
            dims: 0, // UoM stores no dimension feature
            lang: "En",
            freq: false,
        },
        KbRow {
            name: "WolframAlpha".into(),
            units: wolfram_stats.units,
            kinds: wolfram_stats.quantity_kinds,
            dims: wolfram_stats.dim_vectors,
            lang: "En",
            freq: false,
        },
        KbRow {
            name: "DimUnitKB".into(),
            units: full.units,
            kinds: full.quantity_kinds,
            dims: full.dim_vectors,
            lang: full.languages,
            freq: full.has_frequency,
        },
    ]
}

// ===================== Fig. 3 / Fig. 4 =====================

/// The `k` most popular units: `(english label, frequency)`.
pub fn fig3(k: usize) -> Vec<(String, f64)> {
    let kb = DimUnitKb::shared();
    top_units(&kb, k)
        .into_iter()
        .map(|(id, f)| (kb.unit(id).label_en.clone(), f))
        .collect()
}

/// One Fig. 4 row: a quantity kind, its frequency, and its top-5 units.
#[derive(Debug, Clone)]
pub struct KindRow {
    /// Kind name.
    pub kind: String,
    /// Kind frequency (mean of top-5 unit frequencies).
    pub freq: f64,
    /// Top-5 units `(label, frequency)`.
    pub units: Vec<(String, f64)>,
}

/// The `k` most frequent quantity kinds with their top-5 units.
pub fn fig4(k: usize) -> Vec<KindRow> {
    let kb = DimUnitKb::shared();
    top_kinds(&kb, k)
        .into_iter()
        .map(|(kid, freq, units)| KindRow {
            kind: kb.kind(kid).name_en.clone(),
            freq,
            units: units
                .into_iter()
                .map(|(uid, f)| (kb.unit(uid).label_en.clone(), f))
                .collect(),
        })
        .collect()
}

// ===================== MWP datasets (Table VI, Table IX, Figs 6-7) ========

/// The four evaluation datasets of Table VI.
pub struct MwpDatasets {
    /// N-Math23k.
    pub n_math23k: Vec<MwpProblem>,
    /// N-Ape210k.
    pub n_ape210k: Vec<MwpProblem>,
    /// Q-Math23k.
    pub q_math23k: Vec<MwpProblem>,
    /// Q-Ape210k.
    pub q_ape210k: Vec<MwpProblem>,
}

impl MwpDatasets {
    /// Iterates `(name, problems)` in Table VI order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &[MwpProblem])> {
        [
            ("N-Math23k", self.n_math23k.as_slice()),
            ("N-Ape210k", self.n_ape210k.as_slice()),
            ("Q-Math23k", self.q_math23k.as_slice()),
            ("Q-Ape210k", self.q_ape210k.as_slice()),
        ]
        .into_iter()
    }
}

/// Builds the four evaluation sets (seeds disjoint from training).
pub fn build_mwp_eval(config: &ExperimentConfig) -> MwpDatasets {
    let kb = DimUnitKb::shared();
    let n_math23k = dim_mwp::generate_with(
        Source::Math23k,
        &GenConfig { count: config.mwp_eval, seed: config.seed ^ 0xE23 },
        config.parallelism,
    );
    let n_ape210k = dim_mwp::generate_with(
        Source::Ape210k,
        &GenConfig { count: config.mwp_eval, seed: config.seed ^ 0xEA2 },
        config.parallelism,
    );
    let q_math23k =
        Augmenter::new(&kb, config.seed ^ 0x923u64).to_qmwp_with(&n_math23k, config.parallelism);
    let q_ape210k =
        Augmenter::new(&kb, config.seed ^ 0x9A2u64).to_qmwp_with(&n_ape210k, config.parallelism);
    MwpDatasets { n_math23k, n_ape210k, q_math23k, q_ape210k }
}

/// Runs the Table VI statistics.
pub fn table6(config: &ExperimentConfig) -> Vec<(&'static str, DatasetStats)> {
    let _span = EXP_TABLE6.span();
    let sets = build_mwp_eval(config);
    sets.iter().map(|(name, ps)| (name, dataset_stats(ps))).collect()
}

// ===================== Table VII =====================

/// One Table VII row.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Model display name.
    pub name: String,
    /// Parameter column.
    pub params: String,
    /// Extraction `[QE, VE, UE]` F1s; `None` when the task is unsupported.
    pub extraction: Option<[f64; 3]>,
    /// `(task, precision, f1)` for the six choice tasks in paper order.
    pub tasks: Vec<(TaskKind, f64, f64)>,
}

fn report_to_row(
    name: String,
    params: String,
    supports_extraction: bool,
    report: &dimeval::EvalReport,
) -> Table7Row {
    let e = &report.extraction;
    Table7Row {
        name,
        params,
        extraction: supports_extraction.then(|| [e.qe.f1(), e.ve.f1(), e.ue.f1()]),
        tasks: TaskKind::CHOICE
            .iter()
            .map(|t| (*t, report.choice[t].precision(), report.choice[t].f1()))
            .collect(),
    }
}

/// Builds the evaluation benchmark.
pub fn build_eval_dimeval(config: &ExperimentConfig) -> DimEval {
    let kb = DimUnitKb::shared();
    DimEval::build(
        &kb,
        &DimEvalConfig {
            per_task: config.eval_per_task,
            extraction_items: config.eval_per_task,
            seed: config.seed,
            parallelism: config.parallelism,
            ..Default::default()
        },
    )
}

/// Runs Table VII: tool-augmented GPTs, zero-shot baselines, and DimPerc.
pub fn table7(config: &ExperimentConfig) -> Vec<Table7Row> {
    let _span = EXP_TABLE7.span();
    let kb = DimUnitKb::shared();
    let eval = build_eval_dimeval(config);
    let engine = Arc::new(WolframEngine::new(kb.clone()));
    let mut rows = Vec::new();

    // Tool-augmented block.
    for (i, p) in [profile::GPT4, profile::GPT35_TURBO].iter().enumerate() {
        let inner = SimulatedLlm::new(kb.clone(), *p, config.seed + i as u64);
        let mut model = ToolAugmented::new(inner, engine.clone(), config.seed + i as u64);
        let report = evaluate(&mut model, &eval);
        rows.push(report_to_row(
            p.name.to_string(),
            p.params.to_string(),
            p.extraction > 0.0,
            &report,
        ));
    }
    // Zero-shot baselines.
    for (i, p) in profile::TABLE7_BASELINES.iter().enumerate() {
        let mut model = SimulatedLlm::new(kb.clone(), *p, config.seed + 100 + i as u64);
        let report = evaluate(&mut model, &eval);
        rows.push(report_to_row(
            p.name.to_string(),
            p.params.to_string(),
            p.extraction > 0.0,
            &report,
        ));
    }
    // DimPerc (ours).
    let mut dimperc = pipeline::train_dimperc(&kb, &config.pipeline);
    let report = evaluate(&mut dimperc, &eval);
    rows.push(report_to_row("DimPerc (Ours)".into(), "7B".into(), true, &report));
    rows
}

// ===================== Table VIII =====================

/// One Table VIII row: category-aggregated precision/F1.
#[derive(Debug, Clone)]
pub struct Table8Row {
    /// Model name.
    pub name: String,
    /// `(precision, f1)` per category in paper order.
    pub categories: [(f64, f64); 3],
}

/// Runs Table VIII: LLaMA_IFT vs DimPerc.
pub fn table8(config: &ExperimentConfig) -> Vec<Table8Row> {
    let _span = EXP_TABLE8.span();
    let kb = DimUnitKb::shared();
    let eval = build_eval_dimeval(config);
    let mut base = TinyLm::llama_ift(config.pipeline.seed);
    let mut dimperc = pipeline::train_dimperc(&kb, &config.pipeline);
    [&mut base as &mut dyn DimEvalSolver, &mut dimperc as &mut dyn DimEvalSolver]
        .into_iter()
        .map(|m| {
            let report = evaluate(m, &eval);
            Table8Row {
                name: report.model.clone(),
                categories: [
                    report.category(Category::BasicPerception),
                    report.category(Category::DimensionPerception),
                    report.category(Category::ScalePerception),
                ],
            }
        })
        .collect()
}

// ===================== Table IX =====================

/// One Table IX row: accuracy on the four MWP sets.
#[derive(Debug, Clone)]
pub struct Table9Row {
    /// Model name.
    pub name: String,
    /// `[N-Math23k, N-Ape210k, Q-Math23k, Q-Ape210k]` accuracies.
    pub accuracy: [f64; 4],
}

fn mwp_row(model: &mut dyn MwpSolver, sets: &MwpDatasets) -> Table9Row {
    Table9Row {
        name: model.name(),
        accuracy: [
            accuracy(model, &sets.n_math23k),
            accuracy(model, &sets.n_ape210k),
            accuracy(model, &sets.q_math23k),
            accuracy(model, &sets.q_ape210k),
        ],
    }
}

/// Runs Table IX: powerful LLMs (± WolframAlpha), supervised models, and
/// DimPerc after the full pipeline.
pub fn table9(config: &ExperimentConfig) -> Vec<Table9Row> {
    let _span = EXP_TABLE9.span();
    let kb = DimUnitKb::shared();
    let sets = build_mwp_eval(config);
    let engine = Arc::new(WolframEngine::new(kb.clone()));
    let mut rows = Vec::new();
    for (i, p) in [profile::GPT4, profile::GPT35_TURBO].iter().enumerate() {
        let mut solo = SimulatedLlm::new(kb.clone(), *p, config.seed + i as u64);
        rows.push(mwp_row(&mut solo, &sets));
        let inner = SimulatedLlm::new(kb.clone(), *p, config.seed + i as u64);
        let mut tool = ToolAugmented::new(inner, engine.clone(), config.seed + i as u64);
        rows.push(mwp_row(&mut tool, &sets));
    }
    for (i, p) in [profile::BERTGEN, profile::LLAMA_NMWP].iter().enumerate() {
        let mut model = SimulatedLlm::new(kb.clone(), *p, config.seed + 50 + i as u64);
        rows.push(mwp_row(&mut model, &sets));
    }
    // DimPerc: full pipeline (DimEval fine-tuning + augmented MWP training).
    let mut dimperc = pipeline::train_dimperc(&kb, &config.pipeline);
    pipeline::train_quantitative(&mut dimperc, &kb, &config.pipeline, 0, |_, _| {});
    rows.push(mwp_row(&mut dimperc, &sets));
    rows
}

// ===================== Fig. 6 =====================

/// Runs the augmentation-rate sweep: `(η, accuracy on Q-Ape210k)`.
pub fn fig6(config: &ExperimentConfig, etas: &[f64]) -> Vec<(f64, f64)> {
    let _span = EXP_FIG6.span();
    let kb = DimUnitKb::shared();
    let sets = build_mwp_eval(config);
    let dimperc = pipeline::train_dimperc(&kb, &config.pipeline);
    etas.iter()
        .map(|&eta| {
            let mut model = dimperc.clone();
            let cfg = PipelineConfig { eta, ..config.pipeline };
            pipeline::train_quantitative(&mut model, &kb, &cfg, 0, |_, _| {});
            (eta, accuracy(&mut model, &sets.q_ape210k))
        })
        .collect()
}

// ===================== Fig. 7 =====================

/// One training curve of Fig. 7.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Series label.
    pub label: String,
    /// `(training step, accuracy on Q-Ape210k)` points.
    pub points: Vec<(usize, f64)>,
}

/// Runs the training-dynamics ablation: base model vs DimPerc, with and
/// without equation tokenization (`w/o ET` = regular tokenization).
pub fn fig7(config: &ExperimentConfig, checkpoints: usize) -> Vec<Curve> {
    let _span = EXP_FIG7.span();
    let kb = DimUnitKb::shared();
    let sets = build_mwp_eval(config);
    let dimperc_base = pipeline::train_dimperc(&kb, &config.pipeline);
    let variants: Vec<(String, TinyLm, EqTokenization)> = vec![
        ("DimPerc w/o ET".into(), dimperc_base.clone(), EqTokenization::Regular),
        ("DimPerc w/ ET".into(), dimperc_base, EqTokenization::Digit),
        ("LLaMa_IFT w/o ET".into(), TinyLm::llama_ift(config.pipeline.seed), EqTokenization::Regular),
        ("LLaMa_IFT w/ ET".into(), TinyLm::llama_ift(config.pipeline.seed), EqTokenization::Digit),
    ];
    let training_len = 2 * config.pipeline.mwp_train
        + (2.0 * config.pipeline.mwp_train as f64 * config.pipeline.eta) as usize;
    // Geometric-ish checkpoint schedule: dense early (where the paper's
    // Fig. 7 shows DimPerc's knowledge-transfer advantage), sparse later.
    let base_every = (training_len / (checkpoints * 4).max(1)).max(1);
    let mut wanted: Vec<usize> = Vec::new();
    let mut step = base_every;
    while wanted.len() < checkpoints && step <= training_len {
        wanted.push(step);
        step = (step * 2).min(step + training_len / checkpoints.max(1)).max(step + base_every);
    }
    // The callback fires on multiples of base_every; record the last one.
    let last_multiple = (training_len / base_every) * base_every;
    if wanted.last() != Some(&last_multiple) {
        wanted.push(last_multiple);
    }
    variants
        .into_iter()
        .map(|(label, mut model, tokenization)| {
            let mut points = Vec::new();
            let cfg = PipelineConfig { tokenization, ..config.pipeline };
            let wanted = wanted.clone();
            pipeline::train_quantitative(&mut model, &kb, &cfg, base_every, |step, snapshot| {
                if !wanted.iter().any(|w| step >= *w && step < w + base_every) {
                    return;
                }
                let correct = sets
                    .q_ape210k
                    .iter()
                    .filter(|p| {
                        dim_mwp::prediction_correct(p, &snapshot.solve_frozen(p, step as u64))
                    })
                    .count();
                points.push((step, correct as f64 / sets.q_ape210k.len() as f64));
            });
            Curve { label, points }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_matches_paper() {
        let rows = table4();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].units, 76, "UoM row");
        assert_eq!(rows[1].units, 540, "WolframAlpha row");
        assert!(rows[2].units > rows[1].units, "DimUnitKB dominates");
        assert!(rows[2].freq && !rows[0].freq);
        assert_eq!(rows[2].lang, "En&Zh");
    }

    #[test]
    fn fig3_fig4_are_ranked() {
        let units = fig3(15);
        assert_eq!(units.len(), 15);
        for w in units.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let kinds = fig4(14);
        assert_eq!(kinds.len(), 14);
        for row in &kinds {
            assert!(!row.units.is_empty() && row.units.len() <= 5);
        }
    }

    #[test]
    fn table6_q_sets_dominate_n_sets() {
        let cfg = quick_config();
        let rows = table6(&cfg);
        assert_eq!(rows.len(), 4);
        let stats: std::collections::HashMap<&str, &DatasetStats> =
            rows.iter().map(|(n, s)| (*n, s)).collect();
        assert!(stats["Q-Math23k"].units > stats["N-Math23k"].units);
        assert!(stats["Q-Ape210k"].units > stats["N-Ape210k"].units);
    }
}
