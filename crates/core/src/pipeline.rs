//! The three-step framework of Fig. 2: build DimKS, fine-tune dimension
//! perception (DimPerc), then apply it to quantitative reasoning with
//! quantity-oriented data augmentation.

use dim_models::tinylm::TinyLm;
use dim_mwp::{Augmenter, EqTokenization, GenConfig, MwpProblem, Source};
use dimeval::{DimEval, DimEvalConfig};
use dimkb::degrade::{BudgetExceeded, ErrorBudget, QuarantineEntry};
use dimkb::DimUnitKb;
use std::sync::Arc;

// Observability (no-ops unless `dim_obs::enable()` was called): one span
// per Fig. 2 pipeline step.
static TRAIN_DIMPERC_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("pipeline.train_dimperc");
static BUILD_MWP_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("pipeline.build_mwp_training");
static TRAIN_QUANT_SPAN: dim_obs::Histogram =
    dim_obs::Histogram::new("pipeline.train_quantitative");
static MWP_TRAINING_ITEMS: dim_obs::Counter = dim_obs::Counter::new("pipeline.mwp_training_items");
static RECORDS_QUARANTINED: dim_obs::Counter =
    dim_obs::Counter::new("pipeline.records_quarantined");
static DEGRADED_RUNS: dim_obs::Counter = dim_obs::Counter::new("pipeline.degraded_runs");

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Training items per DimEval task.
    pub train_per_task: usize,
    /// Epochs of DimEval fine-tuning.
    pub epochs: usize,
    /// MWP training problems per source style.
    pub mwp_train: usize,
    /// Augmentation rate η for the quantitative-reasoning step.
    pub eta: f64,
    /// Equation tokenization strategy (ablation switch).
    pub tokenization: EqTokenization,
    /// Master seed.
    pub seed: u64,
    /// Fan-out for benchmark construction, MWP generation and
    /// augmentation. Any thread count yields identical datasets: the
    /// `dim_par` morsel scheduler clamps the requested width to the host's
    /// usable cores and merges results in index order, so this knob trades
    /// wall-clock time only, never output bytes.
    pub parallelism: dim_par::Parallelism,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            train_per_task: 600,
            epochs: 6,
            mwp_train: 900,
            eta: 0.5,
            tokenization: EqTokenization::Regular,
            seed: 77,
            parallelism: dim_par::Parallelism::SEQUENTIAL,
        }
    }
}

/// Builds the DimEval *training* benchmark (distinct seeds from the
/// evaluation benchmark).
pub fn build_train_dimeval(kb: &Arc<DimUnitKb>, config: &PipelineConfig) -> DimEval {
    DimEval::build(
        kb,
        &DimEvalConfig {
            per_task: config.train_per_task,
            extraction_items: (config.train_per_task / 2).max(100),
            seed: config.seed ^ 0x7EA1,
            parallelism: config.parallelism,
            ..Default::default()
        },
    )
}

/// Step 2 (Fig. 2b): continual fine-tuning on DimEval → DimPerc.
pub fn train_dimperc(kb: &Arc<DimUnitKb>, config: &PipelineConfig) -> TinyLm {
    let _span = TRAIN_DIMPERC_SPAN.span();
    let train = build_train_dimeval(kb, config);
    let mut model = TinyLm::llama_ift(config.seed);
    model.finetune_dimeval(kb, &train, config.epochs, config.seed ^ 0xF1);
    model
}

/// The MWP training mixture: both dataset styles, augmented at rate η.
pub fn build_mwp_training(kb: &DimUnitKb, config: &PipelineConfig) -> Vec<MwpProblem> {
    let _span = BUILD_MWP_SPAN.span();
    let mut problems = dim_mwp::generate_with(
        Source::Math23k,
        &GenConfig { count: config.mwp_train, seed: config.seed ^ 0x23 },
        config.parallelism,
    );
    problems.extend(dim_mwp::generate_with(
        Source::Ape210k,
        &GenConfig { count: config.mwp_train, seed: config.seed ^ 0x210 },
        config.parallelism,
    ));
    let mut aug = Augmenter::new(kb, config.seed ^ 0xA6);
    let out = aug.augment_dataset_with(&problems, config.eta, config.parallelism);
    let mixed = interleave(out);
    MWP_TRAINING_ITEMS.add(mixed.len() as u64);
    mixed
}

/// Deterministic interleave so originals and augmented variants mix:
/// Fibonacci hashing of the index gives a fixed pseudo-random total
/// order (the old `(i * K) % len` key collapsed for many lengths —
/// e.g. even lengths mapped every index pair {i, i + len/2} to the
/// same key, leaving long runs in original order).
fn interleave(out: Vec<MwpProblem>) -> Vec<MwpProblem> {
    let n = out.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
    // Apply the permutation by moving problems, not cloning them. `order`
    // is a permutation of 0..n, so every slot is taken exactly once.
    let mut slots: Vec<Option<MwpProblem>> = out.into_iter().map(Some).collect();
    let mixed: Vec<MwpProblem> =
        // lint:allow(no_panic, order is a permutation of 0..n == slots.len() by construction two lines up)
        order.into_iter().filter_map(|i| slots[i].take()).collect();
    debug_assert_eq!(mixed.len(), n);
    mixed
}

/// Degraded-mode [`build_mwp_training`]: generation runs through
/// [`dim_mwp::try_generate_with`] per source and augmentation through
/// [`Augmenter::try_augment_dataset_with`], each quarantining faulted
/// records under `budget`. Surviving problems go through the same
/// deterministic interleave as the classic path, so with no faults the
/// mixture is identical.
pub fn try_build_mwp_training(
    kb: &DimUnitKb,
    config: &PipelineConfig,
    budget: ErrorBudget,
) -> Result<(Vec<MwpProblem>, Vec<QuarantineEntry>), BudgetExceeded> {
    let _span = BUILD_MWP_SPAN.span();
    let d1 = dim_mwp::try_generate_with(
        Source::Math23k,
        &GenConfig { count: config.mwp_train, seed: config.seed ^ 0x23 },
        config.parallelism,
        budget,
    )?;
    let d2 = dim_mwp::try_generate_with(
        Source::Ape210k,
        &GenConfig { count: config.mwp_train, seed: config.seed ^ 0x210 },
        config.parallelism,
        budget,
    )?;
    let mut quarantine = d1.quarantine.clone();
    quarantine.extend(d2.quarantine.clone());
    let mut problems = d1.ok_items();
    problems.extend(d2.ok_items());
    let mut aug = Augmenter::new(kb, config.seed ^ 0xA6);
    let (out, aug_quarantine) =
        aug.try_augment_dataset_with(&problems, config.eta, config.parallelism, budget)?;
    quarantine.extend(aug_quarantine);
    let mixed = interleave(out);
    MWP_TRAINING_ITEMS.add(mixed.len() as u64);
    RECORDS_QUARANTINED.add(quarantine.len() as u64);
    Ok((mixed, quarantine))
}

/// Step 3 (Fig. 2c): quantitative-reasoning fine-tuning of a model on the
/// augmented MWP mixture. Checkpoints via the callback when requested.
pub fn train_quantitative(
    model: &mut TinyLm,
    kb: &DimUnitKb,
    config: &PipelineConfig,
    checkpoint_every: usize,
    callback: impl FnMut(usize, &TinyLm),
) {
    let _span = TRAIN_QUANT_SPAN.span();
    let training = build_mwp_training(kb, config);
    model.tokenization = config.tokenization;
    model.finetune_mwp(&training, checkpoint_every, callback);
}

/// The full pipeline: steps 1–3 end to end, returning the finished model.
pub fn run_full_pipeline(config: &PipelineConfig) -> TinyLm {
    let kb = DimUnitKb::shared(); // step 1: the knowledge system
    let mut model = train_dimperc(&kb, config); // step 2
    train_quantitative(&mut model, &kb, config, 0, |_, _| {}); // step 3
    model
}

/// What a degraded pipeline run skipped, and where.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeReport {
    /// Every quarantined record across all pipeline stages.
    pub quarantine: Vec<QuarantineEntry>,
}

impl DegradeReport {
    /// Whether any record was quarantined.
    pub fn is_degraded(&self) -> bool {
        !self.quarantine.is_empty()
    }

    /// The deterministic quarantine manifest (sorted `site[index]: error`
    /// lines; identical across runs and thread widths for a fixed
    /// `FaultPlan`).
    pub fn manifest(&self) -> String {
        dimkb::degrade::manifest(&self.quarantine)
    }
}

/// Degraded-mode [`train_dimperc`]: benchmark construction may quarantine
/// whole tasks (see [`DimEval::try_build`]) under `budget`.
pub fn try_train_dimperc(
    kb: &Arc<DimUnitKb>,
    config: &PipelineConfig,
    budget: ErrorBudget,
) -> Result<(TinyLm, Vec<QuarantineEntry>), BudgetExceeded> {
    let _span = TRAIN_DIMPERC_SPAN.span();
    let (train, quarantine) = DimEval::try_build(
        kb,
        &DimEvalConfig {
            per_task: config.train_per_task,
            extraction_items: (config.train_per_task / 2).max(100),
            seed: config.seed ^ 0x7EA1,
            parallelism: config.parallelism,
            ..Default::default()
        },
        budget,
    )?;
    RECORDS_QUARANTINED.add(quarantine.len() as u64);
    let mut model = TinyLm::llama_ift(config.seed);
    model.finetune_dimeval(kb, &train, config.epochs, config.seed ^ 0xF1);
    Ok((model, quarantine))
}

/// Degraded-mode [`run_full_pipeline`]: every batch stage skips-and-records
/// faulted work under `budget` instead of panicking; a blown budget is a
/// typed [`BudgetExceeded`] abort. With no faults the returned model is
/// identical to the classic pipeline's and the report is empty.
pub fn try_run_full_pipeline(
    config: &PipelineConfig,
    budget: ErrorBudget,
) -> Result<(TinyLm, DegradeReport), BudgetExceeded> {
    let kb = DimUnitKb::shared(); // step 1: the knowledge system
    let (mut model, mut quarantine) = try_train_dimperc(&kb, config, budget)?; // step 2
    let _span = TRAIN_QUANT_SPAN.span(); // step 3
    let (training, q) = try_build_mwp_training(&kb, config, budget)?;
    quarantine.extend(q);
    model.tokenization = config.tokenization;
    model.finetune_mwp(&training, 0, |_, _| {});
    if !quarantine.is_empty() {
        DEGRADED_RUNS.inc();
    }
    Ok((model, DegradeReport { quarantine }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mwp::accuracy;

    #[test]
    fn full_pipeline_solves_qmwp() {
        let config = PipelineConfig {
            train_per_task: 120,
            epochs: 3,
            // 17 problem templates per style need enough examples each for
            // the template memory to cover the held-out set.
            mwp_train: 500,
            ..Default::default()
        };
        let kb = DimUnitKb::shared();
        let mut model = run_full_pipeline(&config);
        assert_eq!(model.display_name, "DimPerc");
        // Held-out Q-MWP evaluation.
        let n = dim_mwp::generate(Source::Math23k, &GenConfig { count: 120, seed: 999 });
        let q = Augmenter::new(&kb, 999).to_qmwp(&n);
        let acc = accuracy(&mut model, &q);
        assert!(acc > 0.4, "pipeline Q-MWP accuracy {acc}");
    }

    #[test]
    fn augmentation_rate_changes_training_size() {
        let kb = DimUnitKb::shared();
        let base = PipelineConfig { mwp_train: 100, eta: 0.0, ..Default::default() };
        let aug = PipelineConfig { mwp_train: 100, eta: 1.0, ..Default::default() };
        assert_eq!(build_mwp_training(&kb, &base).len(), 200);
        assert_eq!(build_mwp_training(&kb, &aug).len(), 400);
    }
}
