//! # dim-core — the dimension-perception framework (the paper's contribution)
//!
//! Ties the substrates together into the three-step framework of Fig. 2:
//!
//! 1. **DimKS** ([`dimks`]): DimUnitKB + unit linking;
//! 2. **Dimension perception** ([`pipeline::train_dimperc`]): continual
//!    fine-tuning on DimEval produces DimPerc;
//! 3. **Quantitative reasoning** ([`pipeline::train_quantitative`]):
//!    quantity-oriented data augmentation and Seq2Seq MWP training.
//!
//! [`experiments`] hosts one runner per table/figure of the paper's
//! evaluation section; the `dim-bench` binaries print them.

#![warn(missing_docs)]

pub mod dimks;
pub mod experiments;
pub mod pipeline;

pub use dimks::DimKs;
pub use pipeline::{
    run_full_pipeline, train_dimperc, train_quantitative, try_run_full_pipeline, DegradeReport,
    PipelineConfig,
};
