//! DimKS: the dimensional knowledge system (§III) — DimUnitKB plus the
//! unit linking module, optionally with context embeddings.

use dim_corpus::CorpusConfig;
use dim_embed::{EmbedConfig, EmbeddingModel};
use dimkb::DimUnitKb;
use dimlink::{Annotator, LinkResult, LinkerConfig, QuantityMention, UnitLinker};
use std::sync::Arc;

/// The assembled knowledge system.
pub struct DimKs {
    kb: Arc<DimUnitKb>,
    annotator: Annotator,
}

impl DimKs {
    /// The standard system: shared KB, lexical-only linking.
    pub fn standard() -> Self {
        Self::from_kb(DimUnitKb::shared())
    }

    /// A system over an explicit KB — e.g. one decoded from a
    /// `dimkb::snap` binary snapshot — with lexical-only linking.
    pub fn from_kb(kb: Arc<DimUnitKb>) -> Self {
        let annotator =
            Annotator::new(UnitLinker::new(kb.clone(), None, LinkerConfig::default()));
        DimKs { kb, annotator }
    }

    /// A system with context embeddings trained on a quantity-rich corpus
    /// plus keyword pseudo-sentences from the KB (so every stored keyword
    /// is in-vocabulary) — the full §III-B2 configuration.
    pub fn with_embeddings(seed: u64) -> Self {
        let kb = DimUnitKb::shared();
        let corpus = dim_corpus::generate(&kb, &CorpusConfig { sentences: 600, seed });
        let mut sentences: Vec<Vec<String>> = corpus
            .iter()
            .map(|s| dim_embed::tokenize::words(&s.text))
            .collect();
        // Keyword pseudo-sentences: a unit's keywords co-occur with its
        // kind words, anchoring Pr(u|c) for rarely-mentioned units.
        for unit in kb.units().iter().filter(|u| !u.prefixed) {
            let kind = kb.kind(unit.kind);
            let mut sent: Vec<String> = unit.keywords.clone();
            sent.extend(kind.words());
            sentences.push(sent);
        }
        let model = EmbeddingModel::train(&sentences, EmbedConfig { seed, ..Default::default() });
        let annotator =
            Annotator::new(UnitLinker::new(kb.clone(), Some(model), LinkerConfig::default()));
        DimKs { kb, annotator }
    }

    /// The knowledge base.
    pub fn kb(&self) -> &Arc<DimUnitKb> {
        &self.kb
    }

    /// The annotator (linker + number scanner).
    pub fn annotator(&self) -> &Annotator {
        &self.annotator
    }

    /// Links a unit mention in context (Definition 1).
    pub fn link(&self, mention: &str, context: &str) -> Vec<LinkResult> {
        self.annotator.linker().link(mention, context)
    }

    /// Annotates the quantities of a text.
    pub fn annotate(&self, text: &str) -> Vec<QuantityMention> {
        self.annotator.annotate(text)
    }

    /// Pairwise comparability of all quantities found in a text — the
    /// Fig. 1 "unit trap" detector. Returns `(index_a, index_b, comparable)`
    /// for every quantity pair, alongside the mentions themselves.
    pub fn comparability(&self, text: &str) -> (Vec<QuantityMention>, Vec<(usize, usize, bool)>) {
        let mentions = self.annotate(text);
        let mut pairs = Vec::new();
        for i in 0..mentions.len() {
            for j in i + 1..mentions.len() {
                let a = self.kb.unit(mentions[i].best_unit()).dim;
                let b = self.kb.unit(mentions[j].best_unit()).dim;
                pairs.push((i, j, a.comparable(b)));
            }
        }
        (mentions, pairs)
    }

    /// Compares the first two quantities of a text through unit conversion
    /// — the paper's introductory example ("LeBron James is taller than
    /// Stephen Curry" from 2.06 m vs 188 cm). Returns the mentions and the
    /// ordering of the first relative to the second; `None` when fewer
    /// than two quantities are found or the dimension law forbids the
    /// comparison.
    pub fn compare_first_two(
        &self,
        text: &str,
    ) -> Option<(QuantityMention, QuantityMention, std::cmp::Ordering)> {
        let mut mentions = self.annotate(text).into_iter();
        let a = mentions.next()?;
        let b = mentions.next()?;
        let b_in_a_units = self.kb.convert(b.value, b.best_unit(), a.best_unit()).ok()?;
        let ordering = a.value.partial_cmp(&b_in_a_units)?;
        Some((a, b, ordering))
    }

    /// Converts the first quantity of `text` into `target_unit`, applying
    /// the dimension law; returns `None` when nothing links or the law
    /// forbids the conversion.
    pub fn convert_mention(&self, text: &str, target_unit: &str) -> Option<f64> {
        let mention = self.annotate(text).into_iter().next()?;
        let target = *self.annotator.linker().link(target_unit, text).first().map(|r| &r.unit)?;
        self.kb.convert(mention.value, mention.best_unit(), target).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_system_resolves_fig1() {
        let ks = DimKs::standard();
        let links = ks.link("dyn/cm", "surface tension");
        assert_eq!(ks.kb().unit(links[0].unit).code, "DYN-PER-CentiM");
        let ms = ks.annotate("其表面张力为0.1 N/m。");
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn compare_first_two_settles_the_intro_example() {
        let ks = DimKs::standard();
        let (a, b, ordering) = ks
            .compare_first_two(
                "LeBron James's height is 2.06 meters and Stephen Curry's height is 188 cm.",
            )
            .expect("two comparable quantities");
        assert_eq!(a.value, 2.06);
        assert_eq!(b.value, 188.0);
        assert_eq!(ordering, std::cmp::Ordering::Greater, "LeBron is taller");
        // Incomparable pair refuses.
        assert!(ks.compare_first_two("0.1 poundal versus 30 dyn/cm").is_none());
    }

    #[test]
    fn embedded_system_still_links() {
        let ks = DimKs::with_embeddings(3);
        let links = ks.link("km", "driving on the road");
        assert!(!links.is_empty());
        assert_eq!(ks.kb().unit(links[0].unit).code, "KiloM");
    }
}
