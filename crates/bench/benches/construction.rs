//! Microbenchmarks of the dataset construction algorithms (the §IV-C3
//! complexity analysis): Algorithm 1 per-sentence cost and Algorithm 2
//! per-iteration cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dim_kgraph::{synthesize, SynthConfig};
use dimeval::{algo1, algo2};
use dimkb::DimUnitKb;
use dimlink::{Annotator, LinkerConfig, UnitLinker};

fn bench_construction(c: &mut Criterion) {
    let kb = DimUnitKb::shared();
    let corpus = dim_corpus::generate(&kb, &dim_corpus::CorpusConfig { sentences: 100, seed: 1 });
    let annotator = Annotator::new(UnitLinker::new(kb.clone(), None, LinkerConfig::default()));
    let mlm = algo1::train_filter(&corpus);
    let kg = synthesize(&kb, &SynthConfig { entities_per_type: 30, seed: 2 });

    // Algorithm 1 at 1 vs 4 threads (byte-identical output; on a
    // single-core host the two read roughly equal, bounding fan-out
    // overhead).
    for threads in [1usize, 4] {
        c.bench_function_meta(
            &format!("algo1_per_100_sentences_threads{threads}"),
            &[("threads", threads as f64), ("morsel", dim_par::MORSEL_SIZE as f64)],
            |b| {
                let cfg = algo1::Algo1Config {
                    parallelism: dim_par::Parallelism::new(threads),
                    ..Default::default()
                };
                b.iter(|| {
                    algo1::semi_automated_annotate(&annotator, &mlm, &corpus, cfg).dataset.len()
                })
            },
        );
    }
    c.bench_function("algo1_train_filter", |b| {
        b.iter(|| algo1::train_filter(&corpus).prior())
    });
    c.bench_function("algo2_bootstrap_5_iters", |b| {
        b.iter_batched(
            || (),
            |_| {
                algo2::bootstrap_retrieve(&kg, &annotator, algo2::Algo2Config::default())
                    .triplets
                    .len()
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("kg_synthesize", |b| {
        b.iter(|| synthesize(&kb, &SynthConfig { entities_per_type: 30, seed: 3 }).store.len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_construction
}
criterion_main!(benches);
