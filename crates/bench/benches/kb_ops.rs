//! Microbenchmarks of DimUnitKB operations: lookup, conversion, and unit
//! expression evaluation (supports the §IV-C3 complexity analysis — KB
//! operations are the `D.annotate` inner loop of Algorithm 1).

use criterion::{criterion_group, criterion_main, Criterion};
use dimkb::{expr, DimUnitKb};
use std::hint::black_box;

fn bench_kb(c: &mut Criterion) {
    let kb = DimUnitKb::shared();
    let m = kb.unit_by_code("M").unwrap().id;
    let km = kb.unit_by_code("KiloM").unwrap().id;

    c.bench_function("kb_build_standard", |b| b.iter(|| DimUnitKb::standard().units().len()));
    // Eager snapshot decode: validate + fully materialize a pre-emitted
    // buffer. Allocation-bound (~30k owned strings/id-lists), so expect
    // the same order as `kb_build_standard`; the µs validation-only path
    // is gated separately by `make snap-gate` (DESIGN.md §13).
    let snap_bytes = kb.to_snapshot();
    c.bench_function("kb_load_snapshot", |b| {
        b.iter(|| {
            let snap = dimkb::SnapKb::load(black_box(snap_bytes.clone())).unwrap();
            snap.into_kb().unwrap().units().len()
        })
    });
    c.bench_function("kb_lookup_exact", |b| {
        b.iter(|| black_box(kb.lookup(black_box("千米"))).len())
    });
    c.bench_function("kb_convert", |b| {
        b.iter(|| kb.convert(black_box(3.25), black_box(km), black_box(m)).unwrap())
    });
    c.bench_function("kb_units_with_dim", |b| {
        let dim = kb.unit(m).dim;
        b.iter(|| black_box(kb.units_with_dim(black_box(dim))).len())
    });
    c.bench_function("expr_eval_compound", |b| {
        b.iter(|| expr::eval(&kb, black_box("J / (kg * K)")).unwrap())
    });

    // Indexed search vs the reference full scan (identical ranked output;
    // the determinism tests in dimkb pin the equivalence).
    let queries: [(&str, &str); 3] =
        [("label", "newton"), ("zh", "千克"), ("keywords", "blood pressure medical")];
    dimkb::search::search(&kb, queries[0].1, 1); // warm the lazy index outside the timing loop
    for (tag, query) in queries {
        c.bench_function(&format!("kb_search_indexed_{tag}"), |b| {
            b.iter(|| dimkb::search::search(&kb, black_box(query), 10).len())
        });
        c.bench_function(&format!("kb_search_scan_{tag}"), |b| {
            b.iter(|| dimkb::search::search_scan(&kb, black_box(query), 10).len())
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kb
}
criterion_main!(benches);
