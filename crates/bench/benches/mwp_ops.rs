//! Microbenchmarks of the MWP engine: equation parsing/evaluation, problem
//! generation, and quantity-oriented augmentation.

use criterion::{criterion_group, criterion_main, Criterion};
use dim_mwp::{calculate, generate, AugmentMethod, Augmenter, GenConfig, Source};
use dimkb::DimUnitKb;
use std::hint::black_box;

fn bench_mwp(c: &mut Criterion) {
    let kb = DimUnitKb::shared();
    let problems = generate(Source::Ape210k, &GenConfig { count: 100, seed: 1 });

    c.bench_function("equation_calculate", |b| {
        b.iter(|| calculate(black_box("x=(150*20%/5%-150)/1000")).unwrap())
    });
    c.bench_function("generate_100_problems", |b| {
        b.iter(|| generate(Source::Ape210k, &GenConfig { count: 100, seed: 2 }).len())
    });
    c.bench_function("augment_context_dimension", |b| {
        let mut aug = Augmenter::new(&kb, 3);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % problems.len();
            aug.augment(&problems[i], AugmentMethod::ContextDimension)
        })
    });
    c.bench_function("to_qmwp_100", |b| {
        b.iter(|| Augmenter::new(&kb, 4).to_qmwp(&problems).len())
    });
}

criterion_group!(benches, bench_mwp);
criterion_main!(benches);
