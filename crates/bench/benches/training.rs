//! Microbenchmarks of TinyLM training steps: choice-scorer SGD, extractor
//! SGD, and equation-generator updates (the per-step cost behind the
//! Fig. 6/7 sweeps).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dim_models::tinylm::choice::ChoiceScorer;
use dim_models::tinylm::eqgen::EquationGenerator;
use dim_mwp::{generate, GenConfig, Source};
use dimeval::{Generator, TaskKind};
use dimkb::DimUnitKb;

fn bench_training(c: &mut Criterion) {
    let kb = DimUnitKb::shared();
    let items = Generator::new(&kb, 1).generate(TaskKind::UnitConversion, 64);
    let problems = generate(Source::Math23k, &GenConfig { count: 64, seed: 2 });

    c.bench_function("choice_sgd_64_items", |b| {
        b.iter_batched(
            || ChoiceScorer::naive(3),
            |mut s| s.train(&items, 1, 4),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("choice_answer", |b| {
        let mut s = ChoiceScorer::naive(5);
        s.train(&items, 2, 6);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % items.len();
            s.answer(&items[i])
        })
    });
    c.bench_function("eqgen_train_64_problems", |b| {
        b.iter_batched(
            EquationGenerator::new,
            |mut g| {
                for p in &problems {
                    g.train_one(p);
                }
                g.examples()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training
}
criterion_main!(benches);
