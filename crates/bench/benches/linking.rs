//! Microbenchmarks of the unit linking module: Levenshtein similarity,
//! exact and fuzzy linking, and full-sentence annotation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dimkb::DimUnitKb;
use dimlink::{lev, Annotator, LinkerConfig, UnitLinker};
use std::hint::black_box;

fn bench_linking(c: &mut Criterion) {
    let kb = DimUnitKb::shared();
    let linker = UnitLinker::new(kb.clone(), None, LinkerConfig::default());
    let annotator = Annotator::new(UnitLinker::new(kb, None, LinkerConfig::default()));

    c.bench_function("levenshtein_similarity", |b| {
        b.iter(|| lev::similarity(black_box("kilometre"), black_box("kilometer")))
    });
    c.bench_function("link_exact_mention", |b| {
        b.iter(|| linker.link(black_box("km/h"), black_box("the car drove fast")))
    });
    c.bench_function("link_fuzzy_mention", |b| {
        b.iter(|| linker.link(black_box("kilometrs"), black_box("distance on the road")))
    });
    c.bench_function("annotate_sentence", |b| {
        b.iter(|| {
            annotator.annotate(black_box(
                "LeBron James's height is 2.06 meters and Stephen Curry's height is 188 cm.",
            ))
        })
    });
    c.bench_function("annotate_chinese_sentence", |b| {
        b.iter(|| annotator.annotate(black_box("小王要将150千克含药量20%的农药稀释成含药量5%的药水")))
    });

    // Batch annotation at 1 vs 4 threads. A fresh annotator per iteration
    // keeps the link memo cold, so this measures real linking work, not
    // cache hits; on a single-core host both variants degenerate to the
    // sequential path and should read roughly equal.
    let texts: Vec<String> = (0..120)
        .map(|i| {
            format!(
                "第{i}组样本：长度为{}米，质量是{}千克，速度达到{} km/h，含水量{}%。",
                i + 2,
                i * 3 + 1,
                (i % 40) + 20,
                (i % 50) + 10,
            )
        })
        .collect();
    let kb2 = DimUnitKb::shared();
    for threads in [1usize, 4] {
        c.bench_function_meta(
            &format!("annotate_batch_threads{threads}"),
            &[("threads", threads as f64), ("morsel", dim_par::MORSEL_SIZE as f64)],
            |b| {
                b.iter_batched(
                    || Annotator::new(UnitLinker::new(kb2.clone(), None, LinkerConfig::default())),
                    |a| a.annotate_batch(&texts, dim_par::Parallelism::new(threads)).len(),
                    BatchSize::SmallInput,
                )
            },
        );
    }

    // Batch solution verification at 1 vs 4 threads, next to
    // annotate_batch: the full rejection/repair pass (beam generation,
    // literal binding, both checker layers, repair search) over a
    // generated problem set.
    let kb3 = DimUnitKb::shared();
    let problems = dim_mwp::generate(
        dim_mwp::Source::Math23k,
        &dim_mwp::GenConfig { count: 120, seed: 33 },
    );
    for threads in [1usize, 4] {
        c.bench_function_meta(
            &format!("verify_batch_threads{threads}"),
            &[("threads", threads as f64), ("problems", problems.len() as f64)],
            |b| {
                b.iter(|| {
                    dim_verify::repair_row(
                        "bench",
                        black_box(&problems),
                        &kb3,
                        33,
                        dim_verify::DEFAULT_NOISE,
                        dim_par::Parallelism::new(threads),
                    )
                })
            },
        );
    }
}

criterion_group!(benches, bench_linking);
criterion_main!(benches);
