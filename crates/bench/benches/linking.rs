//! Microbenchmarks of the unit linking module: Levenshtein similarity,
//! exact and fuzzy linking, and full-sentence annotation.

use criterion::{criterion_group, criterion_main, Criterion};
use dimkb::DimUnitKb;
use dimlink::{lev, Annotator, LinkerConfig, UnitLinker};
use std::hint::black_box;

fn bench_linking(c: &mut Criterion) {
    let kb = DimUnitKb::shared();
    let linker = UnitLinker::new(kb.clone(), None, LinkerConfig::default());
    let annotator = Annotator::new(UnitLinker::new(kb, None, LinkerConfig::default()));

    c.bench_function("levenshtein_similarity", |b| {
        b.iter(|| lev::similarity(black_box("kilometre"), black_box("kilometer")))
    });
    c.bench_function("link_exact_mention", |b| {
        b.iter(|| linker.link(black_box("km/h"), black_box("the car drove fast")))
    });
    c.bench_function("link_fuzzy_mention", |b| {
        b.iter(|| linker.link(black_box("kilometrs"), black_box("distance on the road")))
    });
    c.bench_function("annotate_sentence", |b| {
        b.iter(|| {
            annotator.annotate(black_box(
                "LeBron James's height is 2.06 meters and Stephen Curry's height is 188 cm.",
            ))
        })
    });
    c.bench_function("annotate_chinese_sentence", |b| {
        b.iter(|| annotator.annotate(black_box("小王要将150千克含药量20%的农药稀释成含药量5%的药水")))
    });
}

criterion_group!(benches, bench_linking);
criterion_main!(benches);
