//! Shared formatting helpers and the paper's reported numbers, used by the
//! per-table/figure harness binaries.

pub mod render;

/// Formats a proportion as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

/// Parses a `--quick` flag from the CLI arguments.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parses the `--obs` flag from the CLI arguments.
pub fn obs_flag() -> bool {
    std::env::args().any(|a| a == "--obs")
}

/// Parses a `--obs-out PATH` flag (where `all_experiments` writes the
/// machine-readable metrics report; default `obs_report.json`).
pub fn obs_out_flag() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--obs-out" {
            return args.next();
        }
    }
    None
}

/// Enables metrics collection when `--obs` was passed. Call at the top of
/// a harness `main`.
pub fn obs_init() {
    if obs_flag() {
        dim_obs::enable();
    }
}

/// When observability is on, prints the human-readable metrics table to
/// **stderr** — stdout must stay byte-identical to the non-`--obs` run so
/// determinism diffs over harness output keep working.
pub fn obs_finish() {
    if dim_obs::enabled() {
        eprint!("{}", dim_obs::snapshot().render_table());
    }
}

/// Parses a `--threads N` flag from the CLI arguments.
pub fn threads_flag() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next().and_then(|n| n.parse().ok());
        }
    }
    None
}

/// Parses a `--chaos-seed N` flag (fault-plan seed; default 7).
pub fn chaos_seed_flag() -> u64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--chaos-seed" {
            return args.next().and_then(|n| n.parse().ok()).unwrap_or(7);
        }
    }
    7
}

/// Parses a `--chaos-rate R` flag (fault probability per record; default
/// 0.0, i.e. chaos off). Rate 0 leaves the injector disabled entirely, so
/// `--chaos-rate 0` output is byte-identical to a run with no flag.
pub fn chaos_rate_flag() -> f64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--chaos-rate" {
            return args.next().and_then(|n| n.parse().ok()).unwrap_or(0.0);
        }
    }
    0.0
}

/// Returns the experiment configuration selected by the CLI. `--quick`
/// shrinks datasets and training for fast smoke runs and pins the
/// sequential reference paths; `--threads N` overrides the fan-out width
/// in either mode (results are identical at every width).
pub fn config_from_args() -> dim_core::experiments::ExperimentConfig {
    let mut config = if quick_flag() {
        dim_core::experiments::quick_config()
    } else {
        dim_core::experiments::ExperimentConfig::default()
    };
    if let Some(threads) = threads_flag() {
        let par = dim_par::Parallelism::new(threads);
        config.parallelism = par;
        config.pipeline.parallelism = par;
    }
    config
}

/// Prints a rule line.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// The paper's Table IV rows: (name, units, kinds, dims, lang, freq).
pub const PAPER_TABLE4: [(&str, &str, &str, &str, &str, &str); 3] = [
    ("UoM", "76", "16", "-", "En", "no"),
    ("WolframAlpha", "540", "173", "63", "En", "no"),
    ("DimUnitKB", "1778", "327", "175", "En&Zh", "yes"),
];

/// The paper's Table VI rows: (name, #num, #units, op buckets).
pub const PAPER_TABLE6: [(&str, usize, usize, [usize; 4]); 4] = [
    ("N-Math23k", 225, 17, [162, 47, 16, 0]),
    ("N-Ape210k", 225, 18, [139, 55, 27, 4]),
    ("Q-Math23k", 225, 35, [108, 86, 24, 7]),
    ("Q-Ape210k", 225, 52, [99, 68, 39, 19]),
];

/// The paper's Table VIII rows: (name, [prec/f1 per category]).
pub const PAPER_TABLE8: [(&str, [(f64, f64); 3]); 2] = [
    ("LLaMa_IFT", [(29.65, 24.01), (20.38, 16.64), (8.94, 6.70)]),
    ("DimPerc", [(71.69, 63.13), (82.82, 77.30), (89.74, 81.31)]),
];

/// The paper's Table IX rows: (name, [N-M23k, N-Ape, Q-M23k, Q-Ape]).
pub const PAPER_TABLE9: [(&str, [f64; 4]); 7] = [
    ("GPT4", [78.22, 65.33, 57.33, 34.67]),
    ("GPT4 + WolframAlpha", [84.44, 67.11, 54.67, 43.55]),
    ("GPT-3.5-turbo", [49.33, 39.56, 29.78, 14.22]),
    ("GPT-3.5-turbo + WolframAlpha", [58.67, 44.89, 30.22, 20.44]),
    ("BertGen", [73.78, 61.78, 14.22, 30.67]),
    ("LLaMa", [78.22, 53.78, 36.44, 18.67]),
    ("DimPerc (Ours)", [80.89, 60.00, 82.67, 50.67]),
];

/// One Table VII row: (name, QE/VE/UE f1, then six tasks' (prec, f1)).
pub type PaperTable7Row = (&'static str, [f64; 3], [(f64, f64); 6]);

/// Selected paper Table VII rows for the comparison footer.
pub const PAPER_TABLE7_KEY_ROWS: [PaperTable7Row; 3] = [
    (
        "GPT-4 (zero-shot)",
        [73.91, 80.59, 80.79],
        [
            (66.67, 39.63),
            (68.89, 55.18),
            (44.44, 34.40),
            (31.11, 14.98),
            (53.33, 31.37),
            (64.45, 52.68),
        ],
    ),
    (
        "LLaMa-2 13B",
        [57.58, 59.09, 58.42],
        [
            (44.44, 39.82),
            (24.44, 25.92),
            (51.11, 36.62),
            (20.00, 19.92),
            (13.34, 5.60),
            (33.33, 21.90),
        ],
    ),
    (
        "DimPerc (Ours)",
        [71.53, 73.61, 82.35],
        [
            (62.81, 62.59),
            (83.03, 66.50),
            (99.11, 99.13),
            (66.33, 66.28),
            (83.93, 67.22),
            (95.54, 95.39),
        ],
    ),
];
