//! Table/figure renderers: each function returns the exact text its
//! harness binary prints to stdout. Splitting rendering from `main` lets
//! `all_experiments` run the whole suite in one process (so a single obs
//! registry sees every stage) and lets the golden-results test byte-compare
//! regenerated output against `results/*.txt` without spawning binaries.
//!
//! Rendering must stay a pure function of the experiment config: anything
//! nondeterministic (timings, thread counts, obs state) is forbidden here.

use crate::{pct, PAPER_TABLE4, PAPER_TABLE6, PAPER_TABLE7_KEY_ROWS, PAPER_TABLE8, PAPER_TABLE9};
use dim_core::experiments::{self, ExperimentConfig};
use dim_mwp::OP_BUCKET_LABELS;
use std::fmt::Write as _;

fn rule_to(out: &mut String, width: usize) {
    let _ = writeln!(out, "{}", "-".repeat(width));
}

/// Table IV — knowledge-base statistics comparison.
pub fn table4() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table IV — statistics of DimUnitKB vs UoM and WolframAlpha");
    rule_to(&mut out, 78);
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>14} {:>12} {:>8} {:>6}",
        "Resource", "#Units", "#QuantityKind", "#DimVector", "Lang", "Freq"
    );
    rule_to(&mut out, 78);
    for row in experiments::table4() {
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>14} {:>12} {:>8} {:>6}",
            row.name,
            row.units,
            row.kinds,
            if row.dims == 0 { "-".to_string() } else { row.dims.to_string() },
            row.lang,
            if row.freq { "yes" } else { "no" }
        );
    }
    rule_to(&mut out, 78);
    let _ = writeln!(out, "Paper reported:");
    for (name, units, kinds, dims, lang, freq) in PAPER_TABLE4 {
        let _ = writeln!(out, "{name:<14} {units:>8} {kinds:>14} {dims:>12} {lang:>8} {freq:>6}");
    }
    out
}

/// Fig. 3 — popular units sorted by the frequency feature.
pub fn fig3() -> String {
    let k = 20;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 3 — top {k} units by Freq(u) (Eq. 1-2 over synthetic popularity sources)"
    );
    rule_to(&mut out, 56);
    for (i, (label, freq)) in experiments::fig3(k).into_iter().enumerate() {
        let bar = "#".repeat((freq * 40.0).round() as usize);
        let _ = writeln!(out, "{:>2}. {:<22} {:>6.3}  {}", i + 1, label, freq, bar);
    }
    rule_to(&mut out, 56);
    let _ = writeln!(out, "Paper shape: everyday units (metre, percent, hour, kilogram)");
    let _ = writeln!(out, "dominate; rare scientific units trail (the centimetre > decimetre");
    let _ = writeln!(out, "property is asserted by dimkb's test suite).");
    out
}

/// Fig. 4 — top quantity kinds and their top-five units.
pub fn fig4() -> String {
    let k = 14;
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 4 — top {k} quantity kinds (freq = mean of top-5 unit freqs)");
    rule_to(&mut out, 86);
    for row in experiments::fig4(k) {
        let units: Vec<String> =
            row.units.iter().map(|(u, f)| format!("{u} ({f:.2})")).collect();
        let _ = writeln!(out, "{:<22} {:>5.3}  {}", row.kind, row.freq, units.join(", "));
    }
    rule_to(&mut out, 86);
    let _ = writeln!(out, "Paper shape: everyday kinds (Length, Time, Mass, Ratio) lead with");
    let _ = writeln!(out, "their common units; each kind lists its five most frequent units.");
    out
}

/// Table VI — statistics of the MWP evaluation datasets.
pub fn table6(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "Table VI — statistics of evaluation datasets on quantitative reasoning");
    rule_to(&mut out, 70);
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "Dataset",
        "#Num",
        "#Units",
        OP_BUCKET_LABELS[0],
        OP_BUCKET_LABELS[1],
        OP_BUCKET_LABELS[2],
        OP_BUCKET_LABELS[3]
    );
    rule_to(&mut out, 70);
    for (name, s) in experiments::table6(cfg) {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>7} {:>9} {:>9} {:>9} {:>9}",
            name, s.problems, s.units, s.op_buckets[0], s.op_buckets[1], s.op_buckets[2],
            s.op_buckets[3]
        );
    }
    rule_to(&mut out, 70);
    let _ = writeln!(out, "Paper reported:");
    for (name, num, units, b) in PAPER_TABLE6 {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>7} {:>9} {:>9} {:>9} {:>9}",
            name, num, units, b[0], b[1], b[2], b[3]
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Shape to hold: Q-sets have more distinct units and shift mass into");
    let _ = writeln!(out, "the higher operation buckets (unit conversions add steps).");
    out
}

/// Table VII — DimEval results across models and settings.
pub fn table7(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table VII — results (%) of different models and settings on DimEval");
    let _ = writeln!(
        out,
        "(eval: {} items/task; DimPerc trained on {} items/task × {} epochs)",
        cfg.eval_per_task, cfg.pipeline.train_per_task, cfg.pipeline.epochs
    );
    rule_to(&mut out, 132);
    let _ = writeln!(
        out,
        "{:<28} {:>6} | {:>6} {:>6} {:>6} | {:>11} | {:>11} | {:>11} | {:>11} | {:>11} | {:>11}",
        "Model", "#par", "QE", "VE", "UE",
        "KindMatch", "Comparable", "DimPred", "DimArith", "Magnitude", "Conversion"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>6} | {:>6} {:>6} {:>6} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5}",
        "", "", "(F1)", "(F1)", "(F1)", "Prec", "F1", "Prec", "F1", "Prec", "F1", "Prec", "F1", "Prec", "F1", "Prec", "F1"
    );
    rule_to(&mut out, 132);
    for row in experiments::table7(cfg) {
        let ext = match row.extraction {
            Some([qe, ve, ue]) => format!("{:>6} {:>6} {:>6}", pct(qe), pct(ve), pct(ue)),
            None => format!("{:>6} {:>6} {:>6}", "-", "-", "-"),
        };
        let tasks: Vec<String> =
            row.tasks.iter().map(|(_, p, f)| format!("{:>5} {:>5}", pct(*p), pct(*f))).collect();
        let _ =
            writeln!(out, "{:<28} {:>6} | {} | {}", row.name, row.params, ext, tasks.join(" | "));
    }
    rule_to(&mut out, 132);
    let _ = writeln!(out, "Paper reported (key rows, QE/VE/UE then Prec/F1 per task):");
    for (name, ext, tasks) in PAPER_TABLE7_KEY_ROWS {
        let t: Vec<String> =
            tasks.iter().map(|(p, f)| format!("{p:>5.2} {f:>5.2}")).collect();
        let _ = writeln!(
            out,
            "{:<28} {:>6} | {:>6.2} {:>6.2} {:>6.2} | {}",
            name, "", ext[0], ext[1], ext[2], t.join(" | ")
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Shapes to hold: GPT-4 best zero-shot; dimension arithmetic hardest for");
    let _ = writeln!(out, "LLMs; F1 < precision for abstaining GPT-series; DimPerc dominates the");
    let _ = writeln!(out, "dimension- and scale-perception tasks after fine-tuning.");
    out
}

/// Table VIII — DimPerc vs the base model on DimEval categories.
pub fn table8(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "Table VIII — comparison between DimPerc and the base model on DimEval");
    rule_to(&mut out, 88);
    let _ = writeln!(
        out,
        "{:<12} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "Model", "Basic P.", "F1", "Dim P.", "F1", "Scale P.", "F1"
    );
    rule_to(&mut out, 88);
    for row in experiments::table8(cfg) {
        let c = row.categories;
        let _ = writeln!(
            out,
            "{:<12} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
            row.name,
            pct(c[0].0),
            pct(c[0].1),
            pct(c[1].0),
            pct(c[1].1),
            pct(c[2].0),
            pct(c[2].1)
        );
    }
    rule_to(&mut out, 88);
    let _ = writeln!(out, "Paper reported:");
    for (name, cats) in PAPER_TABLE8 {
        let _ = writeln!(
            out,
            "{:<12} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2}",
            name, cats[0].0, cats[0].1, cats[1].0, cats[1].1, cats[2].0, cats[2].1
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Shape to hold: fine-tuning on DimEval lifts every category by a");
    let _ = writeln!(out, "large margin over the instruction-tuned base model.");
    out
}

/// Table IX — accuracy on N-MWP and Q-MWP.
pub fn table9(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table IX — accuracy (%) of different models on N-MWP and Q-MWP");
    let _ = writeln!(
        out,
        "(eval: {} problems/set; DimPerc pipeline: η = {}, {} MWP training problems/style)",
        cfg.mwp_eval, cfg.pipeline.eta, cfg.pipeline.mwp_train
    );
    rule_to(&mut out, 86);
    let _ = writeln!(
        out,
        "{:<32} {:>11} {:>11} {:>11} {:>11}",
        "Model", "N-Math23k", "N-Ape210k", "Q-Math23k", "Q-Ape210k"
    );
    rule_to(&mut out, 86);
    for row in experiments::table9(cfg) {
        let _ = writeln!(
            out,
            "{:<32} {:>11} {:>11} {:>11} {:>11}",
            row.name,
            pct(row.accuracy[0]),
            pct(row.accuracy[1]),
            pct(row.accuracy[2]),
            pct(row.accuracy[3])
        );
    }
    rule_to(&mut out, 86);
    let _ = writeln!(out, "Paper reported:");
    for (name, a) in PAPER_TABLE9 {
        let _ = writeln!(
            out,
            "{:<32} {:>11.2} {:>11.2} {:>11.2} {:>11.2}",
            name, a[0], a[1], a[2], a[3]
        );
    }
    let _ = writeln!(out);
    let _ =
        writeln!(out, "Shapes to hold: every baseline drops sharply from N to Q; the tool helps");
    let _ =
        writeln!(out, "hard Q-sets; supervised N-MWP models collapse hardest; DimPerc leads Q-MWP.");
    out
}

/// Fig. 6 — DimPerc accuracy on Q-Ape210k vs augmentation rate η.
pub fn fig6(cfg: &ExperimentConfig) -> String {
    let etas = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut out = String::new();
    let _ =
        writeln!(out, "Fig. 6 — accuracy of DimPerc on Q-Ape210k vs data augmentation rate η");
    rule_to(&mut out, 54);
    for (eta, acc) in experiments::fig6(cfg, &etas) {
        let bar = "#".repeat((acc * 50.0).round() as usize);
        let _ = writeln!(out, "η = {eta:<5} accuracy = {:>6}%  {bar}", pct(acc));
    }
    rule_to(&mut out, 54);
    let _ = writeln!(out, "Paper shape: accuracy rises with η and saturates at η ≥ 0.5;");
    let _ = writeln!(out, "the paper recommends η = 0.5 as the cost/benefit sweet spot.");
    out
}

/// Fig. 7 — training curves (base model × equation tokenization).
pub fn fig7(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 7 — Q-Ape210k accuracy vs training steps (base model × equation tokenization)"
    );
    rule_to(&mut out, 76);
    for curve in experiments::fig7(cfg, 8) {
        let _ = writeln!(out, "{}:", curve.label);
        for (step, acc) in &curve.points {
            let bar = "#".repeat((acc * 48.0).round() as usize);
            let _ = writeln!(out, "  step {:>6}: {:>6}%  {bar}", step, pct(*acc));
        }
        let _ = writeln!(out);
    }
    rule_to(&mut out, 76);
    let _ =
        writeln!(out, "Paper shapes: DimPerc starts above the base model (dimension knowledge");
    let _ =
        writeln!(out, "transfers) and both improve with steps; equation (digit) tokenization");
    let _ = writeln!(
        out,
        "consistently *underperforms* regular tokenization — the paper's negative"
    );
    let _ = writeln!(out, "result, reproduced here through longer decoded sequences.");
    out
}

/// Ablation of Algorithm 1's masked-LM filtering stage.
pub fn ablation_algo1() -> String {
    use dimension_perception::corpus::{generate, CorpusConfig};
    use dimension_perception::eval::algo1::{self, Algo1Config};
    use dimension_perception::kb::DimUnitKb;
    use dimension_perception::link::{Annotator, LinkerConfig, UnitLinker};

    let kb = DimUnitKb::shared();
    let corpus = generate(&kb, &CorpusConfig { sentences: 600, seed: 505 });
    let annotator = Annotator::new(UnitLinker::new(kb, None, LinkerConfig::default()));
    let mlm = algo1::train_filter(&corpus);
    let mut out = String::new();
    let _ = writeln!(out, "Algorithm 1 ablation — masked-LM filter thresholds");
    rule_to(&mut out, 78);
    let _ = writeln!(
        out,
        "{:<12} {:>16} {:>16} {:>10} {:>12}",
        "threshold", "stage-1 prec", "stage-2 prec", "removed", "review work"
    );
    rule_to(&mut out, 78);
    for threshold in [0.0, 0.05, 0.18, 0.4, 0.7] {
        let res = algo1::semi_automated_annotate(
            &annotator,
            &mlm,
            &corpus,
            Algo1Config { mlm_threshold: threshold, ..Default::default() },
        );
        let _ = writeln!(
            out,
            "{:<12} {:>15}% {:>15}% {:>10} {:>12}",
            threshold,
            pct(res.stage1_precision),
            pct(res.stage2_precision),
            res.removed_by_filter,
            res.corrected_by_review
        );
    }
    rule_to(&mut out, 78);
    let _ = writeln!(out, "threshold 0 disables the filter (stage-2 = stage-1); the paper's");
    let _ = writeln!(out, "automated accuracy is 82% — moderate thresholds recover precision");
    let _ = writeln!(out, "by dropping device-code decoys at small recall cost.");
    out
}

/// Ablation of the unit-linking score components (§III-B).
pub fn ablation_linking() -> String {
    use dimension_perception::corpus::{generate, CorpusConfig};
    use dimension_perception::kb::DimUnitKb;
    use dimension_perception::link::{LinkerConfig, UnitLinker};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn perturb(rng: &mut StdRng, mention: &str) -> String {
        match rng.gen_range(0..10) {
            // Lowercase (symbol case is lost in casual text).
            0..=3 => mention.to_lowercase(),
            // Drop one character (typo), only for longer mentions.
            4..=6 if mention.chars().count() > 3 => {
                let chars: Vec<char> = mention.chars().collect();
                let drop = rng.gen_range(1..chars.len());
                chars
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, c)| c)
                    .collect()
            }
            // Keep exact.
            _ => mention.to_string(),
        }
    }

    let kb = DimUnitKb::shared();
    let corpus = generate(&kb, &CorpusConfig { sentences: 500, seed: 404 });
    let variants: [(&str, LinkerConfig); 4] = [
        (
            "mention only (Pr(u|m))",
            LinkerConfig { use_prior: false, use_context: false, ..Default::default() },
        ),
        ("+ prior (Pr(u))", LinkerConfig { use_context: false, ..Default::default() }),
        ("+ context (Pr(u|c))", LinkerConfig { use_prior: false, ..Default::default() }),
        ("full model", LinkerConfig::default()),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "Linking ablation — argmax accuracy on perturbed corpus mentions");
    let _ = writeln!(out, "(40% lowercased, 30% one-character typos, 30% exact)");
    rule_to(&mut out, 64);
    for (label, config) in variants {
        let linker = UnitLinker::new(kb.clone(), None, config);
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = 0usize;
        let mut correct = 0usize;
        for sent in &corpus {
            for q in &sent.quantities {
                total += 1;
                let noisy = perturb(&mut rng, &q.unit_surface);
                if let Some(best) = linker.best(&noisy, &sent.text) {
                    if kb.unit(best.unit).code == q.unit_code {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / total as f64;
        let _ = writeln!(out, "{label:<26} {:>7}%   ({correct}/{total})", pct(acc));
    }
    rule_to(&mut out, 64);
    let _ = writeln!(out, "Finding: with a complete naming dictionary the mention term");
    let _ = writeln!(out, "Pr(u|m) already resolves ~99% of mentions; the prior and context");
    let _ = writeln!(out, "terms only matter for genuinely ambiguous surfaces (degree, 度,");
    let _ = writeln!(out, "lost-case mw) and can even mislead when the local corpus skews");
    let _ = writeln!(out, "away from global unit frequency — the classic prior/likelihood");
    let _ = writeln!(out, "trade-off the paper's product formulation embodies.");
    out
}

/// The dim-verify repair table — accuracy of the simulated beam's top
/// candidate before and after the dimensional rejection/repair pass, per
/// evaluation set (DESIGN.md §15). Gold equations always verify (a tested
/// invariant), so the after column can never fall below the before column.
pub fn verify_repair(cfg: &ExperimentConfig) -> String {
    use dim_verify::{repair_row, DEFAULT_NOISE};

    let kb = dimkb::DimUnitKb::shared();
    let sets = experiments::build_mwp_eval(cfg);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dim-verify repair — beam top-1 accuracy before/after dimensional verification"
    );
    let _ = writeln!(
        out,
        "(beam-sim noise = {DEFAULT_NOISE}, seed = {}, beam width = {})",
        cfg.seed,
        dim_verify::BEAM
    );
    rule_to(&mut out, 72);
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "Dataset", "#Prob", "Before", "After", "Rejected", "Promoted"
    );
    rule_to(&mut out, 72);
    for (name, problems) in sets.iter() {
        let row = repair_row(name, problems, &kb, cfg.seed, DEFAULT_NOISE, cfg.parallelism);
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>8}% {:>8}% {:>9} {:>9}",
            row.dataset,
            row.n,
            pct(row.before),
            pct(row.after),
            row.rejected,
            row.promoted
        );
    }
    rule_to(&mut out, 72);
    let _ = writeln!(out, "Invariant: after >= before on every row — verification only ever");
    let _ = writeln!(out, "replaces a top candidate that fails the dimension or conversion law.");
    out
}

/// The NUMCoT-style perturbation table — detection rate of the two-law
/// checker per mutation class, over the Q-MWP evaluation sets (mutating
/// a unit mid-problem must flip the verdict for the mutation to count as
/// detected; see EXPERIMENTS.md "Perturbation methodology").
pub fn verify_perturb(cfg: &ExperimentConfig) -> String {
    use dimeval::detection_rates;

    let kb = dimkb::DimUnitKb::shared();
    let sets = experiments::build_mwp_eval(cfg);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dim-verify perturbation — unit-mutation detection rates (seed = {})",
        cfg.seed
    );
    rule_to(&mut out, 64);
    let _ = writeln!(
        out,
        "{:<12} {:<18} {:>6} {:>9} {:>8}",
        "Dataset", "Mutation", "n", "Detected", "Rate"
    );
    rule_to(&mut out, 64);
    for (name, problems) in sets.iter() {
        for row in detection_rates(problems, &kb, cfg.seed, cfg.parallelism) {
            let _ = writeln!(
                out,
                "{:<12} {:<18} {:>6} {:>9} {:>7}%",
                name,
                row.class.name(),
                row.n,
                row.detected,
                pct(row.rate())
            );
        }
    }
    rule_to(&mut out, 64);
    let _ = writeln!(out, "cross-dimension breaks the dimension law; prefix-swap and");
    let _ = writeln!(out, "cross-lingual keep the dimension and are caught (when the written");
    let _ = writeln!(out, "value no longer reconciles) by the conversion law's scale sets.");
    out
}

/// Chaos stage — the degraded-mode pipeline under a deterministic fault
/// plan. Installs `FaultPlan { seed, rate }` for the duration of the call
/// (and clears it before returning, so classic stages never see it), runs
/// a decoy-laced annotation sweep plus the full degraded pipeline, and
/// renders the plan banner, per-stage outcomes and the sorted quarantine
/// manifest. Output is a pure function of `(cfg, seed, rate)`: the
/// manifest is identical across runs and thread widths.
pub fn chaos_report(cfg: &ExperimentConfig, seed: u64, rate: f64) -> String {
    use dimkb::degrade::ErrorBudget;
    use dimlink::{Annotator, LinkerConfig, UnitLinker};

    let plan = dim_chaos::FaultPlan::new(seed, rate);
    dim_chaos::silence_injected_panic_reports();
    dim_chaos::install(plan);
    let budget = ErrorBudget::new(0.5);

    let mut out = String::new();
    let _ = writeln!(out, "Chaos — degraded-mode pipeline under deterministic fault injection");
    rule_to(&mut out, 78);
    let _ = writeln!(
        out,
        "plan: seed={} rate={:.4} kinds={}",
        plan.seed,
        plan.rate,
        plan.kinds.render()
    );
    let _ = writeln!(out, "budget: max_error_rate={:.2}", budget.max_error_rate);
    rule_to(&mut out, 78);

    // Decoy-laced annotation sweep: exercises the `link.annotate` site and
    // the decoy guard (device codes must be quarantined, not unwrapped).
    let texts: Vec<String> = (0..12)
        .map(|i| match i % 4 {
            0 => format!("这段管道全长{}米。", i + 2),
            1 => format!("货物重量是{} kg左右。", i * 3 + 1),
            2 => format!("设备型号为LPUI-{}T,已经上线。", i),
            _ => format!("列车速度为{} km/h。", i + 5),
        })
        .collect();
    let annotator =
        Annotator::new(UnitLinker::new(dimkb::DimUnitKb::shared(), None, LinkerConfig::default()));
    let mut quarantine = Vec::new();
    match annotator.try_annotate_batch(&texts, cfg.parallelism, budget) {
        Ok(d) => {
            let _ = writeln!(
                out,
                "annotate: {} texts, {} annotated, {} quarantined",
                d.items.len(),
                d.ok_count(),
                d.failed_count()
            );
            quarantine.extend(d.quarantine);
        }
        Err(e) => {
            let _ = writeln!(out, "annotate: aborted — {e}");
        }
    }

    // The full degraded pipeline: DimEval construction, MWP generation and
    // augmentation all skip-and-record faulted work under the budget.
    match dim_core::try_run_full_pipeline(&cfg.pipeline, budget) {
        Ok((model, report)) => {
            let _ = writeln!(
                out,
                "pipeline: completed {} — model {}, {} records quarantined",
                if report.is_degraded() { "degraded" } else { "clean" },
                model.display_name,
                report.quarantine.len()
            );
            quarantine.extend(report.quarantine);
        }
        Err(e) => {
            let _ = writeln!(out, "pipeline: aborted — {e}");
        }
    }

    rule_to(&mut out, 78);
    let _ = writeln!(out, "quarantine manifest:");
    out.push_str(&dimkb::degrade::manifest(&quarantine));
    dim_chaos::clear();
    out
}
