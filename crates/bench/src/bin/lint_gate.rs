//! lint-gate: the deep-lint regression gate (`make lint-gate`).
//!
//! `make lint` already gates *what* `dimlint --deep` finds; this gate pins
//! *how* it finds it (see EXPERIMENTS.md "Deep-lint gate"):
//!
//! 1. **Width determinism** — the full deep run at thread width 1 and
//!    width 4 renders byte-identical reports (human and JSON). The
//!    parallel file pass is a pure fan-out; any divergence means a rule
//!    leaked ordering into its output.
//! 2. **Runtime budget** — the median full deep run (item parse, call
//!    graph, all nine rules over the whole workspace) must stay under
//!    `BUDGET_NS`. The deep pass runs inside `make verify` on every
//!    change; if it creeps from milliseconds toward seconds, the
//!    analyses have regressed from single-pass to quadratic somewhere.
//!
//! Methodology matches bench_gate/snap_gate: `WARMUP` untimed runs,
//! `SAMPLES` timed runs, median-of-samples (robust to co-tenant noise).

use dim_lint::{run, LintOptions};
use std::hint::black_box;
use std::time::Instant;

/// Full deep-run budget in nanoseconds (measured ~50 ms on the reference
/// machine; 500 ms leaves 10x headroom for slow CI before failing).
const BUDGET_NS: f64 = 500_000_000.0;
/// Timed samples.
const SAMPLES: usize = 20;
/// Untimed warmup runs.
const WARMUP: usize = 3;

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

fn opts(threads: usize) -> LintOptions {
    // The gate runs from the workspace root (`make lint-gate`), like
    // dimlint's own default.
    let mut o = LintOptions::new(std::path::PathBuf::from("."));
    o.deep = true;
    o.threads = threads;
    o
}

fn main() {
    let mut failed = false;

    // Gate 1: byte-identical output across thread widths.
    let one = run(&opts(1)).expect("workspace scan");
    let four = run(&opts(4)).expect("workspace scan");
    let det_ok = one.render_human() == four.render_human()
        && one.render_json() == four.render_json();
    println!(
        "lint-gate: width determinism   {} ({} files, {} diagnostics)",
        if det_ok { "PASS" } else { "FAIL" },
        one.files_scanned,
        one.diagnostics.len()
    );
    failed |= !det_ok;

    // Gate 2: deep-run median under budget.
    for _ in 0..WARMUP {
        black_box(run(&opts(4)).expect("workspace scan"));
    }
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let report = run(&opts(4)).expect("workspace scan");
        samples.push(start.elapsed().as_nanos() as f64);
        black_box(report);
    }
    let median = median_ns(samples);
    let budget_ok = median < BUDGET_NS;
    println!(
        "lint-gate: deep-run median     {} ({:.1} ms, budget {:.0} ms, {SAMPLES} samples)",
        if budget_ok { "PASS" } else { "FAIL" },
        median / 1_000_000.0,
        BUDGET_NS / 1_000_000.0
    );
    failed |= !budget_ok;

    if failed {
        println!("lint-gate: FAILED");
        std::process::exit(1);
    }
    println!("lint-gate: all gates passed");
}
