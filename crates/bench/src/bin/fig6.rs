//! Regenerates Fig. 6: DimPerc accuracy on Q-Ape210k vs augmentation rate η.

fn main() {
    dim_bench::obs_init();
    let cfg = dim_bench::config_from_args();
    print!("{}", dim_bench::render::fig6(&cfg));
    dim_bench::obs_finish();
}
