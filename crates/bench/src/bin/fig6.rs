//! Regenerates Fig. 6: DimPerc accuracy on Q-Ape210k vs augmentation rate η.

use dim_bench::{config_from_args, pct, rule};
use dim_core::experiments::fig6;

fn main() {
    let cfg = config_from_args();
    let etas = [0.0, 0.25, 0.5, 0.75, 1.0];
    println!("Fig. 6 — accuracy of DimPerc on Q-Ape210k vs data augmentation rate η");
    rule(54);
    for (eta, acc) in fig6(&cfg, &etas) {
        let bar = "#".repeat((acc * 50.0).round() as usize);
        println!("η = {eta:<5} accuracy = {:>6}%  {bar}", pct(acc));
    }
    rule(54);
    println!("Paper shape: accuracy rises with η and saturates at η ≥ 0.5;");
    println!("the paper recommends η = 0.5 as the cost/benefit sweet spot.");
}
