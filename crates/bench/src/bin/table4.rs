//! Regenerates Table IV: knowledge-base statistics comparison.

fn main() {
    dim_bench::obs_init();
    print!("{}", dim_bench::render::table4());
    dim_bench::obs_finish();
}
