//! Regenerates Table IV: knowledge-base statistics comparison.

use dim_bench::{rule, PAPER_TABLE4};
use dim_core::experiments::table4;

fn main() {
    println!("Table IV — statistics of DimUnitKB vs UoM and WolframAlpha");
    rule(78);
    println!(
        "{:<14} {:>8} {:>14} {:>12} {:>8} {:>6}",
        "Resource", "#Units", "#QuantityKind", "#DimVector", "Lang", "Freq"
    );
    rule(78);
    for row in table4() {
        println!(
            "{:<14} {:>8} {:>14} {:>12} {:>8} {:>6}",
            row.name,
            row.units,
            row.kinds,
            if row.dims == 0 { "-".to_string() } else { row.dims.to_string() },
            row.lang,
            if row.freq { "yes" } else { "no" }
        );
    }
    rule(78);
    println!("Paper reported:");
    for (name, units, kinds, dims, lang, freq) in PAPER_TABLE4 {
        println!("{name:<14} {units:>8} {kinds:>14} {dims:>12} {lang:>8} {freq:>6}");
    }
}
