//! Regenerates Table VIII: DimPerc vs the base model on DimEval categories.

fn main() {
    dim_bench::obs_init();
    let cfg = dim_bench::config_from_args();
    print!("{}", dim_bench::render::table8(&cfg));
    dim_bench::obs_finish();
}
