//! Regenerates Table VIII: DimPerc vs the base model on DimEval categories.

use dim_bench::{config_from_args, pct, rule, PAPER_TABLE8};
use dim_core::experiments::table8;

fn main() {
    let cfg = config_from_args();
    println!("Table VIII — comparison between DimPerc and the base model on DimEval");
    rule(88);
    println!(
        "{:<12} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "Model", "Basic P.", "F1", "Dim P.", "F1", "Scale P.", "F1"
    );
    rule(88);
    for row in table8(&cfg) {
        let c = row.categories;
        println!(
            "{:<12} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
            row.name,
            pct(c[0].0), pct(c[0].1), pct(c[1].0), pct(c[1].1), pct(c[2].0), pct(c[2].1)
        );
    }
    rule(88);
    println!("Paper reported:");
    for (name, cats) in PAPER_TABLE8 {
        println!(
            "{:<12} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2}",
            name, cats[0].0, cats[0].1, cats[1].0, cats[1].1, cats[2].0, cats[2].1
        );
    }
    println!();
    println!("Shape to hold: fine-tuning on DimEval lifts every category by a");
    println!("large margin over the instruction-tuned base model.");
}
