//! Regenerates Fig. 7: training curves with different base models and
//! tokenization strategies on Q-Ape210k.

use dim_bench::{config_from_args, pct, rule};
use dim_core::experiments::fig7;

fn main() {
    let cfg = config_from_args();
    println!("Fig. 7 — Q-Ape210k accuracy vs training steps (base model × equation tokenization)");
    rule(76);
    for curve in fig7(&cfg, 8) {
        println!("{}:", curve.label);
        for (step, acc) in &curve.points {
            let bar = "#".repeat((acc * 48.0).round() as usize);
            println!("  step {:>6}: {:>6}%  {bar}", step, pct(*acc));
        }
        println!();
    }
    rule(76);
    println!("Paper shapes: DimPerc starts above the base model (dimension knowledge");
    println!("transfers) and both improve with steps; equation (digit) tokenization");
    println!("consistently *underperforms* regular tokenization — the paper's negative");
    println!("result, reproduced here through longer decoded sequences.");
}
