//! Regenerates Fig. 7: training curves with different base models and
//! tokenization strategies on Q-Ape210k.

fn main() {
    dim_bench::obs_init();
    let cfg = dim_bench::config_from_args();
    print!("{}", dim_bench::render::fig7(&cfg));
    dim_bench::obs_finish();
}
