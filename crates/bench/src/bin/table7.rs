//! Regenerates Table VII: DimEval results across models and settings.

use dim_bench::{config_from_args, pct, rule, PAPER_TABLE7_KEY_ROWS};
use dim_core::experiments::table7;

fn main() {
    let cfg = config_from_args();
    println!("Table VII — results (%) of different models and settings on DimEval");
    println!(
        "(eval: {} items/task; DimPerc trained on {} items/task × {} epochs)",
        cfg.eval_per_task, cfg.pipeline.train_per_task, cfg.pipeline.epochs
    );
    rule(132);
    println!(
        "{:<28} {:>6} | {:>6} {:>6} {:>6} | {:>11} | {:>11} | {:>11} | {:>11} | {:>11} | {:>11}",
        "Model", "#par", "QE", "VE", "UE",
        "KindMatch", "Comparable", "DimPred", "DimArith", "Magnitude", "Conversion"
    );
    println!(
        "{:<28} {:>6} | {:>6} {:>6} {:>6} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5} | {:>5} {:>5}",
        "", "", "(F1)", "(F1)", "(F1)", "Prec", "F1", "Prec", "F1", "Prec", "F1", "Prec", "F1", "Prec", "F1", "Prec", "F1"
    );
    rule(132);
    for row in table7(&cfg) {
        let ext = match row.extraction {
            Some([qe, ve, ue]) => format!("{:>6} {:>6} {:>6}", pct(qe), pct(ve), pct(ue)),
            None => format!("{:>6} {:>6} {:>6}", "-", "-", "-"),
        };
        let tasks: Vec<String> =
            row.tasks.iter().map(|(_, p, f)| format!("{:>5} {:>5}", pct(*p), pct(*f))).collect();
        println!("{:<28} {:>6} | {} | {}", row.name, row.params, ext, tasks.join(" | "));
    }
    rule(132);
    println!("Paper reported (key rows, QE/VE/UE then Prec/F1 per task):");
    for (name, ext, tasks) in PAPER_TABLE7_KEY_ROWS {
        let t: Vec<String> =
            tasks.iter().map(|(p, f)| format!("{p:>5.2} {f:>5.2}")).collect();
        println!(
            "{:<28} {:>6} | {:>6.2} {:>6.2} {:>6.2} | {}",
            name, "", ext[0], ext[1], ext[2], t.join(" | ")
        );
    }
    println!();
    println!("Shapes to hold: GPT-4 best zero-shot; dimension arithmetic hardest for");
    println!("LLMs; F1 < precision for abstaining GPT-series; DimPerc dominates the");
    println!("dimension- and scale-perception tasks after fine-tuning.");
}
