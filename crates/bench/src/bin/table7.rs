//! Regenerates Table VII: DimEval results across models and settings.

fn main() {
    dim_bench::obs_init();
    let cfg = dim_bench::config_from_args();
    print!("{}", dim_bench::render::table7(&cfg));
    dim_bench::obs_finish();
}
