//! verify-gate: the dimensional-verification regression gate
//! (`make verify-gate`).
//!
//! Pins the ISSUE-9 acceptance invariants of `dim-verify` +
//! `dimeval::perturb` (see EXPERIMENTS.md "Perturbation methodology"):
//!
//! 1. **Width determinism** — the repair table and the perturbation table
//!    are byte-identical at thread widths 1 and 4.
//! 2. **Goldens** — both tables byte-match the committed transcripts
//!    `results/quick/verify_repair.txt` / `verify_perturb.txt`. After an
//!    intentional change, refresh with
//!    `UPDATE_GOLDEN=1 cargo run --release -p dim-bench --bin verify_gate`
//!    and review the results/ diff.
//! 3. **Repair never hurts** — `after >= before` on every evaluation set
//!    (gold equations always verify, so rejection can only promote).
//! 4. **Detection** — every mutation class applies to at least one
//!    problem and is detected at a nonzero rate on every Q-set.

use dim_bench::render;
use dim_core::experiments::{build_mwp_eval, quick_config, ExperimentConfig};
use dim_verify::{repair_row, DEFAULT_NOISE};
use dimeval::detection_rates;
use std::path::PathBuf;

fn quick_at(threads: usize) -> ExperimentConfig {
    let mut cfg = quick_config();
    cfg.parallelism = dim_par::Parallelism::new(threads);
    cfg.pipeline.parallelism = dim_par::Parallelism::new(threads);
    cfg
}

fn golden_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/quick").join(rel)
}

/// Byte-compares `actual` against the committed golden (or rewrites it
/// under `UPDATE_GOLDEN`); returns pass/fail.
fn check_golden(rel: &str, actual: &str) -> bool {
    let path = golden_path(rel);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("golden must be writable");
        eprintln!("verify-gate: rewrote {}", path.display());
        return true;
    }
    match std::fs::read_to_string(&path) {
        Ok(expected) => expected == *actual,
        Err(_) => false,
    }
}

fn main() {
    let mut failed = false;

    // Gate 1: byte-identical tables at widths 1 and 4.
    let repair1 = render::verify_repair(&quick_at(1));
    let repair4 = render::verify_repair(&quick_at(4));
    let perturb1 = render::verify_perturb(&quick_at(1));
    let perturb4 = render::verify_perturb(&quick_at(4));
    let width_ok = repair1 == repair4 && perturb1 == perturb4;
    println!(
        "verify-gate: width determinism       {}",
        if width_ok { "PASS" } else { "FAIL" }
    );
    failed |= !width_ok;

    // Gate 2: committed goldens.
    let repair_golden = check_golden("verify_repair.txt", &repair1);
    let perturb_golden = check_golden("verify_perturb.txt", &perturb1);
    println!(
        "verify-gate: repair golden           {}",
        if repair_golden { "PASS" } else { "FAIL" }
    );
    println!(
        "verify-gate: perturb golden          {}",
        if perturb_golden { "PASS" } else { "FAIL" }
    );
    failed |= !repair_golden || !perturb_golden;

    // Gates 3 and 4 re-run the underlying experiments through the data
    // API, so the assertions hold on the numbers, not the rendering.
    let cfg = quick_at(1);
    let kb = dimkb::DimUnitKb::shared();
    let sets = build_mwp_eval(&cfg);

    let mut repair_ok = true;
    for (name, problems) in sets.iter() {
        let row = repair_row(name, problems, &kb, cfg.seed, DEFAULT_NOISE, cfg.parallelism);
        if row.after < row.before {
            eprintln!("verify-gate: {name}: after {} < before {}", row.after, row.before);
            repair_ok = false;
        }
    }
    println!(
        "verify-gate: repair never hurts      {}",
        if repair_ok { "PASS" } else { "FAIL" }
    );
    failed |= !repair_ok;

    let mut detect_ok = true;
    for (name, problems) in sets.iter() {
        if !name.starts_with("Q-") {
            continue;
        }
        for row in detection_rates(problems, &kb, cfg.seed, cfg.parallelism) {
            if row.n == 0 || row.detected == 0 {
                eprintln!(
                    "verify-gate: {name}/{}: n={} detected={}",
                    row.class.name(),
                    row.n,
                    row.detected
                );
                detect_ok = false;
            }
        }
    }
    println!(
        "verify-gate: nonzero detection       {}",
        if detect_ok { "PASS" } else { "FAIL" }
    );
    failed |= !detect_ok;

    if failed {
        println!("verify-gate: FAILED");
        std::process::exit(1);
    }
    println!("verify-gate: all gates passed");
}
