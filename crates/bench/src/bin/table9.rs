//! Regenerates Table IX: accuracy on N-MWP and Q-MWP.

fn main() {
    dim_bench::obs_init();
    let cfg = dim_bench::config_from_args();
    print!("{}", dim_bench::render::table9(&cfg));
    dim_bench::obs_finish();
}
