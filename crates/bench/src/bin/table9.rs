//! Regenerates Table IX: accuracy on N-MWP and Q-MWP.

use dim_bench::{config_from_args, pct, rule, PAPER_TABLE9};
use dim_core::experiments::table9;

fn main() {
    let cfg = config_from_args();
    println!("Table IX — accuracy (%) of different models on N-MWP and Q-MWP");
    println!(
        "(eval: {} problems/set; DimPerc pipeline: η = {}, {} MWP training problems/style)",
        cfg.mwp_eval, cfg.pipeline.eta, cfg.pipeline.mwp_train
    );
    rule(86);
    println!(
        "{:<32} {:>11} {:>11} {:>11} {:>11}",
        "Model", "N-Math23k", "N-Ape210k", "Q-Math23k", "Q-Ape210k"
    );
    rule(86);
    for row in table9(&cfg) {
        println!(
            "{:<32} {:>11} {:>11} {:>11} {:>11}",
            row.name,
            pct(row.accuracy[0]), pct(row.accuracy[1]), pct(row.accuracy[2]), pct(row.accuracy[3])
        );
    }
    rule(86);
    println!("Paper reported:");
    for (name, a) in PAPER_TABLE9 {
        println!("{:<32} {:>11.2} {:>11.2} {:>11.2} {:>11.2}", name, a[0], a[1], a[2], a[3]);
    }
    println!();
    println!("Shapes to hold: every baseline drops sharply from N to Q; the tool helps");
    println!("hard Q-sets; supervised N-MWP models collapse hardest; DimPerc leads Q-MWP.");
}
