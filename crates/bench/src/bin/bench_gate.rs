//! bench-gate: the thread-width regression gate (`make bench-gate`).
//!
//! Re-times the two batch benchmarks — `annotate_batch` and
//! `algo1_per_100_sentences` — at widths 1 and 4, in-process, and exits
//! nonzero if the width-4 median is slower than the width-1 median beyond
//! a small tolerance. This pins the ROADMAP item 1 invariant ("parallelism
//! must not hurt"): before the morsel scheduler landed, width 4 was ~25%
//! *slower* than width 1 on these workloads.
//!
//! Tolerance: width 4 must satisfy `median4 <= median1 * 1.10`. On hosts
//! with one usable core the scheduler clamps width 4 to the identical
//! sequential path, so the two medians measure the same code and the 10%
//! headroom only absorbs timer noise; on multi-core hosts real speedups are
//! far outside it. See EXPERIMENTS.md "Thread-width regression gate".

use dimeval::algo1;
use dimkb::DimUnitKb;
use dimlink::{Annotator, LinkerConfig, UnitLinker};
use std::hint::black_box;
use std::time::Instant;

/// Allowed ratio of width-4 median over width-1 median.
const TOLERANCE: f64 = 1.10;
/// Timed samples per (bench, width) pair.
const SAMPLES: usize = 20;
/// Untimed warmup runs per (bench, width) pair.
const WARMUP: usize = 3;

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("bench timings are finite"));
    samples[samples.len() / 2]
}

/// Times one run of `f` in nanoseconds.
fn time_once<F: FnMut()>(f: &mut F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64
}

/// Medians of `SAMPLES` runs each of `f1` (width 1) and `f4` (width 4),
/// after `WARMUP` untimed runs of each. Samples are **interleaved**
/// (1, 4, 1, 4, …) rather than blocked, so slow drift — frequency scaling,
/// co-tenant load, cache temperature — lands on both widths equally instead
/// of biasing whichever ran second.
fn interleaved_medians<F: FnMut(), G: FnMut()>(mut f1: F, mut f4: G) -> (f64, f64) {
    for _ in 0..WARMUP {
        f1();
        f4();
    }
    let mut s1 = Vec::with_capacity(SAMPLES);
    let mut s4 = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        s1.push(time_once(&mut f1));
        s4.push(time_once(&mut f4));
    }
    (median_ns(s1), median_ns(s4))
}

/// One gated benchmark: medians at width 1 and 4, pass/fail against
/// `TOLERANCE`.
struct Gate {
    name: &'static str,
    median1_ns: f64,
    median4_ns: f64,
}

impl Gate {
    fn passed(&self) -> bool {
        self.median4_ns <= self.median1_ns * TOLERANCE
    }
}

fn main() {
    let kb = DimUnitKb::shared();

    // Workload 1: annotate_batch over the same mixed-script corpus shape as
    // benches/linking.rs. A fresh annotator per run keeps the link memo
    // cold so the gate measures real linking work.
    let texts: Vec<String> = (0..120)
        .map(|i| {
            format!(
                "第{i}组样本：长度为{}米，质量是{}千克，速度达到{} km/h，含水量{}%。",
                i + 2,
                i * 3 + 1,
                (i % 40) + 20,
                (i % 50) + 10,
            )
        })
        .collect();
    let annotate_run = |threads: usize| {
        let a = Annotator::new(UnitLinker::new(kb.clone(), None, LinkerConfig::default()));
        black_box(a.annotate_batch(&texts, dim_par::Parallelism::new(threads)).len());
    };

    // Workload 2: Algorithm 1 over a 100-sentence corpus, as in
    // benches/construction.rs.
    let corpus = dim_corpus::generate(&kb, &dim_corpus::CorpusConfig { sentences: 100, seed: 1 });
    let annotator = Annotator::new(UnitLinker::new(kb.clone(), None, LinkerConfig::default()));
    let mlm = algo1::train_filter(&corpus);
    let algo1_run = |threads: usize| {
        let cfg = algo1::Algo1Config {
            parallelism: dim_par::Parallelism::new(threads),
            ..Default::default()
        };
        black_box(algo1::semi_automated_annotate(&annotator, &mlm, &corpus, cfg).dataset.len());
    };

    let (annotate1, annotate4) = interleaved_medians(|| annotate_run(1), || annotate_run(4));
    let (algo1_m1, algo1_m4) = interleaved_medians(|| algo1_run(1), || algo1_run(4));
    let gates = [
        Gate { name: "annotate_batch", median1_ns: annotate1, median4_ns: annotate4 },
        Gate { name: "algo1_per_100_sentences", median1_ns: algo1_m1, median4_ns: algo1_m4 },
    ];

    println!(
        "bench-gate: width-4 median must be <= width-1 median x {TOLERANCE} \
         ({SAMPLES} samples, morsel = {})",
        dim_par::MORSEL_SIZE
    );
    let mut failed = false;
    for g in &gates {
        let ratio = g.median4_ns / g.median1_ns;
        let verdict = if g.passed() { "ok" } else { "FAIL" };
        println!(
            "  {:<28} threads1 {:>12.0} ns   threads4 {:>12.0} ns   ratio {ratio:.3}   {verdict}",
            g.name, g.median1_ns, g.median4_ns
        );
        failed |= !g.passed();
    }
    if failed {
        eprintln!("bench-gate: FAILED — thread width 4 regressed against width 1");
        std::process::exit(1);
    }
    println!("bench-gate: passed");
}
