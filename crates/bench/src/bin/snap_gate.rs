//! snap-gate: the snapshot cold-start regression gate (`make snap-gate`).
//!
//! Pins three invariants of `dimkb::snap` (see EXPERIMENTS.md "Snapshot
//! cold-start gate"):
//!
//! 1. **Determinism** — emitting the standard KB twice produces
//!    byte-identical buffers, and decode → re-emit is the identity, so the
//!    stored checksum is stable run-to-run and machine-to-machine.
//! 2. **Validation speed** — the median `SnapKb::load` (header, section
//!    table, and checksum validation over the ~1 MB buffer) must stay
//!    under `BUDGET_NS` (100 µs). This is the whole point of the snapshot:
//!    a serving process swaps ~10 ms of KB construction for microseconds
//!    of validation plus lazy decode.
//! 3. **Fidelity** — the decoded KB's records equal the built KB's.
//!
//! Methodology matches bench_gate: `WARMUP` untimed runs, `SAMPLES` timed
//! runs, median-of-samples (robust to co-tenant noise); the buffer clone
//! is taken outside the timed region so the gate times validation, not
//! allocation.

use dimkb::{DimUnitKb, SnapKb};
use std::hint::black_box;
use std::time::Instant;

/// Cold-load (validate) budget in nanoseconds.
const BUDGET_NS: f64 = 100_000.0;
/// Timed samples.
const SAMPLES: usize = 20;
/// Untimed warmup runs.
const WARMUP: usize = 3;

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let built = DimUnitKb::shared();
    let mut failed = false;

    // Gate 1: deterministic emission.
    let bytes = built.to_snapshot();
    let again = built.to_snapshot();
    let emit_ok = bytes == again;
    println!(
        "snap-gate: emit determinism          {} ({} bytes)",
        if emit_ok { "PASS" } else { "FAIL" },
        bytes.len()
    );
    failed |= !emit_ok;

    // Gate 2: decode → re-emit is the identity (covers index fidelity: the
    // re-emit walks every decoded table).
    let loaded = SnapKb::load(bytes.clone())
        .expect("fresh snapshot must validate")
        .into_kb()
        .expect("fresh snapshot must decode");
    let reemit_ok = loaded.to_snapshot() == bytes;
    println!(
        "snap-gate: decode/re-emit identity   {}",
        if reemit_ok { "PASS" } else { "FAIL" }
    );
    failed |= !reemit_ok;

    // Gate 3: record fidelity against the built KB.
    let records_ok = loaded.units() == built.units() && loaded.kinds() == built.kinds();
    println!(
        "snap-gate: record fidelity           {} ({} units, {} kinds)",
        if records_ok { "PASS" } else { "FAIL" },
        loaded.units().len(),
        loaded.kinds().len()
    );
    failed |= !records_ok;

    // Gate 4: cold-load median under budget. The clone happens outside the
    // timer; each sample validates a fresh buffer end to end.
    for _ in 0..WARMUP {
        let b = bytes.clone();
        black_box(SnapKb::load(b).expect("snapshot must validate"));
    }
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let b = bytes.clone();
        let start = Instant::now();
        let snap = SnapKb::load(b).expect("snapshot must validate");
        samples.push(start.elapsed().as_nanos() as f64);
        black_box(snap);
    }
    let median = median_ns(samples);
    let load_ok = median < BUDGET_NS;
    println!(
        "snap-gate: cold-load median          {} ({:.1} us, budget {:.0} us, {SAMPLES} samples)",
        if load_ok { "PASS" } else { "FAIL" },
        median / 1_000.0,
        BUDGET_NS / 1_000.0
    );
    failed |= !load_ok;

    if failed {
        println!("snap-gate: FAILED");
        std::process::exit(1);
    }
    println!("snap-gate: all gates passed");
}
