//! Ablation of the unit-linking score components (§III-B):
//! `Pr(u)·Pr(u|m)·Pr(u|c)` with each factor knocked out.
//!
//! Exact surface forms resolve trivially, so the evaluation perturbs gold
//! mentions the way real text does — lowercased symbols (`mw` for `MW`),
//! dropped characters (`kilometr`), ambiguous short forms — and measures
//! how each scoring factor recovers the right unit.

use dim_bench::{pct, rule};
use dimension_perception::corpus::{generate, CorpusConfig};
use dimension_perception::kb::DimUnitKb;
use dimension_perception::link::{LinkerConfig, UnitLinker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn perturb(rng: &mut StdRng, mention: &str) -> String {
    match rng.gen_range(0..10) {
        // Lowercase (symbol case is lost in casual text).
        0..=3 => mention.to_lowercase(),
        // Drop one character (typo), only for longer mentions.
        4..=6 if mention.chars().count() > 3 => {
            let chars: Vec<char> = mention.chars().collect();
            let drop = rng.gen_range(1..chars.len());
            chars
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, c)| c)
                .collect()
        }
        // Keep exact.
        _ => mention.to_string(),
    }
}

fn main() {
    let kb = DimUnitKb::shared();
    let corpus = generate(&kb, &CorpusConfig { sentences: 500, seed: 404 });
    let variants: [(&str, LinkerConfig); 4] = [
        ("mention only (Pr(u|m))", LinkerConfig { use_prior: false, use_context: false, ..Default::default() }),
        ("+ prior (Pr(u))", LinkerConfig { use_context: false, ..Default::default() }),
        ("+ context (Pr(u|c))", LinkerConfig { use_prior: false, ..Default::default() }),
        ("full model", LinkerConfig::default()),
    ];
    println!("Linking ablation — argmax accuracy on perturbed corpus mentions");
    println!("(40% lowercased, 30% one-character typos, 30% exact)");
    rule(64);
    for (label, config) in variants {
        let linker = UnitLinker::new(kb.clone(), None, config);
        let mut rng = StdRng::seed_from_u64(7);
        let mut total = 0usize;
        let mut correct = 0usize;
        for sent in &corpus {
            for q in &sent.quantities {
                total += 1;
                let noisy = perturb(&mut rng, &q.unit_surface);
                if let Some(best) = linker.best(&noisy, &sent.text) {
                    if kb.unit(best.unit).code == q.unit_code {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / total as f64;
        println!("{label:<26} {:>7}%   ({correct}/{total})", pct(acc));
    }
    rule(64);
    println!("Finding: with a complete naming dictionary the mention term");
    println!("Pr(u|m) already resolves ~99% of mentions; the prior and context");
    println!("terms only matter for genuinely ambiguous surfaces (degree, 度,");
    println!("lost-case mw) and can even mislead when the local corpus skews");
    println!("away from global unit frequency — the classic prior/likelihood");
    println!("trade-off the paper's product formulation embodies.");
}
