//! Ablation of the unit-linking score components (§III-B):
//! `Pr(u)·Pr(u|m)·Pr(u|c)` with each factor knocked out.
//!
//! Exact surface forms resolve trivially, so the evaluation perturbs gold
//! mentions the way real text does — lowercased symbols (`mw` for `MW`),
//! dropped characters (`kilometr`), ambiguous short forms — and measures
//! how each scoring factor recovers the right unit.

fn main() {
    dim_bench::obs_init();
    print!("{}", dim_bench::render::ablation_linking());
    dim_bench::obs_finish();
}
