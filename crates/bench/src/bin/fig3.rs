//! Regenerates Fig. 3: popular units sorted by the frequency feature.

use dim_bench::rule;
use dim_core::experiments::fig3;

fn main() {
    let k = 20;
    println!("Fig. 3 — top {k} units by Freq(u) (Eq. 1-2 over synthetic popularity sources)");
    rule(56);
    for (i, (label, freq)) in fig3(k).into_iter().enumerate() {
        let bar = "#".repeat((freq * 40.0).round() as usize);
        println!("{:>2}. {:<22} {:>6.3}  {}", i + 1, label, freq, bar);
    }
    rule(56);
    println!("Paper shape: everyday units (metre, percent, hour, kilogram)");
    println!("dominate; rare scientific units trail (the centimetre > decimetre");
    println!("property is asserted by dimkb's test suite).");
}
