//! Regenerates Fig. 3: popular units sorted by the frequency feature.

fn main() {
    dim_bench::obs_init();
    print!("{}", dim_bench::render::fig3());
    dim_bench::obs_finish();
}
