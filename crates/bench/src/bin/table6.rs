//! Regenerates Table VI: statistics of the MWP evaluation datasets.

fn main() {
    dim_bench::obs_init();
    let cfg = dim_bench::config_from_args();
    print!("{}", dim_bench::render::table6(&cfg));
    dim_bench::obs_finish();
}
