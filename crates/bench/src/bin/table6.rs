//! Regenerates Table VI: statistics of the MWP evaluation datasets.

use dim_bench::{config_from_args, rule, PAPER_TABLE6};
use dim_core::experiments::table6;
use dim_mwp::OP_BUCKET_LABELS;

fn main() {
    let cfg = config_from_args();
    println!("Table VI — statistics of evaluation datasets on quantitative reasoning");
    rule(70);
    println!(
        "{:<12} {:>6} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "Dataset", "#Num", "#Units",
        OP_BUCKET_LABELS[0], OP_BUCKET_LABELS[1], OP_BUCKET_LABELS[2], OP_BUCKET_LABELS[3]
    );
    rule(70);
    for (name, s) in table6(&cfg) {
        println!(
            "{:<12} {:>6} {:>7} {:>9} {:>9} {:>9} {:>9}",
            name, s.problems, s.units,
            s.op_buckets[0], s.op_buckets[1], s.op_buckets[2], s.op_buckets[3]
        );
    }
    rule(70);
    println!("Paper reported:");
    for (name, num, units, b) in PAPER_TABLE6 {
        println!(
            "{:<12} {:>6} {:>7} {:>9} {:>9} {:>9} {:>9}",
            name, num, units, b[0], b[1], b[2], b[3]
        );
    }
    println!();
    println!("Shape to hold: Q-sets have more distinct units and shift mass into");
    println!("the higher operation buckets (unit conversions add steps).");
}
