//! Ablation of Algorithm 1's masked-LM filtering stage: annotation
//! precision with and without the filter, and the review workload.

use dim_bench::{pct, rule};
use dimension_perception::corpus::{generate, CorpusConfig};
use dimension_perception::eval::algo1::{self, Algo1Config};
use dimension_perception::kb::DimUnitKb;
use dimension_perception::link::{Annotator, LinkerConfig, UnitLinker};

fn main() {
    let kb = DimUnitKb::shared();
    let corpus = generate(&kb, &CorpusConfig { sentences: 600, seed: 505 });
    let annotator = Annotator::new(UnitLinker::new(kb, None, LinkerConfig::default()));
    let mlm = algo1::train_filter(&corpus);
    println!("Algorithm 1 ablation — masked-LM filter thresholds");
    rule(78);
    println!("{:<12} {:>16} {:>16} {:>10} {:>12}", "threshold", "stage-1 prec", "stage-2 prec", "removed", "review work");
    rule(78);
    for threshold in [0.0, 0.05, 0.18, 0.4, 0.7] {
        let out = algo1::semi_automated_annotate(
            &annotator,
            &mlm,
            &corpus,
            Algo1Config { mlm_threshold: threshold, ..Default::default() },
        );
        println!(
            "{:<12} {:>15}% {:>15}% {:>10} {:>12}",
            threshold,
            pct(out.stage1_precision),
            pct(out.stage2_precision),
            out.removed_by_filter,
            out.corrected_by_review
        );
    }
    rule(78);
    println!("threshold 0 disables the filter (stage-2 = stage-1); the paper's");
    println!("automated accuracy is 82% — moderate thresholds recover precision");
    println!("by dropping device-code decoys at small recall cost.");
}
