//! Ablation of Algorithm 1's masked-LM filtering stage: annotation
//! precision with and without the filter, and the review workload.

fn main() {
    dim_bench::obs_init();
    print!("{}", dim_bench::render::ablation_algo1());
    dim_bench::obs_finish();
}
