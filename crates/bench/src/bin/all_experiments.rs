//! Runs every table/figure harness in sequence, in one process (pass
//! `--quick` for a fast pass). Running in-process — rather than spawning
//! the per-table binaries — lets one obs registry observe the whole suite:
//! with `--obs`, a machine-readable metrics report is written to
//! `obs_report.json` (or `--obs-out PATH`) and the human table goes to
//! stderr. stdout is byte-identical to the old spawn-per-binary harness.

use dim_bench::render;

type Stage<'a> = (&'a str, Box<dyn Fn() -> String>);

fn main() {
    dim_bench::obs_init();
    let cfg = dim_bench::config_from_args();
    let stages: [Stage; 9] = [
        ("table4", Box::new(render::table4)),
        ("fig3", Box::new(render::fig3)),
        ("fig4", Box::new(render::fig4)),
        ("table6", Box::new(move || render::table6(&cfg))),
        ("table7", Box::new(move || render::table7(&cfg))),
        ("table8", Box::new(move || render::table8(&cfg))),
        ("table9", Box::new(move || render::table9(&cfg))),
        ("fig6", Box::new(move || render::fig6(&cfg))),
        ("fig7", Box::new(move || render::fig7(&cfg))),
    ];
    for (name, run) in stages {
        println!("\n================= {name} =================\n");
        print!("{}", run());
    }
    // Opt-in chaos stage: `--chaos-rate R` (R > 0) appends a degraded-mode
    // pipeline run under a deterministic fault plan. With rate 0 (the
    // default) nothing is printed and the injector stays disabled, so
    // stdout is byte-identical to a run without the flags.
    let chaos_rate = dim_bench::chaos_rate_flag();
    if chaos_rate > 0.0 {
        let chaos_seed = dim_bench::chaos_seed_flag();
        println!("\n================= chaos =================\n");
        print!("{}", render::chaos_report(&cfg, chaos_seed, chaos_rate));
    }
    if dim_obs::enabled() {
        let path = dim_bench::obs_out_flag().unwrap_or_else(|| "obs_report.json".to_string());
        std::fs::write(&path, dim_obs::snapshot().to_json()).expect("write obs report");
        eprintln!("obs: report written to {path}");
    }
    dim_bench::obs_finish();
}
