//! Runs every table/figure harness in sequence (pass --quick for a fast pass).

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for bin in ["table4", "fig3", "fig4", "table6", "table7", "table8", "table9", "fig6", "fig7"] {
        println!("\n================= {bin} =================\n");
        let mut cmd = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().expect("run harness binary");
        assert!(status.success(), "{bin} failed");
    }
}
