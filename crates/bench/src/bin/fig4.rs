//! Regenerates Fig. 4: top quantity kinds and their top-five units.

use dim_bench::rule;
use dim_core::experiments::fig4;

fn main() {
    let k = 14;
    println!("Fig. 4 — top {k} quantity kinds (freq = mean of top-5 unit freqs)");
    rule(86);
    for row in fig4(k) {
        let units: Vec<String> =
            row.units.iter().map(|(u, f)| format!("{u} ({f:.2})")).collect();
        println!("{:<22} {:>5.3}  {}", row.kind, row.freq, units.join(", "));
    }
    rule(86);
    println!("Paper shape: everyday kinds (Length, Time, Mass, Ratio) lead with");
    println!("their common units; each kind lists its five most frequent units.");
}
