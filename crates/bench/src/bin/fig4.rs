//! Regenerates Fig. 4: top quantity kinds and their top-five units.

fn main() {
    dim_bench::obs_init();
    print!("{}", dim_bench::render::fig4());
    dim_bench::obs_finish();
}
