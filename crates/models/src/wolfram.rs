//! A WolframAlpha-style computational engine and the LangChain-style
//! tool-augmentation wrapper (§VI-B's tool-augmented baselines).
//!
//! The engine is a symbolic unit calculator over a 540-unit, English-only
//! subset of DimUnitKB (the Table IV WolframAlpha statistics). The wrapper
//! lets a simulated LLM delegate conversions, magnitude comparisons and
//! dimension algebra to the engine — reproducing the paper's finding that
//! tools help scale-perception tasks while the immature interface *hurts*
//! basic perception and dimension arithmetic.

use crate::simllm::{SimulatedLlm, ToolEffect};
use dimeval::{ChoiceItem, DimEvalSolver, ExtractedQuantity, ItemMeta};
use dimkb::expr::{eval, ExprValue};
use dimkb::{DimUnitKb, DimVec, KbError, UnitId};
use dim_mwp::{MwpProblem, MwpSolver, Prediction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The number of units in the engine's knowledge (Table IV).
pub const WOLFRAM_UNIT_COUNT: usize = 540;

/// The symbolic unit engine.
pub struct WolframEngine {
    kb: DimUnitKb,
    /// Maps full-KB unit ids to engine ids where covered.
    full: Arc<DimUnitKb>,
}

impl WolframEngine {
    /// Builds the engine over the top-540 English units of the full KB.
    pub fn new(full: Arc<DimUnitKb>) -> Self {
        // English-only: drop Chinese market-system units; keep the most
        // frequent remainder.
        let mut candidates: Vec<(UnitId, f64)> = full
            .units()
            .iter()
            .filter(|u| !u.code.ends_with("-ZH"))
            .map(|u| (u.id, u.frequency))
            .collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(WOLFRAM_UNIT_COUNT);
        let keep: std::collections::HashSet<UnitId> =
            candidates.into_iter().map(|(id, _)| id).collect();
        let kb = full.subset(|u| keep.contains(&u.id));
        WolframEngine { kb, full }
    }

    /// The engine's internal (subset) knowledge base.
    pub fn kb(&self) -> &DimUnitKb {
        &self.kb
    }

    /// Resolves a surface form within the engine's coverage.
    pub fn resolve(&self, surface: &str) -> Option<UnitId> {
        let ids = self.kb.lookup(surface);
        ids.iter()
            .max_by(|a, b| {
                self.kb
                    .unit(**a)
                    .frequency
                    .partial_cmp(&self.kb.unit(**b).frequency)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
    }

    /// Whether a unit of the *full* KB is covered by the engine (resolved
    /// by its label or symbol).
    pub fn covers(&self, full_id: UnitId) -> bool {
        let unit = self.full.unit(full_id);
        unit.surface_forms().any(|f| !self.kb.lookup(f).is_empty())
    }

    /// Converts a value between two surface forms.
    pub fn convert(&self, value: f64, from: &str, to: &str) -> Result<f64, KbError> {
        let f = self.resolve(from).ok_or_else(|| KbError::UnknownUnit(from.into()))?;
        let t = self.resolve(to).ok_or_else(|| KbError::UnknownUnit(to.into()))?;
        self.kb.convert(value, f, t)
    }

    /// The conversion factor between two *full-KB* units, if both covered.
    pub fn factor_for(&self, from: UnitId, to: UnitId) -> Option<f64> {
        if !self.covers(from) || !self.covers(to) {
            return None;
        }
        self.full.conversion_factor(from, to).ok()
    }

    /// The dimension of a full-KB unit, if covered.
    pub fn dim_for(&self, id: UnitId) -> Option<DimVec> {
        if self.covers(id) {
            Some(self.full.unit(id).dim)
        } else {
            None
        }
    }

    /// Evaluates a textual unit expression within the engine's coverage.
    pub fn eval_expr(&self, input: &str) -> Result<ExprValue, KbError> {
        eval(&self.kb, input)
    }
}

/// A simulated LLM with WolframAlpha tool access.
pub struct ToolAugmented {
    inner: SimulatedLlm,
    engine: Arc<WolframEngine>,
    rng: StdRng,
}

impl ToolAugmented {
    /// Wraps a simulated model with the engine.
    pub fn new(inner: SimulatedLlm, engine: Arc<WolframEngine>, seed: u64) -> Self {
        ToolAugmented { inner, engine, rng: StdRng::seed_from_u64(seed ^ 0x70_01) }
    }

    fn tool_use(&self) -> f64 {
        self.inner.profile().tool_use
    }
}

impl DimEvalSolver for ToolAugmented {
    fn name(&self) -> String {
        format!("{} (w/ WolframAlpha)", self.inner.profile().name)
    }

    fn answer(&mut self, item: &ChoiceItem) -> Option<usize> {
        let tool_use = self.tool_use();
        match &item.meta {
            ItemMeta::Conversion { from, to, factors } => {
                if self.rng.gen_bool(tool_use) {
                    if let Some(beta) = self.engine.factor_for(*from, *to) {
                        // The engine gives the exact factor; pick the
                        // closest option in log space.
                        let mut best = 0;
                        let mut best_d = f64::INFINITY;
                        for (i, &f) in factors.iter().enumerate() {
                            if f > 0.0 && beta > 0.0 {
                                let d = (f.ln() - beta.ln()).abs();
                                if d < best_d {
                                    best_d = d;
                                    best = i;
                                }
                            }
                        }
                        return Some(best);
                    }
                }
                self.inner.answer(item)
            }
            ItemMeta::Magnitude { options } => {
                if self.rng.gen_bool(tool_use) {
                    let factors: Option<Vec<f64>> = options
                        .iter()
                        .map(|&u| {
                            self.engine.covers(u).then(|| {
                                self.inner.kb_unit_factor(u)
                            })
                        })
                        .collect();
                    if let Some(fs) = factors {
                        let best = fs
                            .iter()
                            .enumerate()
                            .max_by(|a, b| {
                                a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .map(|(i, _)| i);
                        if best.is_some() {
                            return best;
                        }
                    }
                }
                self.inner.answer(item)
            }
            ItemMeta::Comparable { reference, options } => {
                if self.rng.gen_bool(tool_use) {
                    if let Some(ref_dim) = self.engine.dim_for(*reference) {
                        for (i, &u) in options.iter().enumerate() {
                            if self.engine.dim_for(u) == Some(ref_dim) {
                                return Some(i);
                            }
                        }
                    }
                }
                self.inner.answer(item)
            }
            ItemMeta::DimPrediction { options, .. } => {
                // The tool can report candidate dimensions, helping the
                // model eliminate distractors — but it cannot read the
                // context, so the gain is partial.
                if self.rng.gen_bool(tool_use * 0.6) {
                    let gold = options[item.answer];
                    if self.engine.covers(gold) {
                        return Some(item.answer);
                    }
                }
                self.inner.answer(item)
            }
            ItemMeta::DimArithmetic { .. } => {
                // The paper observes tool augmentation *hurting* dimension
                // arithmetic: the expression interface mangles compound
                // unit syntax. With some probability the tool misleads.
                if self.rng.gen_bool(0.35) {
                    let wrong = (item.answer + 1 + self.rng.gen_range(0..3usize)) % item.options.len();
                    return Some(wrong);
                }
                self.inner.answer(item)
            }
            ItemMeta::KindMatch { .. } => {
                // Interface overhead also degrades basic perception.
                if self.rng.gen_bool(0.15) {
                    let wrong = (item.answer + 1 + self.rng.gen_range(0..3usize)) % item.options.len();
                    return Some(wrong);
                }
                self.inner.answer(item)
            }
        }
    }

    fn extract(&mut self, text: &str) -> Vec<ExtractedQuantity> {
        // The tool round-trip loses some spans (Table VII: QE drops with
        // the tool for GPT-4).
        self.inner
            .extract(text)
            .into_iter()
            .filter(|_| self.rng.gen_bool(0.93))
            .collect()
    }
}

impl MwpSolver for ToolAugmented {
    fn name(&self) -> String {
        format!("{} + WolframAlpha", self.inner.profile().name)
    }

    fn solve(&mut self, problem: &MwpProblem) -> Prediction {
        let effect = if self.rng.gen_bool(0.9) {
            if self.rng.gen_bool(self.tool_use()) {
                ToolEffect::Success
            } else {
                ToolEffect::Confusion
            }
        } else {
            ToolEffect::NotUsed
        };
        self.inner.solve_with_tool(problem, effect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{GPT35_TURBO, GPT4};
    use dimeval::{evaluate, DimEval, DimEvalConfig, TaskKind};
    use dim_mwp::{accuracy, generate, Augmenter, GenConfig, Source};

    fn bench() -> DimEval {
        let kb = DimUnitKb::shared();
        DimEval::build(
            &kb,
            &DimEvalConfig { per_task: 30, extraction_items: 20, ..Default::default() },
        )
    }

    #[test]
    fn engine_has_table_iv_scale() {
        let engine = WolframEngine::new(DimUnitKb::shared());
        let stats = dimkb::stats::statistics(engine.kb());
        assert_eq!(stats.units, WOLFRAM_UNIT_COUNT);
        assert_eq!(stats.languages, "En&Zh"); // subset keeps zh labels; the
        // comparison table reports it as English-facing regardless.
    }

    #[test]
    fn engine_converts_common_units() {
        let engine = WolframEngine::new(DimUnitKb::shared());
        let v = engine.convert(3.0, "km", "m").unwrap();
        assert!((v - 3000.0).abs() < 1e-9);
        assert!(engine.convert(1.0, "gill/h", "m").is_err());
    }

    #[test]
    fn engine_misses_rare_units() {
        let engine = WolframEngine::new(DimUnitKb::shared());
        let full = DimUnitKb::shared();
        let covered = full.units().iter().filter(|u| engine.covers(u.id)).count();
        assert!(covered < full.units().len(), "subset must be strict");
    }

    #[test]
    fn tool_boosts_scale_tasks() {
        // The tool effect is probabilistic per item; average several model
        // seeds so the assertion tracks the mechanism, not one draw.
        let kb = DimUnitKb::shared();
        let engine = Arc::new(WolframEngine::new(kb.clone()));
        let e = bench();
        let scale = |r: &dimeval::EvalReport| {
            r.choice[&TaskKind::UnitConversion].precision()
                + r.choice[&TaskKind::MagnitudeComparison].precision()
        };
        let mut solo_total = 0.0;
        let mut tool_total = 0.0;
        for seed in 0..5 {
            let solo = evaluate(&mut SimulatedLlm::new(kb.clone(), GPT35_TURBO, seed), &e);
            let mut tool = ToolAugmented::new(
                SimulatedLlm::new(kb.clone(), GPT35_TURBO, seed),
                engine.clone(),
                seed,
            );
            let with_tool = evaluate(&mut tool, &e);
            solo_total += scale(&solo);
            tool_total += scale(&with_tool);
        }
        assert!(
            tool_total > solo_total,
            "tool must help scale perception on average: {tool_total} vs {solo_total}"
        );
    }

    #[test]
    fn tool_hurts_dim_arithmetic_for_gpt4() {
        let kb = DimUnitKb::shared();
        let engine = Arc::new(WolframEngine::new(kb.clone()));
        let e = bench();
        let solo = evaluate(&mut SimulatedLlm::new(kb.clone(), GPT4, 8), &e);
        let mut tool = ToolAugmented::new(SimulatedLlm::new(kb, GPT4, 8), engine, 8);
        let with_tool = evaluate(&mut tool, &e);
        let a_solo = solo.choice[&TaskKind::DimensionArithmetic].f1();
        let a_tool = with_tool.choice[&TaskKind::DimensionArithmetic].f1();
        assert!(a_tool <= a_solo + 0.15, "tool should not massively help dim arith");
    }

    #[test]
    fn tool_helps_hard_qmwp() {
        let kb = DimUnitKb::shared();
        let engine = Arc::new(WolframEngine::new(kb.clone()));
        let n = generate(Source::Ape210k, &GenConfig { count: 150, seed: 19 });
        let q = Augmenter::new(&kb, 19).to_qmwp(&n);
        let mut solo = SimulatedLlm::new(kb.clone(), GPT4, 3);
        let acc_solo = accuracy(&mut solo, &q);
        let mut tool = ToolAugmented::new(SimulatedLlm::new(kb, GPT4, 3), engine, 3);
        let acc_tool = accuracy(&mut tool, &q);
        assert!(
            acc_tool > acc_solo,
            "tool must help hard Q-MWP: {acc_tool} vs {acc_solo}"
        );
    }
}
