//! # dim-models — the model substrate
//!
//! The paper's evaluation spans closed LLM APIs, a WolframAlpha tool chain,
//! and A800-scale fine-tuning — all gated. This crate provides the
//! substitutes (see DESIGN.md):
//!
//! * [`profile`] / [`knowledge`] / [`simllm`] — knowledge-gap solvers for
//!   the baseline LLMs: each attempts every task mechanically through a
//!   frequency-weighted degraded view of DimUnitKB;
//! * [`wolfram`] — a symbolic unit engine over a 540-unit subset plus the
//!   LangChain-style tool-augmentation wrapper;
//! * [`tinylm`] — a genuinely trainable model suite (choice scorer,
//!   extraction classifier, equation generator) standing in for LLaMA-7B
//!   fine-tuning; DimPerc is this suite after DimEval fine-tuning.

#![warn(missing_docs)]

pub mod knowledge;
pub mod profile;
pub mod simllm;
pub mod tinylm;
pub mod wolfram;

pub use knowledge::{KnowledgeView, UnitKnowledge};
pub use profile::CapabilityProfile;
pub use simllm::{solve_mwp, SimulatedLlm, ToolEffect};
pub use wolfram::{ToolAugmented, WolframEngine, WOLFRAM_UNIT_COUNT};
