//! The choice scorer: a linear softmax model over (question, option)
//! crossed features, fine-tuned on DimEval items with CoT targets.

use crate::tinylm::features::choice_features;
use crate::tinylm::linear::LinearModel;
use dimeval::ChoiceItem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A trainable multiple-choice scorer.
#[derive(Debug, Clone)]
pub struct ChoiceScorer {
    model: LinearModel,
    /// Minimum score margin to answer rather than abstain.
    pub margin_threshold: f32,
}

impl ChoiceScorer {
    /// A task-naive scorer (the LLaMA_IFT prior): tiny random weights.
    pub fn naive(seed: u64) -> Self {
        ChoiceScorer { model: LinearModel::random(0.15, 0.02, seed), margin_threshold: 0.05 }
    }

    fn item_features(item: &ChoiceItem) -> Vec<Vec<u32>> {
        let task = item.task.name();
        item.options
            .iter()
            .map(|o| choice_features(task, &item.question, o))
            .collect()
    }

    /// Trains on a batch of items for `epochs` passes (order shuffled
    /// deterministically). Returns the mean loss of the final epoch.
    pub fn train(&mut self, items: &[ChoiceItem], epochs: usize, seed: u64) -> f32 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..items.len()).collect();
        let mut last_loss = 0.0;
        for _ in 0..epochs {
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut total = 0.0;
            for &i in &order {
                let item = &items[i];
                let feats = Self::item_features(item);
                total += self.model.sgd_softmax(&feats, item.answer);
            }
            last_loss = if items.is_empty() { 0.0 } else { total / items.len() as f32 };
        }
        last_loss
    }

    /// Answers an item; abstains when the top-two margin is below the
    /// threshold (an uncertain fine-tuned model declines, like the paper's
    /// LLMs).
    pub fn answer(&self, item: &ChoiceItem) -> Option<usize> {
        let feats = Self::item_features(item);
        let scores: Vec<f32> = feats.iter().map(|f| self.model.score(f)).collect();
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let best = *idx.first()?;
        if let Some(&second) = idx.get(1) {
            if scores[best] - scores[second] < self.margin_threshold {
                return None;
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimeval::{Generator, TaskKind};
    use dimkb::DimUnitKb;

    fn items(task: TaskKind, seed: u64, n: usize) -> Vec<ChoiceItem> {
        let kb = DimUnitKb::shared();
        let mut g = Generator::new(&kb, seed);
        g.generate(task, n)
    }

    #[test]
    fn training_beats_naive_on_held_out_items() {
        // Training volume scales with KB size: the paper-scale KB's long
        // tail means a fixed 1500 items no longer covers the option
        // vocabulary the held-out seed draws from.
        let train = items(TaskKind::ComparableAnalysis, 1, 6000);
        let test = items(TaskKind::ComparableAnalysis, 2, 80);
        let naive = ChoiceScorer::naive(3);
        let mut tuned = ChoiceScorer::naive(3);
        tuned.train(&train, 12, 4);
        let acc = |s: &ChoiceScorer| {
            test.iter().filter(|i| s.answer(i) == Some(i.answer)).count() as f64
                / test.len() as f64
        };
        let (a_naive, a_tuned) = (acc(&naive), acc(&tuned));
        assert!(
            a_tuned > a_naive + 0.15,
            "fine-tuning must help: naive {a_naive} tuned {a_tuned}"
        );
        assert!(a_tuned > 0.45, "tuned accuracy {a_tuned}");
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let train = items(TaskKind::QuantityKindMatch, 5, 200);
        let mut s = ChoiceScorer::naive(6);
        let early = s.train(&train, 1, 7);
        let late = s.train(&train, 4, 8);
        assert!(late < early, "loss must fall: {early} -> {late}");
    }

    #[test]
    fn naive_model_often_abstains_or_guesses() {
        let test = items(TaskKind::UnitConversion, 9, 50);
        let s = ChoiceScorer::naive(10);
        let correct =
            test.iter().filter(|i| s.answer(i) == Some(i.answer)).count() as f64 / 50.0;
        assert!(correct < 0.55, "a naive model cannot be good: {correct}");
    }
}
