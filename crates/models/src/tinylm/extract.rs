//! The trainable quantity extractor: candidate spans scored by a logistic
//! model — TinyLM's answer to Def. 2 (quantity extraction).
//!
//! Candidate generation is purely textual (numbers plus the character runs
//! that follow); *which* runs are units is learned from the annotated
//! dataset produced by Algorithm 1, not looked up in the KB — the model
//! has to acquire unit knowledge from data, like the fine-tuned LLM it
//! stands in for.

use crate::tinylm::features::extraction_features;
use crate::tinylm::linear::LinearModel;
use dim_embed::tokenize::is_cjk;
use dimeval::{ExtractedQuantity, ExtractionItem};
use dimlink::scan_numbers;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One extraction candidate inside a text.
#[derive(Debug, Clone)]
struct Candidate {
    value: f64,
    unit_surface: String,
    feats: Vec<u32>,
    /// Which scanned number this candidate belongs to.
    number_idx: usize,
}

/// Generates all candidates of a text (several surface lengths per number).
fn candidates(text: &str) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (ni, num) in scan_numbers(text).into_iter().enumerate() {
        let mut unit_start = num.end;
        if text[unit_start..].starts_with(' ') {
            unit_start += 1;
        }
        let rest = &text[unit_start..];
        let prev: String = text[..num.start].chars().rev().take(2).collect();
        let surfaces: Vec<String> = match rest.chars().next() {
            Some(c) if is_cjk(c) => {
                let chars: Vec<char> = rest.chars().take(4).collect();
                (1..=chars.len()).map(|n| chars[..n].iter().collect()).collect()
            }
            Some(c) if c.is_ascii_alphabetic() || "°µΩ%‰".contains(c) => {
                let run_end = rest
                    .char_indices()
                    .find(|&(_, ch)| {
                        !(ch.is_ascii_alphanumeric() || "°µΩ%‰/·*^²³⁻¹".contains(ch))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                let run = &rest[..run_end];
                if run.is_empty() {
                    continue;
                }
                vec![run.to_string()]
            }
            _ => continue,
        };
        for surface in surfaces {
            let next: String = rest[surface.len()..].chars().take(1).collect();
            let feats = extraction_features(&surface, &prev, &next);
            out.push(Candidate { value: num.value, unit_surface: surface, feats, number_idx: ni });
        }
    }
    out
}

/// The trainable extractor.
#[derive(Debug, Clone)]
pub struct ExtractionModel {
    model: LinearModel,
}

impl ExtractionModel {
    /// A task-naive extractor (tiny random weights → near-random spans).
    pub fn naive(seed: u64) -> Self {
        ExtractionModel { model: LinearModel::random(0.3, 0.002, seed ^ 0xE1) }
    }

    /// Trains on Algorithm-1 annotated data. Returns the last-epoch loss.
    pub fn train(&mut self, items: &[ExtractionItem], epochs: usize, seed: u64) -> f32 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut last = 0.0;
        for _ in 0..epochs {
            let mut total = 0.0;
            let mut n = 0usize;
            let mut order: Vec<usize> = (0..items.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for &i in &order {
                let item = &items[i];
                for cand in candidates(&item.text) {
                    let label = item.gold.iter().any(|g| {
                        (g.value - cand.value).abs() <= 1e-9 * g.value.abs().max(1.0)
                            && g.unit_surface == cand.unit_surface
                    });
                    total += self.model.sgd_logistic(&cand.feats, label);
                    n += 1;
                }
            }
            last = if n == 0 { 0.0 } else { total / n as f32 };
        }
        last
    }

    /// Extracts quantities: per scanned number, the highest-probability
    /// candidate above 0.5 (longer surfaces win ties).
    pub fn extract(&self, text: &str) -> Vec<ExtractedQuantity> {
        let mut best: std::collections::BTreeMap<usize, (f32, usize, ExtractedQuantity)> =
            std::collections::BTreeMap::new();
        for cand in candidates(text) {
            let p = self.model.prob(&cand.feats);
            if p < 0.5 {
                continue;
            }
            let len = cand.unit_surface.chars().count();
            let entry = (p, len, ExtractedQuantity {
                value: cand.value,
                unit_surface: cand.unit_surface,
            });
            match best.get(&cand.number_idx) {
                Some((bp, bl, _)) if (*bp, *bl) >= (p, len) => {}
                _ => {
                    best.insert(cand.number_idx, entry);
                }
            }
        }
        best.into_values().map(|(_, _, q)| q).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimeval::algo1;
    use dimkb::DimUnitKb;
    use dimlink::{Annotator, LinkerConfig, UnitLinker};

    fn training_data() -> Vec<ExtractionItem> {
        let kb = DimUnitKb::shared();
        let corpus =
            dim_corpus::generate(&kb, &dim_corpus::CorpusConfig { sentences: 400, seed: 71 });
        let annotator = Annotator::new(UnitLinker::new(kb, None, LinkerConfig::default()));
        let mlm = algo1::train_filter(&corpus);
        algo1::semi_automated_annotate(&annotator, &mlm, &corpus, algo1::Algo1Config::default())
            .dataset
    }

    #[test]
    fn training_learns_units_from_data() {
        let data = training_data();
        let (train, test) = data.split_at(data.len() * 4 / 5);
        let mut m = ExtractionModel::naive(1);
        m.train(train, 4, 2);
        let mut score = dimeval::ExtractionScore::default();
        for item in test {
            score.push(&item.gold, &m.extract(&item.text));
        }
        assert!(score.qe.f1() > 0.5, "trained QE F1 {}", score.qe.f1());
        // The naive model must be much worse.
        let naive = ExtractionModel::naive(1);
        let mut nscore = dimeval::ExtractionScore::default();
        for item in test {
            nscore.push(&item.gold, &naive.extract(&item.text));
        }
        assert!(
            score.qe.f1() > nscore.qe.f1() + 0.2,
            "trained {} vs naive {}",
            score.qe.f1(),
            nscore.qe.f1()
        );
    }

    #[test]
    fn longest_surface_wins_when_confident() {
        let data = training_data();
        let mut m = ExtractionModel::naive(3);
        m.train(&data, 4, 4);
        let out = m.extract("这块地面积25平方厘米。");
        if let Some(q) = out.first() {
            assert_eq!(q.value, 25.0);
        }
    }

    #[test]
    fn candidates_cover_cjk_and_ascii() {
        let c = candidates("重150千克 and 2.5 kg");
        assert!(c.iter().any(|x| x.unit_surface == "千克"));
        assert!(c.iter().any(|x| x.unit_surface == "kg"));
    }
}
