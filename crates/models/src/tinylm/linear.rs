//! A sparse linear model trained by SGD — the learnable core of TinyLM.
//!
//! Minimizes the same objective as the paper's Eq. 3 (negative
//! log-likelihood of the target given the input) in its linear special
//! case: softmax cross-entropy over candidate scores.

use crate::tinylm::features::FEATURE_DIM;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A hashed-feature linear scorer.
#[derive(Debug, Clone)]
pub struct LinearModel {
    weights: Vec<f32>,
    /// SGD learning rate.
    pub lr: f32,
}

impl LinearModel {
    /// Zero-initialized model.
    pub fn zeros(lr: f32) -> Self {
        LinearModel { weights: vec![0.0; FEATURE_DIM], lr }
    }

    /// Small random initialization — an instruction-tuned-but-task-naive
    /// prior (the LLaMA_IFT starting point).
    pub fn random(lr: f32, scale: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = (0..FEATURE_DIM).map(|_| rng.gen_range(-scale..scale)).collect();
        LinearModel { weights, lr }
    }

    /// The score of a feature set.
    pub fn score(&self, feats: &[u32]) -> f32 {
        feats.iter().map(|&f| self.weights[f as usize]).sum()
    }

    /// Adds `delta` to every feature weight.
    pub fn update(&mut self, feats: &[u32], delta: f32) {
        for &f in feats {
            self.weights[f as usize] += delta;
        }
    }

    /// One softmax cross-entropy SGD step over candidate feature sets;
    /// returns the loss. `gold` indexes the correct candidate.
    pub fn sgd_softmax(&mut self, candidates: &[Vec<u32>], gold: usize) -> f32 {
        let scores: Vec<f32> = candidates.iter().map(|c| self.score(c)).collect();
        let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        let mut loss = 0.0;
        for (i, c) in candidates.iter().enumerate() {
            let p = exps[i] / z;
            let y = f32::from(i == gold);
            self.update(c, -self.lr * (p - y));
            if i == gold {
                loss = -p.max(1e-9).ln();
            }
        }
        loss
    }

    /// One logistic-regression SGD step (binary label); returns the loss.
    pub fn sgd_logistic(&mut self, feats: &[u32], label: bool) -> f32 {
        let s = self.score(feats);
        let p = 1.0 / (1.0 + (-s).exp());
        let y = f32::from(label);
        self.update(feats, -self.lr * (p - y));
        if label {
            -p.max(1e-9).ln()
        } else {
            -(1.0 - p).max(1e-9).ln()
        }
    }

    /// The sigmoid probability of a feature set.
    pub fn prob(&self, feats: &[u32]) -> f32 {
        1.0 / (1.0 + (-self.score(feats)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tinylm::features::feat;

    #[test]
    fn softmax_learns_a_separable_choice() {
        let mut m = LinearModel::zeros(0.5);
        let good = vec![feat("good"), feat("shared")];
        let bad = vec![feat("bad"), feat("shared")];
        for _ in 0..50 {
            m.sgd_softmax(&[good.clone(), bad.clone()], 0);
        }
        assert!(m.score(&good) > m.score(&bad));
    }

    #[test]
    fn logistic_learns_binary_separation() {
        let mut m = LinearModel::zeros(0.5);
        let pos = vec![feat("unit")];
        let neg = vec![feat("devicecode")];
        for _ in 0..50 {
            m.sgd_logistic(&pos, true);
            m.sgd_logistic(&neg, false);
        }
        assert!(m.prob(&pos) > 0.9);
        assert!(m.prob(&neg) < 0.1);
    }

    #[test]
    fn loss_decreases_with_training() {
        let mut m = LinearModel::zeros(0.2);
        let cands = vec![vec![feat("a")], vec![feat("b")], vec![feat("c")]];
        let first = m.sgd_softmax(&cands, 1);
        for _ in 0..30 {
            m.sgd_softmax(&cands, 1);
        }
        let last = m.sgd_softmax(&cands, 1);
        assert!(last < first);
    }

    #[test]
    fn random_init_is_deterministic() {
        let a = LinearModel::random(0.1, 0.01, 5);
        let b = LinearModel::random(0.1, 0.01, 5);
        assert_eq!(a.score(&[1, 2, 3]), b.score(&[1, 2, 3]));
    }
}
