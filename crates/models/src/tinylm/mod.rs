//! TinyLM: the trainable model suite standing in for LLaMA-7B fine-tuning.
//!
//! The paper continually fine-tunes LLaMA-7B — A800 GPUs and weights are
//! gated, and Rust fine-tuning tooling for 7B models is immature. TinyLM
//! replaces the transformer with three *genuinely trainable* components
//! whose learning dynamics carry the experiments:
//!
//! * a [`choice::ChoiceScorer`] (softmax linear model) for the six choice
//!   tasks;
//! * an [`extract::ExtractionModel`] (logistic candidate classifier) for
//!   quantity extraction;
//! * an [`eqgen::EquationGenerator`] (template memory + unit normalizer +
//!   noisy decoder) for math word problems.
//!
//! `TinyLm::llama_ift(seed)` is the instruction-tuned-but-task-naive base
//! model; [`TinyLm::finetune_dimeval`] turns it into **DimPerc**; and
//! [`TinyLm::finetune_mwp`] runs the §V-B4 Seq2Seq training with
//! checkpoint callbacks for the Fig. 6/7 curves.

pub mod choice;
pub mod eqgen;
pub mod extract;
pub mod features;
pub mod linear;

use crate::tinylm::choice::ChoiceScorer;
use crate::tinylm::eqgen::EquationGenerator;
use crate::tinylm::extract::ExtractionModel;
use dimeval::{ChoiceItem, DimEval, DimEvalSolver, ExtractedQuantity, ItemMeta, TaskKind};
use dimkb::DimUnitKb;
use dim_mwp::{EqTokenization, MwpProblem, MwpSolver, Prediction};
use dimkb::{DimVec, UnitId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;


/// The trainable model.
#[derive(Clone)]
pub struct TinyLm {
    /// Display name ("LLaMA_IFT" until DimEval fine-tuning, then "DimPerc").
    pub display_name: String,
    /// The multiple-choice scorer.
    pub choice: ChoiceScorer,
    /// The extraction model.
    pub extractor: ExtractionModel,
    /// The equation generator.
    pub eqgen: EquationGenerator,
    /// Equation tokenization strategy for MWP decoding.
    pub tokenization: EqTokenization,
    /// Conversion factors memorized during DimEval fine-tuning, applied at
    /// inference on conversion items (the infused dimensional knowledge).
    conversion_memory: HashMap<(UnitId, UnitId), f64>,
    /// Dimension vectors the CoT rationales explicitly stated during
    /// fine-tuning ("dim(newton) = LMT⁻²").
    dim_memory: HashMap<UnitId, DimVec>,
    /// Kind → dimension facts stated by kind-match / dimension-prediction
    /// rationales.
    kind_dim_memory: HashMap<dimkb::KindId, DimVec>,
    /// SI factors stated by magnitude-comparison rationales ("1 km = 1e3 SI").
    factor_memory: HashMap<UnitId, f64>,
}

impl TinyLm {
    /// The base model: instruction-tuned on generic data, naive on
    /// dimension-perception tasks (the paper's LLaMA_IFT).
    pub fn llama_ift(seed: u64) -> Self {
        TinyLm {
            display_name: "LLaMa_IFT".to_string(),
            choice: ChoiceScorer::naive(seed),
            extractor: ExtractionModel::naive(seed),
            eqgen: EquationGenerator::new(),
            tokenization: EqTokenization::Regular,
            conversion_memory: HashMap::new(),
            dim_memory: HashMap::new(),
            kind_dim_memory: HashMap::new(),
            factor_memory: HashMap::new(),
        }
    }

    /// Continual fine-tuning on DimEval (§IV-D): trains the choice scorer
    /// on every choice task, the extractor on the Algorithm-1 dataset, and
    /// seeds the equation generator's unit knowledge from the conversion
    /// items — producing DimPerc.
    pub fn finetune_dimeval(&mut self, kb: &DimUnitKb, train: &DimEval, epochs: usize, seed: u64) {
        // Iterate tasks in canonical order: the SGD stream must not depend
        // on HashMap iteration order or training becomes run-to-run noise.
        let choice_in_order = || {
            TaskKind::CHOICE.iter().filter_map(|t| train.choice.get(t))
        };
        let all_choice: Vec<ChoiceItem> =
            choice_in_order().flat_map(|v| v.iter().cloned()).collect();
        self.choice.train(&all_choice, epochs, seed);
        self.extractor.train(&train.extraction, epochs, seed ^ 1);
        // Knowledge infusion: the CoT rationales of the training items
        // state facts verbatim — conversion factors, dimension vectors,
        // kind-dimension associations, SI magnitudes. A fine-tuned model
        // recalls trained facts; the memory tables below implement that
        // recall (the statistical scorer handles everything unseen).
        for items in choice_in_order() {
            for item in items {
                match &item.meta {
                    ItemMeta::Conversion { from, to, factors } => {
                        let beta = factors[item.answer];
                        let (f, t) = (kb.unit(*from), kb.unit(*to));
                        self.eqgen.seed_conversion(&f.code, &t.code, beta);
                        self.conversion_memory.insert((*from, *to), beta);
                        if beta != 0.0 {
                            self.conversion_memory.insert((*to, *from), 1.0 / beta);
                        }
                        // The rationale states both units' SI factors
                        // ("1 km = 1e3 SI"), anchoring them for *composed*
                        // conversions between any two anchored units.
                        self.factor_memory.insert(*from, f.conversion.factor);
                        self.factor_memory.insert(*to, t.conversion.factor);
                        for u in [f, t] {
                            self.eqgen.seed_surface(&u.label_zh, &u.code);
                            self.eqgen.seed_surface(&u.symbol, &u.code);
                        }
                    }
                    ItemMeta::KindMatch { kind, options } => {
                        let gold = options[item.answer];
                        let dim = kb.unit(gold).dim;
                        self.kind_dim_memory.insert(*kind, dim);
                        self.dim_memory.insert(gold, dim);
                        self.seed_surfaces(kb, options);
                    }
                    ItemMeta::Comparable { reference, options } => {
                        // The rationale states dim(reference) and dim(gold).
                        let dim = kb.unit(*reference).dim;
                        self.dim_memory.insert(*reference, dim);
                        self.dim_memory.insert(options[item.answer], dim);
                        self.seed_surfaces(kb, options);
                    }
                    ItemMeta::DimPrediction { gold_kind, options } => {
                        let dim = kb.kind(*gold_kind).dim;
                        self.kind_dim_memory.insert(*gold_kind, dim);
                        self.dim_memory.insert(options[item.answer], dim);
                        self.seed_surfaces(kb, options);
                    }
                    ItemMeta::DimArithmetic { expr, options } => {
                        // The rationale lists every operand's dimension.
                        for (u, _) in expr {
                            self.dim_memory.insert(*u, kb.unit(*u).dim);
                        }
                        self.dim_memory
                            .insert(options[item.answer], kb.unit(options[item.answer]).dim);
                        self.seed_surfaces(kb, options);
                    }
                    ItemMeta::Magnitude { options } => {
                        // The rationale lists every option's SI factor.
                        for &u in options {
                            self.factor_memory.insert(u, kb.unit(u).conversion.factor);
                        }
                        self.seed_surfaces(kb, options);
                    }
                }
            }
        }
        // The CoT targets are structured sequences; training on them
        // matures the decoder before any MWP fine-tuning (the source of
        // DimPerc's early-training advantage in Fig. 7).
        let total_items: usize = train.choice.values().map(Vec::len).sum::<usize>() * epochs;
        self.eqgen.pretrain_decoder(total_items);
        self.display_name = "DimPerc".to_string();
    }

    fn seed_surfaces(&mut self, kb: &DimUnitKb, options: &[UnitId]) {
        for &id in options {
            let u = kb.unit(id);
            self.eqgen.seed_surface(&u.label_zh, &u.code);
            self.eqgen.seed_surface(&u.symbol, &u.code);
        }
    }

    /// Supervised Seq2Seq fine-tuning on MWPs (§V-B4). Consumes the
    /// problems in order; `checkpoint_every > 0` invokes the callback with
    /// `(steps_so_far, &self)` for training curves.
    pub fn finetune_mwp(
        &mut self,
        problems: &[MwpProblem],
        checkpoint_every: usize,
        mut callback: impl FnMut(usize, &TinyLm),
    ) {
        for (i, p) in problems.iter().enumerate() {
            self.eqgen.train_one(p);
            if checkpoint_every > 0 && (i + 1) % checkpoint_every == 0 {
                callback(i + 1, self);
            }
        }
    }

    /// Lightweight knowledge expansion — the paper's future-work direction
    /// (§VIII: "finetuning for each database expansion is costly and
    /// inefficient. Future work can focus on dimension perception methods
    /// that facilitate lightweight expansion"). Registers one newly added
    /// KB unit into the model's fact memories and vocabulary without any
    /// re-fine-tuning.
    pub fn learn_unit(&mut self, kb: &DimUnitKb, id: UnitId) {
        let u = kb.unit(id);
        self.dim_memory.insert(id, u.dim);
        self.kind_dim_memory.entry(u.kind).or_insert(u.dim);
        if !u.conversion.is_affine() {
            self.factor_memory.insert(id, u.conversion.factor);
        }
        self.eqgen.seed_surface(&u.label_zh, &u.code);
        self.eqgen.seed_surface(&u.symbol, &u.code);
        self.eqgen.seed_surface(&u.label_en, &u.code);
    }

    /// Immutable MWP solve with a problem-derived seed (usable inside
    /// checkpoint callbacks).
    pub fn solve_frozen(&self, problem: &MwpProblem, seed: u64) -> Prediction {
        let mut rng = StdRng::seed_from_u64(seed ^ problem.id);
        self.eqgen.solve(&problem.text(), self.tokenization, &mut rng)
    }
}

impl DimEvalSolver for TinyLm {
    fn name(&self) -> String {
        self.display_name.clone()
    }

    fn answer(&mut self, item: &ChoiceItem) -> Option<usize> {
        // Memorized facts override the statistical scorer, the way a
        // fine-tuned model recalls facts it was trained on; anything the
        // memory cannot settle falls through to the scorer.
        match &item.meta {
            ItemMeta::Conversion { from, to, factors } => {
                // Composed recall: both units anchored to SI → β = f/t.
                let beta = self
                    .conversion_memory
                    .get(&(*from, *to))
                    .copied()
                    .or_else(|| match (self.factor_memory.get(from), self.factor_memory.get(to)) {
                        (Some(f), Some(t)) if *t != 0.0 => Some(f / t),
                        _ => None,
                    });
                if let Some(beta) = beta {
                    let mut best = None;
                    let mut best_d = f64::INFINITY;
                    for (i, &f) in factors.iter().enumerate() {
                        if f > 0.0 && beta > 0.0 {
                            let d = (f.ln() - beta.ln()).abs();
                            if d < best_d {
                                best_d = d;
                                best = Some(i);
                            }
                        }
                    }
                    if best.is_some() {
                        return best;
                    }
                }
            }
            ItemMeta::Comparable { reference, options } => {
                if let Some(ref_dim) = self.dim_memory.get(reference) {
                    for (i, u) in options.iter().enumerate() {
                        if self.dim_memory.get(u) == Some(ref_dim) {
                            return Some(i);
                        }
                    }
                }
            }
            ItemMeta::KindMatch { kind, options } => {
                if let Some(dim) = self.kind_dim_memory.get(kind) {
                    let hits: Vec<usize> = options
                        .iter()
                        .enumerate()
                        .filter(|(_, u)| self.dim_memory.get(u) == Some(dim))
                        .map(|(i, _)| i)
                        .collect();
                    if hits.len() == 1 {
                        return Some(hits[0]);
                    }
                }
            }
            ItemMeta::DimPrediction { gold_kind, options } => {
                if let Some(dim) = self.kind_dim_memory.get(gold_kind) {
                    let hits: Vec<usize> = options
                        .iter()
                        .enumerate()
                        .filter(|(_, u)| self.dim_memory.get(u) == Some(dim))
                        .map(|(i, _)| i)
                        .collect();
                    if hits.len() == 1 {
                        return Some(hits[0]);
                    }
                }
            }
            ItemMeta::DimArithmetic { expr, options } => {
                let operand_dims: Option<Vec<DimVec>> =
                    expr.iter().map(|(u, _)| self.dim_memory.get(u).copied()).collect();
                if let Some(dims) = operand_dims {
                    // DimPerc was trained on dimension arithmetic: it can
                    // combine known dimension vectors symbolically.
                    let mut acc = DimVec::DIMENSIONLESS;
                    for (dim, (_, exp)) in dims.iter().zip(expr) {
                        acc = acc * dim.powi(*exp);
                    }
                    let hits: Vec<usize> = options
                        .iter()
                        .enumerate()
                        .filter(|(_, u)| self.dim_memory.get(u) == Some(&acc))
                        .map(|(i, _)| i)
                        .collect();
                    if hits.len() == 1 {
                        return Some(hits[0]);
                    }
                }
            }
            ItemMeta::Magnitude { options } => {
                let factors: Option<Vec<f64>> =
                    options.iter().map(|u| self.factor_memory.get(u).copied()).collect();
                if let Some(fs) = factors {
                    return fs
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(i, _)| i);
                }
            }
        }
        self.choice.answer(item)
    }

    fn extract(&mut self, text: &str) -> Vec<ExtractedQuantity> {
        self.extractor.extract(text)
    }
}

impl MwpSolver for TinyLm {
    fn name(&self) -> String {
        self.display_name.clone()
    }

    fn solve(&mut self, problem: &MwpProblem) -> Prediction {
        self.solve_frozen(problem, 0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimeval::{evaluate, Category, DimEvalConfig};
    use dimkb::DimUnitKb;

    fn bench(seed: u64, per_task: usize) -> DimEval {
        let kb = DimUnitKb::shared();
        DimEval::build(
            &kb,
            &DimEvalConfig {
                per_task,
                extraction_items: per_task.min(120),
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn dimperc_beats_llama_ift_on_every_category() {
        // The Table VIII experiment in miniature.
        let kb = DimUnitKb::shared();
        let train = bench(1, 500);
        let eval = bench(2, 30);
        let mut base = TinyLm::llama_ift(3);
        let mut dimperc = TinyLm::llama_ift(3);
        dimperc.finetune_dimeval(&kb, &train, 6, 4);
        let rb = evaluate(&mut base, &eval);
        let rd = evaluate(&mut dimperc, &eval);
        for cat in Category::ALL {
            let (pb, _) = rb.category(cat);
            let (pd, _) = rd.category(cat);
            assert!(pd > pb, "{}: DimPerc {pd} must beat LLaMA_IFT {pb}", cat.name());
        }
        assert_eq!(rd.model, "DimPerc");
    }

    #[test]
    fn finetuning_reaches_useful_precision() {
        let kb = DimUnitKb::shared();
        let train = bench(5, 500);
        let eval = bench(6, 30);
        let mut m = TinyLm::llama_ift(7);
        m.finetune_dimeval(&kb, &train, 8, 8);
        let r = evaluate(&mut m, &eval);
        let (p, _) = r.category(Category::DimensionPerception);
        assert!(p > 0.5, "dimension-perception precision {p}");
    }

    #[test]
    fn lightweight_expansion_teaches_new_units_without_refinetuning() {
        // The §VIII future-work feature: an untrained-on unit pair fails a
        // conversion item; after learn_unit both ways, the model recalls
        // the composed factor without any gradient steps.
        use dimeval::{ChoiceItem, ItemMeta, TaskKind};
        let kb = DimUnitKb::shared();
        let from = kb.unit_by_code("GILL-PER-HR").unwrap().id;
        let to = kb.unit_by_code("M3-PER-SEC").unwrap().id;
        let beta = kb.conversion_factor(from, to).unwrap();
        let factors = vec![beta, beta * 10.0, beta / 100.0, beta * 1000.0];
        let item = ChoiceItem {
            task: TaskKind::UnitConversion,
            question: "obscure conversion".into(),
            options: factors.iter().map(|f| format!("{f:e}")).collect(),
            answer: 0,
            rationale: String::new(),
            meta: ItemMeta::Conversion { from, to, factors },
        };
        let mut m = TinyLm::llama_ift(1);
        m.display_name = "DimPerc".into();
        // Without the units learned, the naive scorer decides (and with a
        // margin below threshold it abstains) — recall is impossible.
        let before = m.answer(&item);
        m.learn_unit(&kb, from);
        m.learn_unit(&kb, to);
        assert_eq!(m.answer(&item), Some(0), "after expansion the factor is composed");
        // `before` may have been a lucky guess; the invariant is that the
        // expanded model is *deterministically* right.
        let _ = before;
    }

    #[test]
    fn mwp_finetuning_produces_checkpoints() {
        let problems = dim_mwp::generate(
            dim_mwp::Source::Math23k,
            &dim_mwp::GenConfig { count: 100, seed: 9 },
        );
        let mut m = TinyLm::llama_ift(10);
        let mut steps = Vec::new();
        m.finetune_mwp(&problems, 25, |s, _| steps.push(s));
        assert_eq!(steps, vec![25, 50, 75, 100]);
        assert_eq!(m.eqgen.examples(), 100);
    }
}
