//! Hashed sparse features for the TinyLM suite.

use dim_embed::tokenize::tokenize;

/// Size of the hashed weight space (2^20).
pub const FEATURE_DIM: usize = 1 << 20;

/// Hashes a feature string into the weight space.
pub fn feat(s: &str) -> u32 {
    // FNV-1a, stable across platforms and runs.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % FEATURE_DIM as u64) as u32
}

/// Word-level tokens of a text (CJK chars count as words).
pub fn words(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.text).collect()
}

/// Features of a (question, option) pair for choice scoring: option words,
/// option word bigrams, and question×option crossed words (capped).
pub fn choice_features(task: &str, question: &str, option: &str) -> Vec<u32> {
    let q_words = words(question);
    let o_words = words(option);
    // Word suffixes generalize across metric families: kilometre /
    // centimetre / metre all share the "etre" stem, which carries the
    // same-dimension signal a transformer would pick up subword-wise.
    let suffix = |w: &str| -> String {
        let chars: Vec<char> = w.chars().collect();
        let n = chars.len();
        chars[n.saturating_sub(4)..].iter().collect()
    };
    let mut out =
        Vec::with_capacity(o_words.len() * 4 + q_words.len().min(40) * (o_words.len().min(8) * 2 + 2));
    for w in &o_words {
        out.push(feat(&format!("{task}|o:{w}")));
        out.push(feat(&format!("{task}|os:{}", suffix(w))));
    }
    for pair in o_words.windows(2) {
        out.push(feat(&format!("{task}|o2:{} {}", pair[0], pair[1])));
    }
    // The whole option string as one memorization feature (crucial for
    // conversion factors like "1000").
    out.push(feat(&format!("{task}|O:{option}")));
    for qw in q_words.iter().take(40) {
        let qs = suffix(qw);
        for ow in o_words.iter().take(8) {
            out.push(feat(&format!("{task}|x:{qw}|{ow}")));
            out.push(feat(&format!("{task}|xs:{qs}|{}", suffix(ow))));
        }
        out.push(feat(&format!("{task}|xO:{qw}|{option}")));
    }
    // Overlap indicators: does the option share words / word-families with
    // the question? A linear proxy for the token-matching attention that
    // lets a transformer spot "metre" echoing "kilometre".
    let mut share_word = 0usize;
    let mut share_suffix = 0usize;
    for ow in &o_words {
        if q_words.iter().any(|qw| qw == ow) {
            share_word += 1;
        }
        let os = suffix(ow);
        if os.chars().count() >= 3
            && !o_words.is_empty()
            && q_words.iter().any(|qw| suffix(qw) == os && qw != ow)
        {
            share_suffix += 1;
        }
    }
    out.push(feat(&format!("{task}|shareW:{}", share_word.min(3))));
    out.push(feat(&format!("{task}|shareS:{}", share_suffix.min(3))));
    out
}

/// Features of an extraction candidate: the unit string, its characters,
/// and the local context tokens.
pub fn extraction_features(unit_surface: &str, prev: &str, next: &str) -> Vec<u32> {
    let mut out = Vec::new();
    out.push(feat(&format!("u:{unit_surface}")));
    for c in unit_surface.chars() {
        out.push(feat(&format!("uc:{c}")));
    }
    out.push(feat(&format!("len:{}", unit_surface.chars().count())));
    out.push(feat(&format!("prev:{prev}")));
    out.push(feat(&format!("next:{next}")));
    out.push(feat(&format!("pu:{prev}|{unit_surface}")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_stable_and_in_range() {
        let a = feat("hello");
        let b = feat("hello");
        assert_eq!(a, b);
        assert!((a as usize) < FEATURE_DIM);
        assert_ne!(feat("hello"), feat("world"));
    }

    #[test]
    fn choice_features_depend_on_both_sides() {
        let a = choice_features("conv", "convert km to m", "1000");
        let b = choice_features("conv", "convert km to m", "0.001");
        assert_ne!(a, b);
        let c = choice_features("conv", "convert kg to g", "1000");
        assert_ne!(a, c, "crossed features must differ with the question");
    }

    #[test]
    fn extraction_features_capture_context() {
        let a = extraction_features("千克", "重", "，");
        let b = extraction_features("千克", "号", "，");
        assert_ne!(a, b);
    }
}
