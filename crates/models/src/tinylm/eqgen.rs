//! The trainable equation generator: TinyLM's Seq2Seq substitute (§V-B4).
//!
//! The generator learns three things from training problems:
//!
//! * a **unit vocabulary** (surface form → unit code) — without it, test
//!   problems with unseen unit spellings cannot even be segmented;
//! * **skeleton → equation templates** — the problem text with quantities
//!   abstracted, mapped to the canonical solution equation and the
//!   canonical unit per slot (majority-voted from unaugmented examples);
//! * a **unit normalizer** — (from unit, to unit) → factor pairs, learned
//!   from the conversion steps of augmented training problems (and, for
//!   DimPerc, pre-seeded from DimEval unit-conversion items — this is
//!   exactly the early-training advantage Fig. 7 shows).
//!
//! Decoding emits the equation token-by-token with a per-token corruption
//! rate that decays with training; digit tokenization produces longer
//! sequences and therefore more corruption — the mechanism behind the
//! paper's negative equation-tokenization result (Fig. 7).

use dim_embed::tokenize::is_cjk;
use dim_mwp::equation::fmt_number;
use dim_mwp::{detokenize, tokenize_equation, EqTokenization, MwpProblem, Node, Op, Prediction};
use dimlink::scan_numbers;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

const Q_MARK: &str = "⟨Q⟩";
const U_MARK: &str = "⟨U⟩";

/// One learned template.
#[derive(Debug, Clone)]
struct TemplateEntry {
    /// Canonical (conversion-stripped) solution equation.
    equation: Node,
    /// Per-slot votes for the canonical unit code ("" = unitless).
    slot_votes: Vec<HashMap<String, usize>>,
    /// Votes for the canonical answer-unit code.
    answer_votes: HashMap<String, usize>,
}

impl TemplateEntry {
    fn canonical_slot(&self, i: usize) -> Option<&str> {
        self.slot_votes
            .get(i)?
            .iter()
            .max_by_key(|(_, v)| **v)
            .map(|(k, _)| k.as_str())
            .filter(|s| !s.is_empty())
    }

    fn canonical_answer(&self) -> Option<&str> {
        self.answer_votes
            .iter()
            .max_by_key(|(_, v)| **v)
            .map(|(k, _)| k.as_str())
            .filter(|s| !s.is_empty())
    }
}

/// The trainable equation generator.
#[derive(Debug, Clone, Default)]
pub struct EquationGenerator {
    /// Learned surface → unit-code vocabulary.
    unit_codes: HashMap<String, String>,
    /// Learned skeleton → template memory.
    templates: HashMap<String, TemplateEntry>,
    /// Learned conversion pairs: (from code, to code) → factor.
    normalizer: HashMap<(String, String), f64>,
    /// Training examples seen (template memory growth).
    examples: usize,
    /// Total structured-output sequences the decoder has been trained on —
    /// MWP equations here, plus CoT targets from DimEval fine-tuning
    /// (drives the decoding-noise decay).
    maturity: usize,
}

impl EquationGenerator {
    /// An untrained generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of training examples consumed.
    pub fn examples(&self) -> usize {
        self.examples
    }

    /// Number of learned conversion pairs.
    pub fn known_pairs(&self) -> usize {
        self.normalizer.len()
    }

    /// Number of learned unit surfaces.
    pub fn known_surfaces(&self) -> usize {
        self.unit_codes.len()
    }

    /// Seeds a conversion pair (`value[from] × β = value[to]`), e.g. from a
    /// DimEval unit-conversion item. Also records the inverse.
    pub fn seed_conversion(&mut self, from_code: &str, to_code: &str, beta: f64) {
        self.normalizer.insert((from_code.to_string(), to_code.to_string()), beta);
        if beta != 0.0 {
            self.normalizer.insert((to_code.to_string(), from_code.to_string()), 1.0 / beta);
        }
    }

    /// Seeds a unit surface form.
    pub fn seed_surface(&mut self, surface: &str, code: &str) {
        if !surface.is_empty() {
            self.unit_codes.insert(surface.to_string(), code.to_string());
        }
    }

    /// Credits the decoder with `n` structured-output training sequences
    /// that are not MWP equations (the CoT targets of DimEval fine-tuning):
    /// the decoder matures without any template being learned.
    pub fn pretrain_decoder(&mut self, n: usize) {
        self.maturity += n;
    }

    /// Consumes one training problem (one "step" of fine-tuning).
    pub fn train_one(&mut self, p: &MwpProblem) {
        self.examples += 1;
        self.maturity += 1;
        for q in &p.quantities {
            if let Some(code) = &q.unit_code {
                self.seed_surface(&q.surface, code);
            }
        }
        if let Some(code) = &p.answer_unit_code {
            self.seed_surface(&p.answer_unit_surface, code);
        }
        let skeleton = seg_skeleton(p);
        let stripped = strip_conversions(p);
        let converted: Vec<usize> = p.conversions.iter().map(|(i, _)| *i).collect();
        let entry = self.templates.entry(skeleton).or_insert_with(|| TemplateEntry {
            equation: stripped.clone(),
            slot_votes: vec![HashMap::new(); p.quantities.len()],
            answer_votes: HashMap::new(),
        });
        // Canonical units are voted only by unconverted slots.
        for (i, q) in p.quantities.iter().enumerate() {
            if converted.contains(&i) {
                continue;
            }
            let code = q.unit_code.clone().unwrap_or_default();
            if let Some(votes) = entry.slot_votes.get_mut(i) {
                *votes.entry(code).or_insert(0) += 1;
            }
        }
        if (p.answer_conversion - 1.0).abs() < 1e-12 {
            let code = p.answer_unit_code.clone().unwrap_or_default();
            *entry.answer_votes.entry(code).or_insert(0) += 1;
        }
        // Learn conversion pairs relative to the canonical slot unit.
        let pairs: Vec<(String, String, f64)> = p
            .conversions
            .iter()
            .filter_map(|(i, ratio)| {
                let written = p.quantities[*i].unit_code.clone()?;
                let canonical = entry.canonical_slot(*i)?.to_string();
                Some((written, canonical, *ratio))
            })
            .collect();
        for (from, to, beta) in pairs {
            self.seed_conversion(&from, &to, beta);
        }
        // Answer conversion pair: canonical answer code → written code.
        if (p.answer_conversion - 1.0).abs() > 1e-12 {
            let skeleton = seg_skeleton(p);
            let canonical = self
                .templates
                .get(&skeleton)
                .and_then(|e| e.canonical_answer().map(str::to_string));
            if let (Some(canonical), Some(written)) = (canonical, p.answer_unit_code.clone()) {
                self.seed_conversion(&canonical, &written, p.answer_conversion);
            }
        }
    }

    /// The decoding noise: per-token corruption probability, decaying with
    /// training (an untrained decoder is unreliable even with the right
    /// template).
    pub fn token_error(&self) -> f64 {
        // The 0.006 floor is the irreducible per-token decoding error of
        // the simulated 7B decoder; it keeps digit tokenization's longer
        // sequences measurably worse even late in training (Fig. 7).
        (0.05 / (1.0 + self.maturity as f64 / 150.0)).max(0.006)
    }

    /// Solves a problem from its raw text.
    pub fn solve(
        &self,
        text: &str,
        strategy: EqTokenization,
        rng: &mut StdRng,
    ) -> Prediction {
        let Some(parsed) = self.parse(text) else { return Prediction::None };
        let Some(entry) = self.templates.get(&parsed.skeleton) else {
            return Prediction::None;
        };
        if parsed.quantities.len() != entry.slot_votes.len() {
            return Prediction::None;
        }
        let mut values = Vec::with_capacity(parsed.quantities.len());
        for (i, (value, code, surface)) in parsed.quantities.iter().enumerate() {
            let mut v = if surface == "%" { *value / 100.0 } else { *value };
            if let (Some(c), Some(t)) = (code.as_deref(), entry.canonical_slot(i)) {
                if c != t {
                    if let Some(r) = self.normalizer.get(&(c.to_string(), t.to_string())) {
                        v *= r;
                    }
                    // Unknown pair: the conversion is silently skipped and
                    // the equation comes out wrong — the failure the
                    // augmentation exists to fix.
                }
            }
            values.push(v);
        }
        let mut node = entry.equation.map_q(&mut |i| {
            Node::Const(*values.get(i).unwrap_or(&f64::NAN))
        });
        if let (Some(asked), Some(canonical)) =
            (parsed.answer_code.as_deref(), entry.canonical_answer())
        {
            if asked != canonical {
                if let Some(r) =
                    self.normalizer.get(&(canonical.to_string(), asked.to_string()))
                {
                    node = Node::bin(Op::Mul, node, Node::Const(*r));
                }
            }
        }
        let rendered = node.render(&[]);
        Prediction::Equation(self.corrupt(&rendered, strategy, rng))
    }

    /// Applies decoding noise under the given tokenization strategy.
    fn corrupt(&self, equation: &str, strategy: EqTokenization, rng: &mut StdRng) -> String {
        let eps = self.token_error();
        let mut tokens = tokenize_equation(equation, strategy);
        for tok in &mut tokens {
            if rng.gen_bool(eps) {
                // Corrupt one digit of the token, if any.
                let chars: Vec<char> = tok.chars().collect();
                if let Some(pos) = chars.iter().position(|c| c.is_ascii_digit()) {
                    let d = chars[pos].to_digit(10).expect("digit");
                    let new = char::from_digit((d + 1) % 10, 10).expect("digit");
                    let mut c2 = chars.clone();
                    c2[pos] = new;
                    *tok = c2.into_iter().collect();
                }
            }
        }
        detokenize(&tokens)
    }

    /// Parses raw problem text with the learned vocabulary.
    fn parse(&self, text: &str) -> Option<ParsedProblem> {
        // MWP values are written in digits; Chinese numeral characters in
        // the text (一辆, 两队, …) are articles, not quantities.
        let numbers: Vec<_> = scan_numbers(text)
            .into_iter()
            .filter(|n| text[n.start..].starts_with(|c: char| c.is_ascii_digit()))
            .collect();
        if numbers.is_empty() {
            return None;
        }
        let mut skeleton = String::new();
        let mut quantities = Vec::new();
        let mut cursor = 0usize;
        for num in &numbers {
            if num.start < cursor {
                continue; // overlapping (e.g. 万-suffixed) — already consumed
            }
            skeleton.push_str(&text[cursor..num.start]);
            let mut unit_start = num.end;
            if text[unit_start..].starts_with(' ') {
                unit_start += 1;
            }
            let (surface, code) = self.longest_known_surface(&text[unit_start..]);
            skeleton.push_str(Q_MARK);
            let value_text = &text[num.start..num.end];
            let _ = value_text;
            quantities.push((num.value, code, surface.clone()));
            cursor = unit_start + surface.len();
            if surface.is_empty() {
                cursor = num.end;
            }
        }
        skeleton.push_str(&text[cursor..]);
        // Mask the answer unit after the last 多少 (or "how many").
        let mut answer_code = None;
        if let Some(pos) = skeleton.rfind("多少") {
            let after = pos + "多少".len();
            let tail = &skeleton[after..];
            let mut best: Option<(usize, String, String)> = None;
            let mut offset = 0usize;
            for (i, c) in tail.char_indices().take(6) {
                let _ = c;
                let (surface, code) = self.longest_known_surface(&tail[i..]);
                if !surface.is_empty() {
                    best = Some((i, surface, code.unwrap_or_default()));
                    break;
                }
                offset = i;
            }
            let _ = offset;
            if let Some((i, surface, code)) = best {
                let abs = after + i;
                skeleton.replace_range(abs..abs + surface.len(), U_MARK);
                if !code.is_empty() {
                    answer_code = Some(code);
                }
            }
        }
        Some(ParsedProblem { skeleton, quantities, answer_code })
    }

    /// Longest learned unit surface at the start of `rest` ("" when none).
    fn longest_known_surface(&self, rest: &str) -> (String, Option<String>) {
        match rest.chars().next() {
            Some(c) if is_cjk(c) => {
                let chars: Vec<char> = rest.chars().take(4).collect();
                for n in (1..=chars.len()).rev() {
                    let cand: String = chars[..n].iter().collect();
                    if let Some(code) = self.unit_codes.get(&cand) {
                        return (cand, Some(code.clone()));
                    }
                }
                (String::new(), None)
            }
            Some(c) if c.is_ascii_alphabetic() || "°µΩ%‰".contains(c) => {
                let run_end = rest
                    .char_indices()
                    .find(|&(_, ch)| {
                        !(ch.is_ascii_alphanumeric() || "°µΩ%‰/·*^²³⁻¹".contains(ch))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                let run = &rest[..run_end];
                match self.unit_codes.get(run) {
                    Some(code) if !run.is_empty() => (run.to_string(), Some(code.clone())),
                    _ => (String::new(), None),
                }
            }
            _ => (String::new(), None),
        }
    }
}

struct ParsedProblem {
    skeleton: String,
    /// (value, unit code if known, surface as written).
    quantities: Vec<(f64, Option<String>, String)>,
    answer_code: Option<String>,
}

/// Skeleton of a *training* problem from its segments (teacher forcing).
fn seg_skeleton(p: &MwpProblem) -> String {
    use dim_mwp::Seg;
    let mut out = String::new();
    for seg in &p.segs {
        match seg {
            Seg::Text(t) => out.push_str(t),
            Seg::Qty(_) => out.push_str(Q_MARK),
            Seg::AnswerUnit => out.push_str(U_MARK),
        }
    }
    out
}

/// Removes the conversion wrappers recorded in the problem's metadata,
/// recovering the canonical equation.
fn strip_conversions(p: &MwpProblem) -> Node {
    let mut node = p.equation.clone();
    // Strip the root answer conversion first.
    if (p.answer_conversion - 1.0).abs() > 1e-12 {
        node = match node {
            Node::Bin(Op::Mul, inner, c)
                if matches!(*c, Node::Const(v) if close(v, p.answer_conversion)) =>
            {
                *inner
            }
            Node::Bin(Op::Div, inner, c)
                if matches!(*c, Node::Const(v) if close(1.0 / v, p.answer_conversion)) =>
            {
                *inner
            }
            other => other,
        };
    }
    strip_q_wrappers(&node, &p.conversions)
}

fn close(a: f64, b: f64) -> bool {
    (a / b - 1.0).abs() < 1e-9
}

fn strip_q_wrappers(node: &Node, conversions: &[(usize, f64)]) -> Node {
    match node {
        Node::Bin(Op::Mul, l, r) => {
            if let (Node::Q(i), Node::Const(c)) = (l.as_ref(), r.as_ref()) {
                if conversions.iter().any(|(qi, ratio)| qi == i && close(*c, *ratio)) {
                    return Node::Q(*i);
                }
            }
            Node::bin(
                Op::Mul,
                strip_q_wrappers(l, conversions),
                strip_q_wrappers(r, conversions),
            )
        }
        Node::Bin(Op::Div, l, r) => {
            if let (Node::Q(i), Node::Const(c)) = (l.as_ref(), r.as_ref()) {
                if conversions.iter().any(|(qi, ratio)| qi == i && close(1.0 / *c, *ratio)) {
                    return Node::Q(*i);
                }
            }
            Node::bin(
                Op::Div,
                strip_q_wrappers(l, conversions),
                strip_q_wrappers(r, conversions),
            )
        }
        Node::Bin(op, l, r) => Node::bin(
            *op,
            strip_q_wrappers(l, conversions),
            strip_q_wrappers(r, conversions),
        ),
        Node::Q(i) => Node::Q(*i),
        Node::Const(c) => Node::Const(*c),
    }
}

/// Renders values for diagnostics.
pub fn debug_value(v: f64) -> String {
    fmt_number(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mwp::{generate, prediction_correct, Augmenter, GenConfig, Source};
    use dimkb::DimUnitKb;
    use rand::SeedableRng;

    #[test]
    fn learns_n_mwp_templates_exactly() {
        let train = generate(Source::Math23k, &GenConfig { count: 300, seed: 1 });
        let test = generate(Source::Math23k, &GenConfig { count: 80, seed: 2 });
        let mut g = EquationGenerator::new();
        for p in &train {
            g.train_one(p);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let correct = test
            .iter()
            .filter(|p| {
                prediction_correct(p, &g.solve(&p.text(), EqTokenization::Regular, &mut rng))
            })
            .count();
        assert!(correct as f64 / test.len() as f64 > 0.8, "{correct}/{}", test.len());
    }

    #[test]
    fn untrained_generator_fails() {
        let test = generate(Source::Math23k, &GenConfig { count: 20, seed: 4 });
        let g = EquationGenerator::new();
        let mut rng = StdRng::seed_from_u64(5);
        for p in &test {
            assert_eq!(
                g.solve(&p.text(), EqTokenization::Regular, &mut rng),
                Prediction::None
            );
        }
    }

    #[test]
    fn qmwp_needs_conversion_pairs() {
        let kb = DimUnitKb::shared();
        let n_train = generate(Source::Math23k, &GenConfig { count: 300, seed: 6 });
        let n_test = generate(Source::Math23k, &GenConfig { count: 120, seed: 7 });
        let q_test = Augmenter::new(&kb, 7).to_qmwp(&n_test);
        // Model A: trained on N-MWP only.
        let mut a = EquationGenerator::new();
        for p in &n_train {
            a.train_one(p);
        }
        // Model B: trained on N-MWP plus augmented variants (η = 1).
        let mut b = EquationGenerator::new();
        let aug_train = Augmenter::new(&kb, 8).augment_dataset(&n_train, 1.0);
        for p in &aug_train {
            b.train_one(p);
        }
        let acc = |g: &EquationGenerator, set: &[dim_mwp::MwpProblem], seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            set.iter()
                .filter(|p| {
                    prediction_correct(p, &g.solve(&p.text(), EqTokenization::Regular, &mut rng))
                })
                .count() as f64
                / set.len() as f64
        };
        let a_q = acc(&a, &q_test, 9);
        let b_q = acc(&b, &q_test, 9);
        assert!(
            b_q > a_q + 0.1,
            "augmentation must lift Q-MWP accuracy: {a_q} -> {b_q}"
        );
        // Both remain strong on N-MWP.
        assert!(acc(&b, &n_test, 10) > 0.75);
    }

    #[test]
    fn digit_tokenization_hurts() {
        let train = generate(Source::Ape210k, &GenConfig { count: 120, seed: 11 });
        let test = generate(Source::Ape210k, &GenConfig { count: 200, seed: 12 });
        let mut g = EquationGenerator::new();
        for p in &train {
            g.train_one(p);
        }
        let acc = |strategy, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            test.iter()
                .filter(|p| prediction_correct(p, &g.solve(&p.text(), strategy, &mut rng)))
                .count() as f64
                / test.len() as f64
        };
        // Average over seeds to stabilize the stochastic corruption.
        let reg: f64 = (0..5).map(|s| acc(EqTokenization::Regular, s)).sum::<f64>() / 5.0;
        let dig: f64 = (0..5).map(|s| acc(EqTokenization::Digit, s)).sum::<f64>() / 5.0;
        assert!(dig < reg, "digit tokenization must hurt: {dig} vs {reg}");
    }

    #[test]
    fn strip_conversions_recovers_canonical() {
        let kb = DimUnitKb::shared();
        let base = generate(Source::Math23k, &GenConfig { count: 40, seed: 13 });
        let mut aug = Augmenter::new(&kb, 14);
        let mut checked = 0;
        for p in &base {
            if let Some(a) = aug.augment(p, dim_mwp::AugmentMethod::ContextDimension) {
                let stripped = strip_conversions(&a);
                assert_eq!(stripped, p.equation, "stripping must recover the base equation");
                checked += 1;
            }
        }
        assert!(checked > 10);
    }

    #[test]
    fn token_error_decays_with_training() {
        let mut g = EquationGenerator::new();
        let e0 = g.token_error();
        for p in &generate(Source::Math23k, &GenConfig { count: 200, seed: 15 }) {
            g.train_one(p);
        }
        assert!(g.token_error() < e0 / 1.5);
    }

    #[test]
    fn seeded_pairs_are_symmetric() {
        let mut g = EquationGenerator::new();
        g.seed_conversion("KiloGM", "GM", 1000.0);
        assert_eq!(g.normalizer[&("GM".into(), "KiloGM".into())], 0.001);
        assert_eq!(g.known_pairs(), 2);
    }
}
