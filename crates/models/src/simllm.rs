//! Knowledge-gap solvers standing in for the paper's baseline LLMs.
//!
//! A [`SimulatedLlm`] attempts every DimEval and MWP task *mechanically*
//! through its sampled [`KnowledgeView`]: it answers a comparable-analysis
//! item by actually comparing the dimension vectors it believes it knows,
//! converts units with the (possibly slipped) factors it believes, and
//! builds MWP answers step by step with a per-operation comprehension
//! gate. Accuracy therefore *emerges* from what the model knows, and the
//! characteristic behaviours the paper reports — abstention depressing F1,
//! order-of-magnitude conversion slips, collapse on Q-MWP — fall out of
//! the mechanism.

use crate::knowledge::KnowledgeView;
use crate::profile::CapabilityProfile;
use dimeval::{ChoiceItem, DimEvalSolver, ExtractedQuantity, ItemMeta, NUM_OPTIONS};
use dimkb::{DimUnitKb, UnitId};
use dimlink::{Annotator, LinkerConfig, UnitLinker};
use dim_mwp::{MwpProblem, MwpSolver, Prediction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A simulated baseline LLM.
pub struct SimulatedLlm {
    profile: CapabilityProfile,
    kb: Arc<DimUnitKb>,
    view: KnowledgeView,
    annotator: Annotator,
    rng: StdRng,
}

impl SimulatedLlm {
    /// Builds a simulated model from a profile (deterministic per seed).
    pub fn new(kb: Arc<DimUnitKb>, profile: CapabilityProfile, seed: u64) -> Self {
        let view = KnowledgeView::sample(&kb, &profile, seed);
        let annotator =
            Annotator::new(UnitLinker::new(kb.clone(), None, LinkerConfig::default()));
        SimulatedLlm { profile, kb, view, annotator, rng: StdRng::seed_from_u64(seed ^ 0xABCD) }
    }

    /// The profile driving this model.
    pub fn profile(&self) -> &CapabilityProfile {
        &self.profile
    }

    /// The knowledge view (for diagnostics and the tool wrapper).
    pub fn view(&self) -> &KnowledgeView {
        &self.view
    }

    /// The true SI factor of a unit (exposed for the tool wrapper, which
    /// answers through the engine rather than the degraded view).
    pub fn kb_unit_factor(&self, id: UnitId) -> f64 {
        self.kb.unit(id).conversion.factor
    }

    /// Solves an MWP under an explicit tool outcome (used by the wrapper).
    pub fn solve_with_tool(&mut self, problem: &MwpProblem, tool: ToolEffect) -> Prediction {
        solve_mwp(problem, &self.profile, &self.view, &self.kb, &mut self.rng, tool)
    }

    /// Uncertain fallback: abstain per the profile, else guess uniformly
    /// among the remaining plausible options.
    fn fallback(&mut self, plausible: &[usize]) -> Option<usize> {
        if self.rng.gen_bool(self.profile.abstention) {
            return None;
        }
        if plausible.is_empty() {
            return Some(self.rng.gen_range(0..NUM_OPTIONS));
        }
        Some(plausible[self.rng.gen_range(0..plausible.len())])
    }

    fn answer_kind_match(&mut self, item: &ChoiceItem, options: &[UnitId]) -> Option<usize> {
        // `item.answer` is used as the oracle for "is this the unit whose
        // kind matches" — the simulation shortcut for kind lookup.
        // The model checks each candidate's kind association it knows; a
        // candidate whose kind it knows is either confirmed or excluded.
        let mut plausible = Vec::new();
        for (i, &u) in options.iter().enumerate() {
            let k = self.view.unit(u);
            if k.known && k.kind {
                if i == item.answer {
                    return Some(i); // correctly recognizes the association
                }
                // Known kind that doesn't match the asked kind: excluded.
            } else {
                plausible.push(i);
            }
        }
        self.fallback(&plausible)
    }

    fn answer_comparable(
        &mut self,
        _item: &ChoiceItem,
        reference: UnitId,
        options: &[UnitId],
    ) -> Option<usize> {
        let ref_k = self.view.unit(reference);
        if !ref_k.dimension {
            let all: Vec<usize> = (0..options.len()).collect();
            return self.fallback(&all);
        }
        let mut plausible = Vec::new();
        for (i, &u) in options.iter().enumerate() {
            let k = self.view.unit(u);
            if k.dimension {
                if self.kb.unit(u).dim == self.kb.unit(reference).dim {
                    return Some(i);
                }
            } else {
                plausible.push(i);
            }
        }
        self.fallback(&plausible)
    }

    fn answer_dim_prediction(&mut self, item: &ChoiceItem, options: &[UnitId]) -> Option<usize> {
        // The model must infer the masked kind from context (kind knowledge
        // of the gold unit) and know the candidates' dimensions.
        let gold_unit = options[item.answer];
        let k = self.view.unit(gold_unit);
        if k.known && k.kind && k.dimension {
            return Some(item.answer);
        }
        // Partial elimination: exclude candidates whose dimension it knows
        // to be absurd for the context half the time.
        let mut plausible: Vec<usize> = Vec::new();
        for (i, &u) in options.iter().enumerate() {
            let ku = self.view.unit(u);
            if ku.dimension && i != item.answer && self.rng.gen_bool(0.5) {
                continue;
            }
            plausible.push(i);
        }
        self.fallback(&plausible)
    }

    fn answer_dim_arithmetic(
        &mut self,
        item: &ChoiceItem,
        expr: &[(UnitId, i8)],
        options: &[UnitId],
    ) -> Option<usize> {
        // Needs the dimension of every operand, the dimension of the gold
        // option, and a successful symbolic combination per step.
        let operands_known = expr.iter().all(|(u, _)| self.view.unit(*u).dimension);
        let gold_known = self.view.unit(options[item.answer]).dimension;
        let steps = expr.len() as i32;
        let combine_ok = self.rng.gen_bool(self.profile.arithmetic.powi(steps).max(1e-9));
        if operands_known && gold_known && combine_ok {
            return Some(item.answer);
        }
        let all: Vec<usize> = (0..options.len()).collect();
        self.fallback(&all)
    }

    fn answer_magnitude(&mut self, _item: &ChoiceItem, options: &[UnitId]) -> Option<usize> {
        // Compare believed SI factors. Two error sources: slipped factors
        // (order-of-magnitude errors) and fuzzy ordering of *close*
        // magnitudes — LLMs reliably rank km above mm but fumble km vs
        // mile. The fuzz is log-scale noise shrinking with arithmetic
        // skill.
        let fuzz = (1.0 - self.profile.arithmetic) * 1.1;
        let mut best: Option<(usize, f64)> = None;
        let mut any_unknown = false;
        for (i, &u) in options.iter().enumerate() {
            let k = self.view.unit(u);
            if !k.known {
                any_unknown = true;
                continue;
            }
            let noise = 10f64.powf(self.rng.gen_range(-fuzz..=fuzz));
            let believed = self.kb.unit(u).conversion.factor * k.factor_ratio * noise;
            if best.is_none_or(|(_, b)| believed > b) {
                best = Some((i, believed));
            }
        }
        match best {
            Some((i, _)) if !any_unknown => Some(i),
            Some((i, _)) => {
                // Unknown candidates remain: answer from what it knows, or
                // abstain per the profile.
                if self.rng.gen_bool(self.profile.abstention) {
                    None
                } else {
                    Some(i)
                }
            }
            None => self.fallback(&[]),
        }
    }

    fn answer_conversion(
        &mut self,
        _item: &ChoiceItem,
        from: UnitId,
        to: UnitId,
        factors: &[f64],
    ) -> Option<usize> {
        let (kf, kt) = (self.view.unit(from), self.view.unit(to));
        if !kf.known || !kt.known {
            let all: Vec<usize> = (0..factors.len()).collect();
            return self.fallback(&all);
        }
        let true_beta = self.kb.conversion_factor(from, to).ok()?;
        let believed = self.view.believed_factor(true_beta, from, to);
        // Choose the option closest in log-space to the believed factor.
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &f) in factors.iter().enumerate() {
            if f <= 0.0 || believed <= 0.0 {
                continue;
            }
            let d = (f.ln() - believed.ln()).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        Some(best)
    }
}

impl DimEvalSolver for SimulatedLlm {
    fn name(&self) -> String {
        self.profile.name.to_string()
    }

    fn answer(&mut self, item: &ChoiceItem) -> Option<usize> {
        match &item.meta {
            ItemMeta::KindMatch { options, .. } => {
                let options = options.clone();
                self.answer_kind_match(item, &options)
            }
            ItemMeta::Comparable { reference, options } => {
                let (r, o) = (*reference, options.clone());
                self.answer_comparable(item, r, &o)
            }
            ItemMeta::DimPrediction { options, .. } => {
                let o = options.clone();
                self.answer_dim_prediction(item, &o)
            }
            ItemMeta::DimArithmetic { expr, options } => {
                let (e, o) = (expr.clone(), options.clone());
                self.answer_dim_arithmetic(item, &e, &o)
            }
            ItemMeta::Magnitude { options } => {
                let o = options.clone();
                self.answer_magnitude(item, &o)
            }
            ItemMeta::Conversion { from, to, factors } => {
                let (f, t, fs) = (*from, *to, factors.clone());
                self.answer_conversion(item, f, t, &fs)
            }
        }
    }

    fn extract(&mut self, text: &str) -> Vec<ExtractedQuantity> {
        if self.profile.extraction == 0.0 {
            return Vec::new(); // no support for the task's language
        }
        // The model spots a quantity when its span-identification fires AND
        // it recognizes the unit; unknown units are silently skipped (the
        // paper's "models disregard units they don't understand").
        let mut out = Vec::new();
        for m in self.annotator.annotate(text) {
            let unit_known = self.view.unit(m.best_unit()).known;
            let spotted = self.rng.gen_bool(self.profile.extraction.clamp(0.0, 1.0));
            if unit_known && spotted {
                out.push(ExtractedQuantity { value: m.value, unit_surface: m.unit_surface });
            } else if !unit_known && self.rng.gen_bool(0.15) {
                // Occasionally extracts the value with a garbled unit.
                out.push(ExtractedQuantity {
                    value: m.value,
                    unit_surface: m.unit_surface.chars().take(1).collect(),
                });
            }
        }
        out
    }
}

impl MwpSolver for SimulatedLlm {
    fn name(&self) -> String {
        self.profile.name.to_string()
    }

    fn solve(&mut self, problem: &MwpProblem) -> Prediction {
        solve_mwp(problem, &self.profile, &self.view, &self.kb, &mut self.rng, ToolEffect::NotUsed)
    }
}

/// The outcome of attempting to use an external tool on one problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolEffect {
    /// No tool available / not invoked.
    NotUsed,
    /// Tool invoked and interfaced correctly: arithmetic burden drops and
    /// conversions are exact.
    Success,
    /// Tool invoked but the interface mangled the exchange: the model is
    /// left *more* confused than without the tool.
    Confusion,
}

/// The shared MWP mechanism (also used by the tool-augmented wrapper).
///
/// 1. *Skeleton*: the model translates text into the right equation shape
///    with per-operation probability `comprehension` (conversion steps are
///    not part of the base skeleton).
/// 2. *Conversions*: each unit-conversion step succeeds only if the model
///    knows the unit exactly; an unknown unit means the conversion is
///    silently skipped, a slipped factor scales the answer wrongly.
/// 3. With a tool (`tool_ok`), the arithmetic burden drops (one fewer
///    effective step) and conversions are delegated to the tool.
pub fn solve_mwp(
    problem: &MwpProblem,
    profile: &CapabilityProfile,
    view: &KnowledgeView,
    kb: &DimUnitKb,
    rng: &mut StdRng,
    tool: ToolEffect,
) -> Prediction {
    let total_ops = problem.op_count();
    let conv_ops = problem.conversions.len()
        + usize::from((problem.answer_conversion - 1.0).abs() > 1e-12);
    let base_ops = total_ops.saturating_sub(conv_ops) as i32;
    let effective_ops = match tool {
        ToolEffect::Success => (base_ops - 1).max(0),
        ToolEffect::NotUsed => base_ops,
        // A failed tool exchange costs comprehension instead of saving it.
        ToolEffect::Confusion => base_ops + 1,
    };
    let tool_ok = tool == ToolEffect::Success;
    let p_skeleton = profile.comprehension.powi(1 + effective_ops).clamp(1e-9, 1.0);
    if !rng.gen_bool(p_skeleton) {
        // Wrong structure: produce a plausible-but-wrong answer.
        let gold = problem.answer();
        let noise = [0.5, 2.0, 1.5, 0.1][rng.gen_range(0..4usize)];
        return Prediction::Answer(gold * noise + 1.0);
    }
    let mut answer = problem.answer();
    let resolve = |code: &Option<String>| -> Option<UnitId> {
        code.as_ref().and_then(|c| kb.unit_by_code(c)).map(|u| u.id)
    };
    // Even a known conversion must be *noticed and applied* mid-solution —
    // the step LLMs routinely fumble (Fig. 1). A working tool takes over
    // the arithmetic but the model must still hand it the right units.
    let apply_p = if tool_ok {
        0.55 + 0.45 * profile.tool_use
    } else {
        0.45 + 0.55 * profile.arithmetic
    };
    for (qi, ratio) in &problem.conversions {
        let Some(uid) = resolve(&problem.quantities[*qi].unit_code) else { continue };
        let k = view.unit(uid);
        if !k.known {
            // Doesn't recognize the unit: treats the written value as if it
            // were in the expected unit, i.e. skips the conversion.
            answer /= ratio;
        } else if !rng.gen_bool(apply_p.clamp(0.0, 1.0)) {
            // Knows the unit but fails to carry out the normalization step.
            answer /= ratio;
        } else if k.factor_ratio != 1.0 && !tool_ok {
            answer *= k.factor_ratio;
        }
    }
    if (problem.answer_conversion - 1.0).abs() > 1e-12 {
        let Some(uid) = resolve(&problem.answer_unit_code) else {
            return Prediction::Answer(answer);
        };
        let k = view.unit(uid);
        // Unknown unit and fumbled application look the same from outside:
        // the conversion silently doesn't happen.
        if !k.known || !rng.gen_bool(apply_p.clamp(0.0, 1.0)) {
            answer /= problem.answer_conversion;
        } else if k.factor_ratio != 1.0 && !tool_ok {
            answer *= k.factor_ratio;
        }
    }
    Prediction::Answer(answer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BERTGEN, CHATGLM2_6B, GPT35_TURBO, GPT4};
    use dim_mwp::{accuracy, generate, Augmenter, GenConfig, Source};
    use dimeval::{evaluate, DimEval, DimEvalConfig, TaskKind};

    fn bench() -> DimEval {
        let kb = DimUnitKb::shared();
        DimEval::build(
            &kb,
            &DimEvalConfig { per_task: 30, extraction_items: 30, ..Default::default() },
        )
    }

    #[test]
    fn gpt4_beats_chatglm_on_dimeval() {
        let kb = DimUnitKb::shared();
        let e = bench();
        let mut strong = SimulatedLlm::new(kb.clone(), GPT4, 1);
        let mut weak = SimulatedLlm::new(kb, CHATGLM2_6B, 1);
        let rs = evaluate(&mut strong, &e);
        let rw = evaluate(&mut weak, &e);
        let mean = |r: &dimeval::EvalReport| {
            r.choice.values().map(|s| s.precision()).sum::<f64>() / r.choice.len() as f64
        };
        assert!(
            mean(&rs) > mean(&rw) + 0.08,
            "GPT-4 {} vs ChatGLM {}",
            mean(&rs),
            mean(&rw)
        );
    }

    #[test]
    fn dimension_arithmetic_is_hardest_for_llms() {
        // Table VII shape: dimension arithmetic precision collapses
        // relative to extraction-adjacent tasks.
        let kb = DimUnitKb::shared();
        let e = bench();
        let mut m = SimulatedLlm::new(kb, GPT4, 2);
        let r = evaluate(&mut m, &e);
        let arith = r.choice[&TaskKind::DimensionArithmetic].precision();
        let kind = r.choice[&TaskKind::QuantityKindMatch].precision();
        assert!(arith < kind, "arith {arith} should trail kind-match {kind}");
    }

    #[test]
    fn abstention_separates_f1_from_precision() {
        let kb = DimUnitKb::shared();
        let e = bench();
        let mut m = SimulatedLlm::new(kb, GPT35_TURBO, 3);
        let r = evaluate(&mut m, &e);
        let p: f64 = r.choice.values().map(|s| s.precision()).sum::<f64>() / 6.0;
        let f: f64 = r.choice.values().map(|s| s.f1()).sum::<f64>() / 6.0;
        assert!(f < p, "abstention must depress F1: P={p} F1={f}");
    }

    #[test]
    fn q_mwp_collapses_for_all_baselines() {
        let kb = DimUnitKb::shared();
        let n = generate(Source::Math23k, &GenConfig { count: 150, seed: 11 });
        let q = Augmenter::new(&kb, 11).to_qmwp(&n);
        for (profile, seed) in [(GPT4, 5u64), (GPT35_TURBO, 6), (BERTGEN, 7)] {
            let mut m = SimulatedLlm::new(kb.clone(), profile, seed);
            let acc_n = accuracy(&mut m, &n);
            let mut m = SimulatedLlm::new(kb.clone(), profile, seed);
            let acc_q = accuracy(&mut m, &q);
            assert!(
                acc_q < acc_n,
                "{}: Q-MWP {acc_q} must trail N-MWP {acc_n}",
                profile.name
            );
        }
    }

    #[test]
    fn bertgen_collapse_is_catastrophic() {
        // Table IX: BertGen 73.78 → 14.22. The supervised N-MWP model has
        // no unit knowledge, so the relative drop exceeds GPT-4's.
        let kb = DimUnitKb::shared();
        let n = generate(Source::Math23k, &GenConfig { count: 150, seed: 13 });
        let q = Augmenter::new(&kb, 13).to_qmwp(&n);
        let drop = |p: CapabilityProfile, seed| {
            let mut a = SimulatedLlm::new(kb.clone(), p, seed);
            let n_acc = accuracy(&mut a, &n);
            let mut b = SimulatedLlm::new(kb.clone(), p, seed);
            let q_acc = accuracy(&mut b, &q);
            q_acc / n_acc.max(1e-9)
        };
        assert!(drop(BERTGEN, 1) < drop(GPT4, 1), "BertGen must lose relatively more");
    }

    #[test]
    fn extraction_returns_plausible_quantities() {
        // Extraction is stochastic per mention, so aggregate over seeds
        // instead of betting on a single RNG stream.
        let kb = DimUnitKb::shared();
        let out: Vec<_> = (0..5)
            .flat_map(|seed| {
                let mut m = SimulatedLlm::new(kb.clone(), GPT4, seed);
                m.extract("LeBron James's height is 2.06 meters and his weight is 113 kg.")
            })
            .collect();
        assert!(!out.is_empty());
        for q in &out {
            assert!(q.value > 0.0);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let kb = DimUnitKb::shared();
        let e = bench();
        let r1 = evaluate(&mut SimulatedLlm::new(kb.clone(), GPT4, 42), &e);
        let r2 = evaluate(&mut SimulatedLlm::new(kb, GPT4, 42), &e);
        for task in TaskKind::CHOICE {
            assert_eq!(r1.choice[&task].correct, r2.choice[&task].correct);
        }
    }
}
