//! Degraded knowledge views: what a simulated model "knows" about units.
//!
//! A [`KnowledgeView`] is a deterministic, frequency-weighted sample of
//! DimUnitKB: common units are known even to weak models; rare units
//! (decimetre, poundal, gill/h) are only known to strong ones. Conversion
//! factors may be noisily known — off by one or two orders of magnitude,
//! the characteristic LLM unit-conversion failure the paper's Fig. 1 shows.

use crate::profile::CapabilityProfile;
use dimkb::{DimUnitKb, UnitId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// What one model knows about one unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitKnowledge {
    /// Recognizes the unit at all.
    pub known: bool,
    /// Knows its dimension vector (implies `known`).
    pub dimension: bool,
    /// Knows its quantity-kind association (implies `known`).
    pub kind: bool,
    /// The model's *believed* conversion factor divided by the true one
    /// (1.0 = exact; 10.0 = an order-of-magnitude slip).
    pub factor_ratio: f64,
}

const UNKNOWN: UnitKnowledge =
    UnitKnowledge { known: false, dimension: false, kind: false, factor_ratio: 1.0 };

/// A per-model sampled view over the KB.
#[derive(Debug, Clone)]
pub struct KnowledgeView {
    per_unit: HashMap<UnitId, UnitKnowledge>,
}

impl KnowledgeView {
    /// Samples a view for a profile (deterministic in `seed`).
    pub fn sample(kb: &DimUnitKb, profile: &CapabilityProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(profile.name) ^ fxhash(profile.params));
        let mut per_unit = HashMap::with_capacity(kb.units().len());
        for unit in kb.units() {
            // Frequency-weighted recognition: even weak models know
            // "metre"; only strong ones know "gill per hour".
            let p_known = (profile.unit_knowledge * (0.35 + 0.95 * unit.frequency)).min(0.995);
            let known = rng.gen_bool(p_known);
            if !known {
                per_unit.insert(unit.id, UNKNOWN);
                continue;
            }
            let dimension =
                rng.gen_bool((profile.dimension_knowledge * (0.5 + 0.8 * unit.frequency)).min(0.99));
            let kind =
                rng.gen_bool((profile.kind_knowledge * (0.5 + 0.8 * unit.frequency)).min(0.99));
            let exact =
                rng.gen_bool((profile.conversion_accuracy * (0.45 + 0.85 * unit.frequency)).min(0.99));
            let factor_ratio = if exact {
                1.0
            } else {
                // Characteristic failure: off by 1-2 orders of magnitude,
                // in either direction.
                let slip = *[10.0, 100.0, 0.1, 0.01, 1000.0]
                    .get(rng.gen_range(0..5usize))
                    .expect("in range");
                slip
            };
            per_unit.insert(unit.id, UnitKnowledge { known: true, dimension, kind, factor_ratio });
        }
        KnowledgeView { per_unit }
    }

    /// Knowledge about one unit.
    pub fn unit(&self, id: UnitId) -> UnitKnowledge {
        self.per_unit.get(&id).copied().unwrap_or(UNKNOWN)
    }

    /// The model's believed conversion factor from `from` to `to`, given
    /// the true factor: true × ratio(from) / ratio(to).
    pub fn believed_factor(&self, true_factor: f64, from: UnitId, to: UnitId) -> f64 {
        true_factor * self.unit(from).factor_ratio / self.unit(to).factor_ratio
    }

    /// Fraction of units known (for diagnostics).
    pub fn coverage(&self) -> f64 {
        if self.per_unit.is_empty() {
            return 0.0;
        }
        self.per_unit.values().filter(|k| k.known).count() as f64 / self.per_unit.len() as f64
    }
}

fn fxhash(s: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{CHATGLM2_6B, GPT4};

    #[test]
    fn stronger_models_know_more() {
        let kb = DimUnitKb::shared();
        let strong = KnowledgeView::sample(&kb, &GPT4, 1);
        let weak = KnowledgeView::sample(&kb, &CHATGLM2_6B, 1);
        assert!(strong.coverage() > weak.coverage() + 0.1);
    }

    #[test]
    fn common_units_are_known_even_by_weak_models() {
        let kb = DimUnitKb::shared();
        let weak = KnowledgeView::sample(&kb, &CHATGLM2_6B, 2);
        let metre = kb.unit_by_code("M").unwrap().id;
        // Check over several seeds: metre should almost always be known.
        let mut known = 0;
        for seed in 0..20 {
            if KnowledgeView::sample(&kb, &CHATGLM2_6B, seed).unit(metre).known {
                known += 1;
            }
        }
        assert!(known >= 10, "metre known in only {known}/20 samples");
        drop(weak);
    }

    #[test]
    fn rare_units_separate_strong_from_weak() {
        let kb = DimUnitKb::shared();
        let poundal = kb.unit_by_code("PDL").unwrap().id;
        let mut strong_known = 0;
        let mut weak_known = 0;
        for seed in 0..40 {
            if KnowledgeView::sample(&kb, &GPT4, seed).unit(poundal).known {
                strong_known += 1;
            }
            if KnowledgeView::sample(&kb, &CHATGLM2_6B, seed).unit(poundal).known {
                weak_known += 1;
            }
        }
        assert!(strong_known > weak_known, "{strong_known} vs {weak_known}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let kb = DimUnitKb::shared();
        let a = KnowledgeView::sample(&kb, &GPT4, 7);
        let b = KnowledgeView::sample(&kb, &GPT4, 7);
        let id = kb.unit_by_code("KiloM").unwrap().id;
        assert_eq!(a.unit(id), b.unit(id));
        assert_eq!(a.coverage(), b.coverage());
    }

    #[test]
    fn believed_factor_composes_slips() {
        let kb = DimUnitKb::shared();
        let view = KnowledgeView::sample(&kb, &CHATGLM2_6B, 3);
        let m = kb.unit_by_code("M").unwrap().id;
        let km = kb.unit_by_code("KiloM").unwrap().id;
        let believed = view.believed_factor(1000.0, km, m);
        let expected = 1000.0 * view.unit(km).factor_ratio / view.unit(m).factor_ratio;
        assert_eq!(believed, expected);
    }
}
