//! Capability profiles of the simulated baseline models.
//!
//! The paper evaluates closed APIs (GPT-4, PaLM-2, …) that are gated here.
//! Each baseline is replaced by a *knowledge-gap solver* (`simllm`) that
//! attempts every task mechanically through a degraded view of DimUnitKB;
//! the profile parameterizes how much the model "knows". Values are
//! calibrated so the orderings and gaps of Tables VII and IX reproduce in
//! shape; accuracy itself **emerges from the mechanism**, not from lookup
//! tables of the paper's numbers.

/// How much a simulated model knows and how it behaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapabilityProfile {
    /// Display name.
    pub name: &'static str,
    /// Parameter-count column of Table VII (`-` for closed models).
    pub params: &'static str,
    /// Coverage of unit knowledge (frequency-weighted).
    pub unit_knowledge: f64,
    /// Probability of knowing a known unit's dimension vector.
    pub dimension_knowledge: f64,
    /// Probability of knowing a known unit's quantity-kind association.
    pub kind_knowledge: f64,
    /// Probability a known unit's conversion factor is exact (otherwise it
    /// is off by one or two orders of magnitude).
    pub conversion_accuracy: f64,
    /// Reliability of multi-step symbolic manipulation (dimension
    /// arithmetic, long equations); applied per step.
    pub arithmetic: f64,
    /// Quantity-span identification ability (extraction).
    pub extraction: f64,
    /// Per-operation success at translating word problems into equations.
    pub comprehension: f64,
    /// Probability of abstaining rather than guessing when uncertain.
    pub abstention: f64,
    /// Quality of tool interfacing (0 = never uses tools correctly).
    pub tool_use: f64,
}

/// GPT-4.
pub const GPT4: CapabilityProfile = CapabilityProfile {
    name: "GPT-4",
    params: "-",
    unit_knowledge: 0.92,
    dimension_knowledge: 0.55,
    kind_knowledge: 0.75,
    conversion_accuracy: 0.72,
    arithmetic: 0.60,
    extraction: 0.80,
    comprehension: 0.93,
    abstention: 0.45,
    tool_use: 0.80,
};

/// GPT-3.5-Turbo.
pub const GPT35_TURBO: CapabilityProfile = CapabilityProfile {
    name: "GPT-3.5-Turbo",
    params: "-",
    unit_knowledge: 0.85,
    dimension_knowledge: 0.35,
    kind_knowledge: 0.52,
    conversion_accuracy: 0.48,
    arithmetic: 0.35,
    extraction: 0.78,
    comprehension: 0.80,
    abstention: 0.60,
    tool_use: 0.55,
};

/// InstructGPT (175B).
pub const INSTRUCT_GPT: CapabilityProfile = CapabilityProfile {
    name: "InstructGPT",
    params: "175B",
    unit_knowledge: 0.86,
    dimension_knowledge: 0.42,
    kind_knowledge: 0.55,
    conversion_accuracy: 0.62,
    arithmetic: 0.38,
    extraction: 0.82,
    comprehension: 0.72,
    abstention: 0.35,
    tool_use: 0.0,
};

/// PaLM-2 (540B).
pub const PALM2: CapabilityProfile = CapabilityProfile {
    name: "PaLM-2",
    params: "540B",
    unit_knowledge: 0.88,
    dimension_knowledge: 0.48,
    kind_knowledge: 0.72,
    conversion_accuracy: 0.60,
    arithmetic: 0.45,
    extraction: 0.0, // no Chinese support — extraction not evaluated
    comprehension: 0.80,
    abstention: 0.40,
    tool_use: 0.0,
};

/// LLaMA-2 70B.
pub const LLAMA2_70B: CapabilityProfile = CapabilityProfile {
    name: "LLaMa-2",
    params: "70B",
    unit_knowledge: 0.78,
    dimension_knowledge: 0.40,
    kind_knowledge: 0.38,
    conversion_accuracy: 0.48,
    arithmetic: 0.32,
    extraction: 0.68,
    comprehension: 0.62,
    abstention: 0.20,
    tool_use: 0.0,
};

/// LLaMA-2 13B.
pub const LLAMA2_13B: CapabilityProfile = CapabilityProfile {
    name: "LLaMa-2",
    params: "13B",
    unit_knowledge: 0.66,
    dimension_knowledge: 0.34,
    kind_knowledge: 0.42,
    conversion_accuracy: 0.32,
    arithmetic: 0.28,
    extraction: 0.58,
    comprehension: 0.50,
    abstention: 0.25,
    tool_use: 0.0,
};

/// OpenChat 13B.
pub const OPENCHAT_13B: CapabilityProfile = CapabilityProfile {
    name: "OpenChat",
    params: "13B",
    unit_knowledge: 0.60,
    dimension_knowledge: 0.28,
    kind_knowledge: 0.38,
    conversion_accuracy: 0.28,
    arithmetic: 0.30,
    extraction: 0.38,
    comprehension: 0.46,
    abstention: 0.25,
    tool_use: 0.0,
};

/// Flan-T5 11B.
pub const FLAN_T5_11B: CapabilityProfile = CapabilityProfile {
    name: "Flan-T5",
    params: "11B",
    unit_knowledge: 0.62,
    dimension_knowledge: 0.38,
    kind_knowledge: 0.40,
    conversion_accuracy: 0.30,
    arithmetic: 0.22,
    extraction: 0.0, // no Chinese support
    comprehension: 0.40,
    abstention: 0.18,
    tool_use: 0.0,
};

/// T0++ 11B.
pub const T0PP_11B: CapabilityProfile = CapabilityProfile {
    name: "T0++",
    params: "11B",
    unit_knowledge: 0.52,
    dimension_knowledge: 0.33,
    kind_knowledge: 0.20,
    conversion_accuracy: 0.14,
    arithmetic: 0.10,
    extraction: 0.0, // no Chinese support
    comprehension: 0.30,
    abstention: 0.15,
    tool_use: 0.0,
};

/// ChatGLM-2 6B.
pub const CHATGLM2_6B: CapabilityProfile = CapabilityProfile {
    name: "ChatGLM-2",
    params: "6B",
    unit_knowledge: 0.58,
    dimension_knowledge: 0.26,
    kind_knowledge: 0.42,
    conversion_accuracy: 0.26,
    arithmetic: 0.22,
    extraction: 0.36,
    comprehension: 0.48,
    abstention: 0.22,
    tool_use: 0.0,
};

/// BertGen, supervised-fine-tuned on N-MWP only: strong N-MWP equation
/// generation, almost no unit knowledge.
pub const BERTGEN: CapabilityProfile = CapabilityProfile {
    name: "BertGen",
    params: "0.3B",
    unit_knowledge: 0.30,
    dimension_knowledge: 0.08,
    kind_knowledge: 0.15,
    conversion_accuracy: 0.10,
    arithmetic: 0.85,
    extraction: 0.30,
    comprehension: 0.91,
    abstention: 0.0,
    tool_use: 0.0,
};

/// LLaMA-7B supervised-fine-tuned on N-MWP only.
pub const LLAMA_NMWP: CapabilityProfile = CapabilityProfile {
    name: "LLaMa",
    params: "7B",
    unit_knowledge: 0.55,
    dimension_knowledge: 0.18,
    kind_knowledge: 0.28,
    conversion_accuracy: 0.28,
    arithmetic: 0.75,
    extraction: 0.50,
    comprehension: 0.92,
    abstention: 0.05,
    tool_use: 0.0,
};

/// The Table VII zero-shot baseline roster in paper order.
pub const TABLE7_BASELINES: &[CapabilityProfile] = &[
    GPT4,
    GPT35_TURBO,
    INSTRUCT_GPT,
    PALM2,
    LLAMA2_70B,
    LLAMA2_13B,
    OPENCHAT_13B,
    FLAN_T5_11B,
    T0PP_11B,
    CHATGLM2_6B,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_are_valid() {
        for p in TABLE7_BASELINES.iter().chain([&BERTGEN, &LLAMA_NMWP]) {
            for v in [
                p.unit_knowledge,
                p.dimension_knowledge,
                p.kind_knowledge,
                p.conversion_accuracy,
                p.arithmetic,
                p.extraction,
                p.comprehension,
                p.abstention,
                p.tool_use,
            ] {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", p.name);
            }
        }
    }

    #[test]
    fn gpt4_dominates_gpt35() {
        const { assert!(GPT4.unit_knowledge > GPT35_TURBO.unit_knowledge) };
        const { assert!(GPT4.arithmetic > GPT35_TURBO.arithmetic) };
        const { assert!(GPT4.comprehension > GPT35_TURBO.comprehension) };
    }

    #[test]
    fn model_scale_orders_unit_knowledge() {
        const { assert!(LLAMA2_70B.unit_knowledge > LLAMA2_13B.unit_knowledge) };
        const { assert!(LLAMA2_13B.unit_knowledge > CHATGLM2_6B.unit_knowledge) };
    }

    #[test]
    fn supervised_models_trade_knowledge_for_comprehension() {
        const { assert!(BERTGEN.comprehension > GPT35_TURBO.comprehension) };
        const { assert!(BERTGEN.unit_knowledge < GPT35_TURBO.unit_knowledge) };
    }
}
