//! `dim-obs`: a zero-dependency structured observability layer.
//!
//! The workspace's determinism contract says every paper-facing byte is a
//! pure function of the experiment configuration — which leaves no room for
//! timing output on stdout, and no appetite for a metrics dependency. This
//! crate closes the gap with three primitives that live entirely *outside*
//! the results path:
//!
//! * [`Histogram`] — log-bucketed latency (or any `u64`) distribution with
//!   exact count/sum/min/max and bucketed p50/p90/p99. [`Histogram::span`]
//!   returns a scoped [`Span`] guard that records elapsed nanoseconds on
//!   drop, so instrumenting a stage is one line.
//! * [`Counter`] — a monotonic, saturating `u64` (units linked, cache hits,
//!   sentences filtered, items fanned out per worker).
//! * [`Gauge`] — a last-value-wins `u64` (current thread width, memo size).
//!
//! All metrics are `static`s declared at their call site and register
//! themselves in a global registry on first touch. The whole layer is
//! disabled by default: every record path starts with one relaxed atomic
//! load and returns immediately, so uninstrumented runs pay a branch, not a
//! syscall — and the registry stays empty, which a test pins.
//!
//! [`snapshot`] freezes the registry into a [`Snapshot`] that renders as a
//! human table ([`Snapshot::render_table`], intended for stderr so stdout
//! stays byte-identical) or machine-readable JSON ([`Snapshot::to_json`],
//! the `obs_report.json` schema — hand-rolled here precisely so this crate
//! depends on nothing).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ===================== global enable switch =====================

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is recording currently enabled? One relaxed load — the cost every
/// instrumented call site pays when observability is off.
#[inline]
pub fn enabled() -> bool {
    // No data is published under this flag: record paths synchronize via
    // the registry mutex and per-metric atomics, so the gate itself needs
    // no ordering.
    ENABLED.load(Ordering::Relaxed) // lint:allow(relaxed_ordering, pure on/off gate; registry handoff synchronizes via the REGISTRY mutex)
}

/// Turns recording on (idempotent). Metrics register lazily afterwards.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off. Already-registered metrics keep their values.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

// ===================== registry =====================

struct RegistryInner {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
}

static REGISTRY: Mutex<RegistryInner> =
    Mutex::new(RegistryInner { counters: Vec::new(), gauges: Vec::new(), histograms: Vec::new() });

/// Zeroes every registered metric and empties the registry (metrics
/// re-register on their next recorded value). Test isolation helper; the
/// bench binaries never need it because each process reports once.
pub fn reset() {
    let mut r = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for c in r.counters.drain(..) {
        c.value.store(0, Ordering::SeqCst);
        c.registered.store(false, Ordering::SeqCst);
    }
    for g in r.gauges.drain(..) {
        g.value.store(0, Ordering::SeqCst);
        g.registered.store(false, Ordering::SeqCst);
    }
    for h in r.histograms.drain(..) {
        h.count.store(0, Ordering::SeqCst);
        h.sum.store(0, Ordering::SeqCst);
        h.min.store(u64::MAX, Ordering::SeqCst);
        h.max.store(0, Ordering::SeqCst);
        for b in &h.buckets {
            b.store(0, Ordering::SeqCst);
        }
        h.registered.store(false, Ordering::SeqCst);
    }
}

// ===================== counter =====================

/// A monotonic counter. Additions saturate at `u64::MAX` instead of
/// wrapping, so a runaway increment can never masquerade as a small value.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A counter named `name` (const: declare as `static`).
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Adds `n` (saturating). No-op while recording is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() || n == 0 {
            return;
        }
        self.register();
        let mut cur = self.value.load(Ordering::Relaxed); // lint:allow(relaxed_ordering, single-cell CAS loop; only the value matters)
        loop {
            let next = cur.saturating_add(n);
            match self.value.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) // lint:allow(relaxed_ordering, single-cell CAS loop; only the value matters)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // lint:allow(relaxed_ordering, monotonic value read; no ordering dependency)
    }

    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed) // lint:allow(relaxed_ordering, fast-path pre-check; the SeqCst swap below is authoritative)
            && !self.registered.swap(true, Ordering::SeqCst)
        {
            REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner).counters.push(self);
        }
    }
}

// ===================== gauge =====================

/// A last-value-wins gauge.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A gauge named `name` (const: declare as `static`).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Sets the value. No-op while recording is disabled.
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Ordering::Relaxed) // lint:allow(relaxed_ordering, fast-path pre-check; the SeqCst swap below is authoritative)
            && !self.registered.swap(true, Ordering::SeqCst)
        {
            REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner).gauges.push(self);
        }
        self.value.store(v, Ordering::Relaxed); // lint:allow(relaxed_ordering, last-value-wins cell; only the value matters)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // lint:allow(relaxed_ordering, last-value-wins cell; only the value matters)
    }
}

// ===================== histogram =====================

/// Values below this are their own exact bucket.
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per power of two above [`LINEAR_MAX`].
const SUB: usize = 16;
/// Powers of two covered above [`LINEAR_MAX`] (2^4 … 2^63).
const OCTAVES: usize = 60;
/// Total bucket count.
const BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUB;

/// Bucket index of a value: exact below [`LINEAR_MAX`], then 16 log-spaced
/// sub-buckets per octave (≤ ~3% relative quantization error at the bucket
/// midpoint).
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let log2 = 63 - v.leading_zeros() as usize; // >= 4
    let octave = log2 - 4;
    let sub = ((v >> (log2 - 4)) & 0xF) as usize;
    (LINEAR_MAX as usize + octave * SUB + sub).min(BUCKETS - 1)
}

/// Midpoint of a bucket (exact for the linear range).
fn bucket_mid(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let octave = (idx - LINEAR_MAX as usize) / SUB;
    let sub = ((idx - LINEAR_MAX as usize) % SUB) as u64;
    let lo = (LINEAR_MAX + sub) << octave;
    lo + (1u64 << octave) / 2
}

/// A fixed-memory log-bucketed distribution. Built for span latencies in
/// nanoseconds, but any `u64` works — set `unit` accordingly.
pub struct Histogram {
    name: &'static str,
    unit: &'static str,
    registered: AtomicBool,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// A nanosecond-latency histogram named `name` (const: declare as
    /// `static`).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram::with_unit(name, "ns")
    }

    /// A histogram over an arbitrary unit (e.g. `"pct"`, `"items"`).
    pub const fn with_unit(name: &'static str, unit: &'static str) -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            unit,
            registered: AtomicBool::new(false),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
        }
    }

    /// Records one value. No-op while recording is disabled.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Ordering::Relaxed) // lint:allow(relaxed_ordering, fast-path pre-check; the SeqCst swap below is authoritative)
            && !self.registered.swap(true, Ordering::SeqCst)
        {
            REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner).histograms.push(self);
        }
        // Independent stat cells; a snapshot may observe a torn cross-cell
        // view (count updated, sum not yet), which the quantile clamp and
        // the "stats are approximate while recording" contract absorb.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed); // lint:allow(relaxed_ordering, independent stat cell; torn cross-cell views are in-contract)
        self.count.fetch_add(1, Ordering::Relaxed); // lint:allow(relaxed_ordering, independent stat cell; torn cross-cell views are in-contract)
        self.sum.fetch_add(v, Ordering::Relaxed); // lint:allow(relaxed_ordering, independent stat cell; torn cross-cell views are in-contract)
        self.min.fetch_min(v, Ordering::Relaxed); // lint:allow(relaxed_ordering, independent stat cell; torn cross-cell views are in-contract)
        self.max.fetch_max(v, Ordering::Relaxed); // lint:allow(relaxed_ordering, independent stat cell; torn cross-cell views are in-contract)
    }

    /// Starts a scoped timing span: elapsed nanoseconds are recorded into
    /// this histogram when the returned guard drops. When recording is
    /// disabled the guard is inert and no clock is read.
    #[must_use = "a span records on drop; binding it to _ drops immediately"]
    pub fn span(&'static self) -> Span {
        Span { hist: self, start: if enabled() { Some(Instant::now()) } else { None } } // lint:allow(nondeterministic, span timing is measurement-only; reports render to stderr/obs_report.json, never stdout goldens)
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // lint:allow(relaxed_ordering, stat value read; no ordering dependency)
    }

    /// The `q`-quantile (`0.0..=1.0`) from bucket midpoints; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        // Bucket midpoints approximate, so clamp to the exact extremes —
        // a quantile outside [min, max] is never the right answer.
        let lo = self.min.load(Ordering::Relaxed); // lint:allow(relaxed_ordering, stat value read; no ordering dependency)
        let hi = self.max.load(Ordering::Relaxed); // lint:allow(relaxed_ordering, stat value read; no ordering dependency)
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed); // lint:allow(relaxed_ordering, stat value read; no ordering dependency)
            if seen >= rank {
                return bucket_mid(idx).clamp(lo, hi);
            }
        }
        hi
    }

    fn stats(&self) -> HistogramStats {
        let count = self.count();
        HistogramStats {
            name: self.name.to_string(),
            unit: self.unit,
            count,
            sum: self.sum.load(Ordering::Relaxed), // lint:allow(relaxed_ordering, stat value read; no ordering dependency)
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) }, // lint:allow(relaxed_ordering, stat value read; no ordering dependency)
            max: self.max.load(Ordering::Relaxed), // lint:allow(relaxed_ordering, stat value read; no ordering dependency)
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Scoped timing guard returned by [`Histogram::span`].
pub struct Span {
    hist: &'static Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

// ===================== snapshot + rendering =====================

/// Frozen statistics of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStats {
    /// Metric name.
    pub name: String,
    /// Unit label (`"ns"` for spans).
    pub unit: &'static str,
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Bucketed median.
    pub p50: u64,
    /// Bucketed 90th percentile.
    pub p90: u64,
    /// Bucketed 99th percentile.
    pub p99: u64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, u64)>,
    /// Histogram statistics (timing spans and value distributions).
    pub histograms: Vec<HistogramStats>,
}

/// Freezes the current registry contents.
pub fn snapshot() -> Snapshot {
    let r = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut counters: Vec<(String, u64)> =
        r.counters.iter().map(|c| (c.name.to_string(), c.get())).collect();
    let mut gauges: Vec<(String, u64)> =
        r.gauges.iter().map(|g| (g.name.to_string(), g.get())).collect();
    let mut histograms: Vec<HistogramStats> = r.histograms.iter().map(|h| h.stats()).collect();
    counters.sort();
    gauges.sort();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    Snapshot { counters, gauges, histograms }
}

impl Snapshot {
    /// Stats for a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStats> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Machine-readable JSON (the `obs_report.json` schema): top-level
    /// `counters`, `gauges` and `histograms` objects keyed by metric name,
    /// keys in sorted order so reports diff cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, name);
            out.push_str(&format!(": {v}"));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, name);
            out.push_str(&format!(": {v}"));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_str(&mut out, &h.name);
            out.push_str(&format!(
                ": {{\"unit\": \"{}\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.unit, h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
            ));
        }
        out.push_str(if self.histograms.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Human-readable table. Callers print this to **stderr**: stdout is
    /// reserved for byte-identical experiment output.
    pub fn render_table(&self) -> String {
        fn fmt_qty(v: u64, unit: &str) -> String {
            if unit != "ns" {
                return format!("{v} {unit}");
            }
            match v {
                0..=9_999 => format!("{v} ns"),
                10_000..=9_999_999 => format!("{:.1} µs", v as f64 / 1e3),
                10_000_000..=9_999_999_999 => format!("{:.1} ms", v as f64 / 1e6),
                _ => format!("{:.2} s", v as f64 / 1e9),
            }
        }
        let mut out = String::from("== observability report ==\n");
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>8} {:>11} {:>11} {:>11} {:>11} {:>11}\n",
                "span/histogram", "count", "p50", "p90", "p99", "max", "total"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "{:<28} {:>8} {:>11} {:>11} {:>11} {:>11} {:>11}\n",
                    h.name,
                    h.count,
                    fmt_qty(h.p50, h.unit),
                    fmt_qty(h.p90, h.unit),
                    fmt_qty(h.p99, h.unit),
                    fmt_qty(h.max, h.unit),
                    fmt_qty(h.sum, h.unit),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<42} {:>14}\n", "counter", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<42} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("{:<42} {:>14}\n", "gauge", "value"));
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<42} {v:>14}\n"));
            }
        }
        if self.histograms.is_empty() && self.counters.is_empty() && self.gauges.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Minimal JSON string escaping (metric names are plain identifiers, but
/// never trust an invariant a `&'static str` can't enforce).
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and enable flag are process-global; tests that touch
    /// them serialize on this lock (and restore the disabled state).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct EnabledGuard;
    impl EnabledGuard {
        fn new() -> EnabledGuard {
            enable();
            EnabledGuard
        }
    }
    impl Drop for EnabledGuard {
        fn drop(&mut self) {
            disable();
        }
    }

    /// Deterministic xorshift so the quantile test needs no RNG dependency.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn quantiles_match_sorted_reference() {
        let _l = TEST_LOCK.lock().unwrap();
        let _e = EnabledGuard::new();
        static H: Histogram = Histogram::new("test.quantiles");
        // A skewed latency-like distribution spanning several octaves.
        let mut state = 0x5DEECE66D;
        let mut values: Vec<u64> = (0..10_000)
            .map(|_| {
                let r = xorshift(&mut state);
                (r % 1000) * ((r >> 32) % 97 + 1) * ((r >> 48) % 11 + 1)
            })
            .collect();
        for &v in &values {
            H.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let reference = values[rank - 1];
            let estimate = H.quantile(q);
            // Bucket midpoints bound the quantization error at ~±4% (half a
            // 1/16-octave bucket) plus one count for the tiny linear range.
            let tol = (reference as f64 * 0.04) + 1.0;
            assert!(
                (estimate as f64 - reference as f64).abs() <= tol,
                "q={q}: estimate {estimate} vs reference {reference}"
            );
        }
        assert_eq!(H.count(), 10_000);
        reset();
    }

    #[test]
    fn quantile_is_exact_in_linear_range() {
        let _l = TEST_LOCK.lock().unwrap();
        let _e = EnabledGuard::new();
        static H: Histogram = Histogram::new("test.linear");
        for v in [3u64, 3, 5, 9, 15] {
            H.record(v);
        }
        assert_eq!(H.quantile(0.5), 5);
        assert_eq!(H.quantile(1.0), 15);
        assert_eq!(H.quantile(0.0), 3);
        reset();
    }

    #[test]
    fn bucket_index_and_mid_are_consistent() {
        // Every bucket's midpoint must map back to that bucket, and indices
        // must be monotone in the value.
        let mut last = 0usize;
        for exp in 0..63 {
            for v in [1u64 << exp, (1u64 << exp) + (1u64 << exp) / 3] {
                let idx = bucket_index(v);
                assert!(idx >= last || v < LINEAR_MAX, "monotone: {v}");
                last = last.max(idx);
                assert_eq!(bucket_index(bucket_mid(idx)), idx, "v={v} idx={idx}");
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let _l = TEST_LOCK.lock().unwrap();
        let _e = EnabledGuard::new();
        static C: Counter = Counter::new("test.saturate");
        C.add(u64::MAX - 5);
        C.add(3);
        assert_eq!(C.get(), u64::MAX - 2);
        C.add(100);
        assert_eq!(C.get(), u64::MAX, "must saturate, not wrap");
        C.inc();
        assert_eq!(C.get(), u64::MAX);
        reset();
    }

    #[test]
    fn disabled_registry_records_nothing_and_stays_empty() {
        let _l = TEST_LOCK.lock().unwrap();
        disable();
        static C: Counter = Counter::new("test.disabled.counter");
        static G: Gauge = Gauge::new("test.disabled.gauge");
        static H: Histogram = Histogram::new("test.disabled.hist");
        C.add(7);
        C.inc();
        G.set(42);
        H.record(1000);
        {
            let span = H.span();
            span.end();
        }
        assert_eq!(C.get(), 0);
        assert_eq!(G.get(), 0);
        assert_eq!(H.count(), 0);
        let snap = snapshot();
        assert!(snap.counter("test.disabled.counter").is_none());
        assert!(snap.gauge("test.disabled.gauge").is_none());
        assert!(snap.histogram("test.disabled.hist").is_none());
    }

    #[test]
    fn span_records_elapsed_time_when_enabled() {
        let _l = TEST_LOCK.lock().unwrap();
        let _e = EnabledGuard::new();
        static H: Histogram = Histogram::new("test.span");
        {
            let _span = H.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(H.count(), 1);
        let stats = snapshot().histogram("test.span").unwrap().clone();
        assert!(stats.sum >= 2_000_000, "2ms sleep must record ≥2ms, got {}ns", stats.sum);
        assert!(stats.min <= stats.p50 && stats.p50 <= stats.max * 2);
        reset();
    }

    #[test]
    fn snapshot_sorts_and_json_renders() {
        let _l = TEST_LOCK.lock().unwrap();
        let _e = EnabledGuard::new();
        static C2: Counter = Counter::new("test.zz");
        static C1: Counter = Counter::new("test.aa");
        static H: Histogram = Histogram::with_unit("test.pct", "pct");
        C2.add(2);
        C1.add(1);
        H.record(50);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let (za, aa) = (
            names.iter().position(|n| *n == "test.zz").unwrap(),
            names.iter().position(|n| *n == "test.aa").unwrap(),
        );
        assert!(aa < za, "counters must be name-sorted");
        let json = snap.to_json();
        assert!(json.contains("\"test.aa\": 1"));
        assert!(json.contains("\"test.zz\": 2"));
        assert!(json.contains("\"unit\": \"pct\""));
        let table = snap.render_table();
        assert!(table.contains("test.pct") && table.contains("50 pct"));
        reset();
    }

    #[test]
    fn reset_allows_reregistration() {
        let _l = TEST_LOCK.lock().unwrap();
        let _e = EnabledGuard::new();
        static C: Counter = Counter::new("test.reset");
        C.add(5);
        assert_eq!(snapshot().counter("test.reset"), Some(5));
        reset();
        assert!(snapshot().counter("test.reset").is_none());
        C.add(2);
        assert_eq!(snapshot().counter("test.reset"), Some(2));
        reset();
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let _l = TEST_LOCK.lock().unwrap();
        let _e = EnabledGuard::new();
        static C: Counter = Counter::new("test.concurrent");
        static H: Histogram = Histogram::new("test.concurrent.hist");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..10_000u64 {
                        C.inc();
                        H.record(i);
                    }
                });
            }
        });
        assert_eq!(C.get(), 40_000);
        assert_eq!(H.count(), 40_000);
        reset();
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let _l = TEST_LOCK.lock().unwrap();
        disable();
        reset();
        let snap = snapshot();
        assert!(snap.render_table().contains("(no metrics recorded)"));
        let json = snap.to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }
}
