//! # dim-kgraph — an in-memory triple store (CN-DBpedia substitution)
//!
//! Algorithm 2 of the paper bootstraps quantitative triples out of
//! CN-DBpedia. That graph is a gated resource, so this crate provides the
//! substrate the algorithm actually needs: a triple store with subject /
//! predicate / object-mention indexes, plus a synthetic population with
//! quantity-bearing predicates, diverse unit surface forms, decoy
//! predicates and trap objects.

#![warn(missing_docs)]

pub mod store;
pub mod synthesize;

pub use store::{EntityId, PredicateId, Triple, TripleId, TripleStore};
pub use synthesize::{synthesize, GoldQuantity, SynthConfig, SynthKg};
