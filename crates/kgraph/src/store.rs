//! An in-memory triple store with the indexes Algorithm 2 needs:
//! subject index, predicate index, and an inverted object-mention index.
//!
//! This is the CN-DBpedia substitution: the bootstrapping retrieval method
//! (§IV-C2) only requires `findTriplets` by object mention and by
//! predicate, which this store serves from hash indexes.

use dim_embed::tokenize::tokenize;
use std::collections::HashMap;

/// Interned entity id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Interned predicate id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredicateId(pub u32);

/// Index of a triple within the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TripleId(pub u32);

/// A `<subject, predicate, object>` triple. Objects are literal strings,
/// like CN-DBpedia's tail values ("2.06米", "红色").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Triple {
    /// Subject entity.
    pub subject: EntityId,
    /// Predicate.
    pub predicate: PredicateId,
    /// Object literal.
    pub object: String,
}

/// The triple store.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    entities: Vec<String>,
    entity_idx: HashMap<String, EntityId>,
    predicates: Vec<String>,
    predicate_idx: HashMap<String, PredicateId>,
    triples: Vec<Triple>,
    by_subject: HashMap<EntityId, Vec<TripleId>>,
    by_predicate: HashMap<PredicateId, Vec<TripleId>>,
    /// Inverted index: object token → triples whose object contains it.
    object_tokens: HashMap<String, Vec<TripleId>>,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an entity name.
    pub fn entity(&mut self, name: &str) -> EntityId {
        if let Some(&id) = self.entity_idx.get(name) {
            return id;
        }
        let id = EntityId(self.entities.len() as u32);
        self.entities.push(name.to_string());
        self.entity_idx.insert(name.to_string(), id);
        id
    }

    /// Interns a predicate name.
    pub fn predicate(&mut self, name: &str) -> PredicateId {
        if let Some(&id) = self.predicate_idx.get(name) {
            return id;
        }
        let id = PredicateId(self.predicates.len() as u32);
        self.predicates.push(name.to_string());
        self.predicate_idx.insert(name.to_string(), id);
        id
    }

    /// Inserts a triple, indexing its object tokens.
    pub fn insert(&mut self, subject: EntityId, predicate: PredicateId, object: &str) -> TripleId {
        let id = TripleId(self.triples.len() as u32);
        self.triples.push(Triple { subject, predicate, object: object.to_string() });
        self.by_subject.entry(subject).or_default().push(id);
        self.by_predicate.entry(predicate).or_default().push(id);
        let mut seen = Vec::new();
        for tok in tokenize(object) {
            if seen.contains(&tok.text) {
                continue;
            }
            self.object_tokens.entry(tok.text.clone()).or_default().push(id);
            seen.push(tok.text);
        }
        id
    }

    /// The triple with the given id.
    pub fn triple(&self, id: TripleId) -> &Triple {
        &self.triples[id.0 as usize]
    }

    /// Entity name by id.
    pub fn entity_name(&self, id: EntityId) -> &str {
        &self.entities[id.0 as usize]
    }

    /// Predicate name by id.
    pub fn predicate_name(&self, id: PredicateId) -> &str {
        &self.predicates[id.0 as usize]
    }

    /// Looks up a predicate id by name.
    pub fn predicate_id(&self, name: &str) -> Option<PredicateId> {
        self.predicate_idx.get(name).copied()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the store has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All predicates.
    pub fn predicates(&self) -> impl Iterator<Item = (PredicateId, &str)> {
        self.predicates.iter().enumerate().map(|(i, p)| (PredicateId(i as u32), p.as_str()))
    }

    /// `findTriplets(K, m in object)`: triples whose object mentions `m`
    /// (token-level containment of the mention's token sequence).
    pub fn find_by_object_mention(&self, mention: &str) -> Vec<TripleId> {
        let toks = tokenize(mention);
        let Some(first) = toks.first() else { return Vec::new() };
        let Some(candidates) = self.object_tokens.get(&first.text) else {
            return Vec::new();
        };
        if toks.len() == 1 {
            return candidates.clone();
        }
        let needle: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        candidates
            .iter()
            .copied()
            .filter(|&id| {
                let obj_toks = tokenize(&self.triple(id).object);
                let hay: Vec<&str> = obj_toks.iter().map(|t| t.text.as_str()).collect();
                hay.windows(needle.len()).any(|w| w == needle.as_slice())
            })
            .collect()
    }

    /// `findTriplets(K, p)`: all triples with the given predicate.
    pub fn find_by_predicate(&self, predicate: PredicateId) -> &[TripleId] {
        self.by_predicate.get(&predicate).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All triples about a subject.
    pub fn find_by_subject(&self, subject: EntityId) -> &[TripleId] {
        self.by_subject.get(&subject).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        let lebron = s.entity("勒布朗·詹姆斯");
        let curry = s.entity("斯蒂芬·库里");
        let height = s.predicate("身高");
        let color = s.predicate("颜色");
        s.insert(lebron, height, "2.06米");
        s.insert(curry, height, "188厘米");
        s.insert(lebron, color, "紫金色");
        s
    }

    #[test]
    fn mention_search_finds_unit_bearing_objects() {
        let s = store();
        // CJK is tokenized per character, so bare 米 matches 2.06米 AND
        // 188厘米 — exactly the ambiguity unit linking must resolve.
        let hits = s.find_by_object_mention("米");
        assert_eq!(hits.len(), 2);
        // The two-character sequence 厘米 matches only the centimetre object.
        let hits_cm = s.find_by_object_mention("厘米");
        assert_eq!(hits_cm.len(), 1);
        assert_eq!(s.triple(hits_cm[0]).object, "188厘米");
    }

    #[test]
    fn predicate_search_returns_all() {
        let s = store();
        let h = s.predicate_id("身高").unwrap();
        assert_eq!(s.find_by_predicate(h).len(), 2);
    }

    #[test]
    fn interning_is_stable() {
        let mut s = TripleStore::new();
        let a = s.entity("X");
        let b = s.entity("X");
        assert_eq!(a, b);
        assert_eq!(s.entity_name(a), "X");
    }

    #[test]
    fn subject_index_works() {
        let s = store();
        let lebron = s.entity_idx["勒布朗·詹姆斯"];
        assert_eq!(s.find_by_subject(lebron).len(), 2);
    }

    #[test]
    fn multiword_mention_requires_adjacency() {
        let mut s = TripleStore::new();
        let e = s.entity("e");
        let p = s.predicate("p");
        s.insert(e, p, "5 square metres of floor");
        s.insert(e, p, "metres squared five");
        let hits = s.find_by_object_mention("square metres");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn empty_mention_matches_nothing() {
        let s = store();
        assert!(s.find_by_object_mention("").is_empty());
        assert!(s.find_by_object_mention("不存在的词").is_empty());
    }
}
