//! Synthetic knowledge-graph population.
//!
//! CN-DBpedia is a gated resource; this module grows a synthetic graph with
//! the same *structural* properties Algorithm 2 depends on: entities of many
//! types, quantity-bearing predicates whose objects embed values with
//! diverse unit surface forms (Chinese labels, symbols, English labels),
//! decoy predicates with non-quantity objects, and trap objects (device
//! codes like "LPUI-1T") that a naive heuristic annotator mislabels.

use crate::store::{TripleId, TripleStore};
use dimkb::DimUnitKb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Gold annotation of a quantitative triple: what the object really means.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldQuantity {
    /// The numeric value as written in the object.
    pub value: f64,
    /// The KB code of the unit used.
    pub unit_code: String,
    /// The (narrow) quantity-kind name of the predicate.
    pub kind: String,
}

/// A synthesized graph plus its gold quantity annotations.
#[derive(Debug, Clone)]
pub struct SynthKg {
    /// The triple store.
    pub store: TripleStore,
    /// For each quantitative triple: its gold quantity.
    pub gold: HashMap<TripleId, GoldQuantity>,
}

impl SynthKg {
    /// Whether a triple is (gold-)quantitative.
    pub fn is_quantitative(&self, id: TripleId) -> bool {
        self.gold.contains_key(&id)
    }

    /// Number of quantitative triples.
    pub fn quantitative_count(&self) -> usize {
        self.gold.len()
    }
}

/// Configuration for graph synthesis.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Entities generated per archetype.
    pub entities_per_type: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { entities_per_type: 60, seed: 7 }
    }
}

/// How a quantity object is rendered.
#[derive(Debug, Clone, Copy)]
enum Surface {
    /// `{value}{中文单位}` — no space, Chinese label.
    ZhTight,
    /// `{value} {symbol}`.
    Symbol,
    /// `{value} {english label}`.
    English,
}

/// One quantity-bearing predicate of an archetype.
struct QuantPred {
    predicate: &'static str,
    kind: &'static str,
    /// Candidate unit codes with log10 value range (lo, hi) per unit.
    units: &'static [(&'static str, f64, f64)],
}

/// One archetype of entity.
struct Archetype {
    name_parts: (&'static [&'static str], &'static [&'static str]),
    quants: &'static [QuantPred],
    decoys: &'static [(&'static str, &'static [&'static str])],
}

const SURNAMES: &[&str] = &["王", "李", "张", "刘", "陈", "杨", "赵", "黄", "周", "吴"];
const GIVEN: &[&str] = &["伟", "芳", "娜", "敏", "静", "丽", "强", "磊", "军", "洋", "杰", "涛"];
const CITIES: &[&str] = &["上海", "北京", "广州", "深圳", "杭州", "成都", "武汉", "西安", "南京", "重庆"];
const SUFFIX_BUILDING: &[&str] = &["大厦", "中心", "广场", "国际金融中心", "塔"];
const RIVER_HEADS: &[&str] = &["清", "白", "金", "黑", "长", "青", "沙", "渭", "汾", "淮"];
const SUFFIX_RIVER: &[&str] = &["河", "江", "溪", "水"];
const BRANDS: &[&str] = &["星河", "蓝鲸", "凌云", "磐石", "疾风", "天枢", "极光", "曙光", "巨浪", "启明"];
const SUFFIX_DEVICE: &[&str] = &["Pro", "Max", "Air", "Plus", "Ultra"];
const CHEM_HEADS: &[&str] = &["氯化", "硫酸", "硝酸", "碳酸", "磷酸", "氢氧化", "氧化", "溴化"];
const CHEM_TAILS: &[&str] = &["钠", "钾", "钙", "镁", "铁", "铜", "锌", "铝"];
const COLORS: &[&str] = &["红色", "蓝色", "黑色", "白色", "银色", "金色"];
const FOUNDERS: &[&str] = &["王建国", "李文华", "张志强", "陈美玲", "刘国栋"];
const MODELS: &[&str] = &["LPUI-1T", "XJ-5T", "QR-2K", "ZV-9M", "HA-3G", "TB-7A", "KF-1M"];

const PERSON_QUANTS: &[QuantPred] = &[
    QuantPred {
        predicate: "身高",
        kind: "Height",
        units: &[("M", 0.2, 0.33), ("CentiM", 2.17, 2.3), ("FT", 0.72, 0.82)],
    },
    QuantPred {
        predicate: "体重",
        kind: "BodyMass",
        units: &[("KiloGM", 1.65, 2.05), ("JIN-ZH", 1.95, 2.35), ("LB", 2.0, 2.4)],
    },
    QuantPred { predicate: "年龄", kind: "Age", units: &[("YR", 1.1, 1.95)] },
];

const BUILDING_QUANTS: &[QuantPred] = &[
    QuantPred { predicate: "高度", kind: "Height", units: &[("M", 1.9, 2.8), ("FT", 2.4, 3.3)] },
    QuantPred {
        predicate: "建筑面积",
        kind: "FloorArea",
        units: &[("M2", 3.8, 5.3), ("FT2", 4.8, 6.3)],
    },
];

const RIVER_QUANTS: &[QuantPred] = &[
    QuantPred {
        predicate: "全长",
        kind: "Distance",
        units: &[("KiloM", 1.5, 3.8), ("MI", 1.3, 3.5), ("LI-ZH", 1.8, 4.1)],
    },
    QuantPred {
        predicate: "流量",
        kind: "WaterDischarge",
        units: &[("M3-PER-SEC", 0.5, 4.5)],
    },
    QuantPred {
        predicate: "流域面积",
        kind: "LandArea",
        units: &[("KM2", 2.0, 5.5), ("MU-ZH", 5.0, 8.0)],
    },
];

const DEVICE_QUANTS: &[QuantPred] = &[
    QuantPred { predicate: "屏幕尺寸", kind: "Diameter", units: &[("IN", 0.6, 1.1)] },
    QuantPred {
        predicate: "电池容量",
        kind: "BatteryCapacity",
        units: &[("MilliAH", 3.3, 3.9)],
    },
    QuantPred { predicate: "重量", kind: "Weight", units: &[("GM", 2.0, 2.5), ("OZ", 0.5, 1.0)] },
    QuantPred {
        predicate: "存储容量",
        kind: "StorageCapacity",
        units: &[("GigaBYTE", 1.5, 3.1)],
    },
];

const CAR_QUANTS: &[QuantPred] = &[
    QuantPred {
        predicate: "最高时速",
        kind: "TopSpeed",
        units: &[("KM-PER-HR", 2.1, 2.6), ("MI-PER-HR", 1.9, 2.4)],
    },
    QuantPred {
        predicate: "功率",
        kind: "EnginePower",
        units: &[("KiloW", 1.8, 2.6), ("HP", 1.9, 2.8)],
    },
    QuantPred { predicate: "排量", kind: "EngineDisplacement", units: &[("L", 0.0, 0.8)] },
    QuantPred {
        predicate: "整备质量",
        kind: "GrossMass",
        units: &[("KiloGM", 3.0, 3.5), ("TONNE", 0.0, 0.5)],
    },
];

const CHEM_QUANTS: &[QuantPred] = &[
    QuantPred { predicate: "摩尔质量", kind: "MolarMass", units: &[("G-PER-MOL", 1.2, 2.6)] },
    QuantPred { predicate: "熔点", kind: "MeltingPoint", units: &[("DEG-C", 1.5, 3.0)] },
    QuantPred {
        predicate: "密度",
        kind: "MassDensity",
        units: &[("G-PER-CM3", -0.3, 1.1), ("KG-PER-M3", 2.7, 4.1)],
    },
];

const CITY_QUANTS: &[QuantPred] = &[
    QuantPred { predicate: "人口", kind: "Population", units: &[("WAN-ZH", 1.0, 3.1)] },
    QuantPred {
        predicate: "面积",
        kind: "LandArea",
        units: &[("KM2", 2.5, 4.3), ("HA", 4.5, 6.3)],
    },
    QuantPred { predicate: "海拔", kind: "Altitude", units: &[("M", 0.7, 3.5)] },
];

const ARCHETYPES: &[Archetype] = &[
    Archetype {
        name_parts: (SURNAMES, GIVEN),
        quants: PERSON_QUANTS,
        decoys: &[("国籍", &["中国", "美国", "法国"]), ("职业", &["篮球运动员", "教师", "工程师"])],
    },
    Archetype {
        name_parts: (CITIES, SUFFIX_BUILDING),
        quants: BUILDING_QUANTS,
        decoys: &[("设计师", FOUNDERS), ("外观颜色", COLORS)],
    },
    Archetype {
        name_parts: (RIVER_HEADS, SUFFIX_RIVER),
        quants: RIVER_QUANTS,
        decoys: &[("流经省份", &["四川", "湖北", "江苏", "安徽"])],
    },
    Archetype {
        name_parts: (BRANDS, SUFFIX_DEVICE),
        quants: DEVICE_QUANTS,
        decoys: &[("型号", MODELS), ("颜色", COLORS)],
    },
    Archetype {
        name_parts: (BRANDS, &["轿车", "SUV", "跑车"]),
        quants: CAR_QUANTS,
        decoys: &[("变速箱", &["6AT", "8AT", "CVT", "7DCT"]), ("颜色", COLORS)],
    },
    Archetype {
        name_parts: (CHEM_HEADS, CHEM_TAILS),
        quants: CHEM_QUANTS,
        decoys: &[("外观", &["白色晶体", "无色液体", "淡黄色粉末"])],
    },
    Archetype {
        name_parts: (CITIES, &["市", "新区", "县"]),
        quants: CITY_QUANTS,
        decoys: &[("市花", &["月季", "桂花", "白玉兰"]), ("创始人", FOUNDERS)],
    },
];

/// Synthesizes a knowledge graph against the given unit KB.
pub fn synthesize(kb: &DimUnitKb, config: &SynthConfig) -> SynthKg {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut store = TripleStore::new();
    let mut gold = HashMap::new();
    for (ai, arch) in ARCHETYPES.iter().enumerate() {
        for i in 0..config.entities_per_type {
            let (heads, tails) = arch.name_parts;
            let name = format!(
                "{}{}{}",
                heads[rng.gen_range(0..heads.len())],
                tails[rng.gen_range(0..tails.len())],
                // Disambiguating index keeps entities unique.
                ai * config.entities_per_type + i
            );
            let subject = store.entity(&name);
            for q in arch.quants {
                // Some entities simply lack some attributes, like real KGs.
                if rng.gen_bool(0.15) {
                    continue;
                }
                let (code, lo, hi) = q.units[rng.gen_range(0..q.units.len())];
                let unit = kb
                    .unit_by_code(code)
                    // lint:allow(no_panic, archetype tables are curated constants cross-checked against the KB by this crate's tests; an unknown code is a build-time data bug, not a runtime input)
                    .unwrap_or_else(|| panic!("archetype references unknown unit {code}"));
                let value = round_sig(10f64.powf(rng.gen_range(lo..hi)), 3);
                let surface = match rng.gen_range(0..10) {
                    0..=5 => Surface::ZhTight,
                    6..=8 => Surface::Symbol,
                    _ => Surface::English,
                };
                let object = match surface {
                    Surface::ZhTight => format!("{}{}", fmt_value(value), unit.label_zh),
                    Surface::Symbol => format!("{} {}", fmt_value(value), unit.symbol),
                    Surface::English => format!("{} {}", fmt_value(value), unit.label_en),
                };
                let pred = store.predicate(q.predicate);
                let id = store.insert(subject, pred, &object);
                gold.insert(
                    id,
                    GoldQuantity {
                        value,
                        unit_code: unit.code.clone(),
                        kind: q.kind.to_string(),
                    },
                );
            }
            for (pred_name, values) in arch.decoys {
                let pred = store.predicate(pred_name);
                let v = values[rng.gen_range(0..values.len())];
                store.insert(subject, pred, v);
            }
        }
    }
    SynthKg { store, gold }
}

fn fmt_value(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v.round() as i64)
    } else {
        let s = format!("{v}");
        s
    }
}

fn round_sig(v: f64, digits: i32) -> f64 {
    if v == 0.0 {
        return 0.0;
    }
    let mag = v.abs().log10().floor() as i32;
    let factor = 10f64.powi(digits - 1 - mag);
    (v * factor).round() / factor
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kg() -> SynthKg {
        synthesize(&DimUnitKb::shared(), &SynthConfig { entities_per_type: 30, seed: 42 })
    }

    #[test]
    fn graph_has_quantity_and_decoy_triples() {
        let kg = kg();
        assert!(kg.store.len() > 300);
        let q = kg.quantitative_count();
        assert!(q > 100, "got {q} quantitative triples");
        assert!(q < kg.store.len(), "decoys must exist");
    }

    #[test]
    fn gold_units_exist_in_kb() {
        let kb = DimUnitKb::shared();
        let kg = kg();
        for g in kg.gold.values() {
            assert!(kb.unit_by_code(&g.unit_code).is_some(), "unknown {}", g.unit_code);
        }
    }

    #[test]
    fn height_mentions_are_retrievable_by_unit_mention() {
        let kg = kg();
        let hits = kg.store.find_by_object_mention("米");
        assert!(!hits.is_empty());
        // Every hit that is gold-quantitative should be metres-family.
        let quantitative = hits.iter().filter(|id| kg.is_quantitative(**id)).count();
        assert!(quantitative > 0);
    }

    #[test]
    fn trap_objects_exist() {
        // Device codes such as "LPUI-1T" must appear as decoy objects.
        let kg = kg();
        let hits = kg.store.find_by_object_mention("LPUI");
        assert!(!hits.is_empty(), "trap device codes should be present");
        for id in hits {
            assert!(!kg.is_quantitative(id), "device codes are not quantities");
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = kg();
        let b = kg();
        assert_eq!(a.store.len(), b.store.len());
        assert_eq!(a.gold.len(), b.gold.len());
    }

    #[test]
    fn values_are_plausible() {
        let kg = kg();
        for g in kg.gold.values() {
            assert!(g.value.is_finite() && g.value > 0.0);
        }
    }
}
