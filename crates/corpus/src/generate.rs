//! The quantity-rich corpus generator.
//!
//! The paper crawls physics-test sites, electronics forums, industrial
//! knowledge graphs and a general-domain knowledge graph (§IV-C1). Those
//! crawls are gated, so this generator produces the same *kind* of text:
//! bilingual sentences dense with quantities in diverse unit surface forms,
//! interleaved with decoy tokens (device codes such as `LPUI-1T`, years,
//! version strings) that trip naive heuristic annotators — the failure mode
//! Algorithm 1's masked-LM filter exists to catch.

use crate::noise::{decoy_token, DECOY_AFTER_HINTS};
use crate::sentence::{Domain, QuantitySpan, Sentence};
use dimkb::DimUnitKb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A quantity slot in a template: quantity kind plus candidate units with
/// log10-uniform value ranges.
struct Slot {
    kind: &'static str,
    units: &'static [(&'static str, f64, f64)],
}

/// A template part.
enum Part {
    /// Literal text.
    T(&'static str),
    /// Quantity slot by index.
    Q(usize),
    /// Entity-name slot.
    E,
    /// Decoy token (device code / year / version).
    D,
}

struct Template {
    domain: Domain,
    parts: &'static [Part],
    slots: &'static [Slot],
    entities: &'static [&'static str],
}

use Part::{D, E, Q, T};

const TEMPLATES: &[Template] = &[
    // ---- physics tests (zh) ------------------------------------------------
    Template {
        domain: Domain::PhysicsTest,
        parts: &[T("一个物体的质量为"), Q(0), T("，受到"), Q(1), T("的水平拉力，求物体的加速度。")],
        slots: &[
            Slot { kind: "Mass", units: &[("KiloGM", 0.0, 2.0), ("GM", 2.0, 3.5)] },
            Slot { kind: "Force", units: &[("N", 0.3, 2.3), ("KiloN", -0.5, 0.7)] },
        ],
        entities: &[],
    },
    Template {
        domain: Domain::PhysicsTest,
        parts: &[T("某汽车以"), Q(0), T("的速度匀速行驶了"), Q(1), T("，求它通过的路程。")],
        slots: &[
            Slot { kind: "Speed", units: &[("KM-PER-HR", 1.3, 2.1), ("M-PER-SEC", 0.7, 1.5)] },
            Slot { kind: "Duration", units: &[("HR", 0.0, 0.9), ("MIN", 0.8, 1.9)] },
        ],
        entities: &[],
    },
    Template {
        domain: Domain::PhysicsTest,
        parts: &[T("在温度为"), Q(0), T("的环境中，液体的表面张力系数约为"), Q(1), T("。")],
        slots: &[
            Slot { kind: "AmbientTemperature", units: &[("DEG-C", 0.7, 1.7)] },
            Slot {
                kind: "SurfaceTension",
                units: &[("N-PER-M", -2.0, -0.7), ("DYN-PER-CentiM", 0.5, 2.0)],
            },
        ],
        entities: &[],
    },
    Template {
        domain: Domain::PhysicsTest,
        parts: &[
            T("A ball is dropped from a height of "),
            Q(0),
            T(" and hits the ground after "),
            Q(1),
            T("."),
        ],
        slots: &[
            Slot { kind: "Height", units: &[("M", 0.3, 2.0), ("FT", 0.8, 2.4)] },
            Slot { kind: "Duration", units: &[("SEC", -0.2, 1.0)] },
        ],
        entities: &[],
    },
    // ---- electronics forums ---------------------------------------------------
    Template {
        domain: Domain::Electronics,
        parts: &[T("这款"), E, T("手机搭载"), Q(0), T("电池，屏幕尺寸为"), Q(1), T("，型号是"), D, T("。")],
        slots: &[
            Slot { kind: "BatteryCapacity", units: &[("MilliAH", 3.3, 3.9)] },
            Slot { kind: "Diameter", units: &[("IN", 0.6, 1.05)] },
        ],
        entities: &["星河", "蓝鲸", "凌云", "极光", "曙光"],
    },
    Template {
        domain: Domain::Electronics,
        parts: &[T("The "), E, T(" router offers "), Q(0), T(" of bandwidth and draws "), Q(1), T(" under load, firmware "), D, T(".")],
        slots: &[
            Slot {
                kind: "Bandwidth",
                units: &[("MegaBIT-PER-SEC", 1.5, 3.1), ("GigaBIT-PER-SEC", -0.2, 1.1)],
            },
            Slot { kind: "ElectricPower", units: &[("W", 0.5, 1.8)] },
        ],
        entities: &["Nebula", "Falcon", "Vertex", "Aurora"],
    },
    Template {
        domain: Domain::Electronics,
        parts: &[T("电容器的容量为"), Q(0), T("，额定电压"), Q(1), T("，采用"), D, T("封装。")],
        slots: &[
            Slot { kind: "Capacitance", units: &[("MicroF-FARAD", -0.5, 2.5), ("NanoF-FARAD", 0.5, 2.9)] },
            Slot { kind: "RatedVoltage", units: &[("V", 0.5, 2.6)] },
        ],
        entities: &[],
    },
    // ---- industrial KG ------------------------------------------------------------
    Template {
        domain: Domain::Industrial,
        parts: &[E, T("泵的额定流量为"), Q(0), T("，扬程对应压力"), Q(1), T("，出厂编号"), D, T("。")],
        slots: &[
            Slot {
                kind: "VolumeFlowRate",
                units: &[("L-PER-MIN", 1.0, 2.9), ("M3-PER-SEC", -2.5, -0.5)],
            },
            Slot { kind: "Pressure", units: &[("KiloPA", 1.7, 3.0), ("BAR", -0.2, 1.1), ("PSI", 0.9, 2.2)] },
        ],
        entities: &["磐石", "巨浪", "天枢", "启明"],
    },
    Template {
        domain: Domain::Industrial,
        parts: &[T("该车间传送带长"), Q(0), T("，额定载荷"), Q(1), T("，每小时吞吐量"), Q(2), T("。")],
        slots: &[
            Slot { kind: "Distance", units: &[("M", 0.7, 2.0)] },
            Slot { kind: "Load", units: &[("KiloN", -0.3, 1.0), ("KGF", 1.3, 3.0)] },
            Slot { kind: "MassFlowRate", units: &[("T-PER-HR", 0.0, 1.7)] },
        ],
        entities: &[],
    },
    Template {
        domain: Domain::Industrial,
        parts: &[T("The "), E, T(" furnace runs at "), Q(0), T(" with a thermal output of "), Q(1), T(".")],
        slots: &[
            Slot { kind: "Temperature", units: &[("DEG-C", 2.4, 3.2), ("K", 2.6, 3.3), ("DEG-F", 2.7, 3.4)] },
            Slot { kind: "Power", units: &[("KiloW", 1.0, 3.0), ("MegaW", -0.5, 1.0), ("HP", 1.5, 3.2)] },
        ],
        entities: &["Titan", "Vulcan", "Borealis"],
    },
    // ---- general domain -------------------------------------------------------------
    Template {
        domain: Domain::General,
        parts: &[E, T("的身高是"), Q(0), T("，体重"), Q(1), T("。")],
        slots: &[
            Slot { kind: "Height", units: &[("M", 0.2, 0.32), ("CentiM", 2.17, 2.3), ("FT", 0.72, 0.82)] },
            Slot { kind: "BodyMass", units: &[("KiloGM", 1.6, 2.05), ("JIN-ZH", 1.9, 2.35), ("LB", 2.0, 2.4)] },
        ],
        entities: &["王伟", "李娜", "张强", "陈静", "刘洋"],
    },
    Template {
        domain: Domain::General,
        parts: &[T("今天"), E, T("气温达到"), Q(0), T("，西北风"), Q(1), T("。")],
        slots: &[
            Slot { kind: "Temperature", units: &[("DEG-C", 0.5, 1.6)] },
            Slot { kind: "WindSpeed", units: &[("M-PER-SEC", 0.3, 1.4), ("KM-PER-HR", 0.9, 1.9)] },
        ],
        entities: &["上海", "北京", "广州", "哈尔滨"],
    },
    Template {
        domain: Domain::General,
        parts: &[E, T("大桥全长"), Q(0), T("，桥面宽"), Q(1), T("，于"), D, T("年建成通车。")],
        slots: &[
            Slot { kind: "Distance", units: &[("KiloM", 0.0, 1.6), ("M", 2.3, 3.6), ("LI-ZH", 0.3, 1.6)] },
            Slot { kind: "Width", units: &[("M", 1.0, 1.7)] },
        ],
        entities: &["长江", "钱塘江", "珠江", "黄河"],
    },
    Template {
        domain: Domain::General,
        parts: &[T("The reservoir stores "), Q(0), T(" of water covering "), Q(1), T(".")],
        slots: &[
            Slot {
                kind: "StorageVolume",
                units: &[("M3", 4.0, 7.5), ("MegaL", 1.0, 3.5), ("ACRE", 2.0, 4.0)],
            },
            Slot { kind: "LandArea", units: &[("KM2", 0.3, 2.5), ("HA", 1.5, 4.0), ("MU-ZH", 2.5, 5.0)] },
        ],
        entities: &[],
    },
    Template {
        domain: Domain::General,
        parts: &[T("这袋大米重"), Q(0), T("，价格比上月便宜了"), Q(1), T("。")],
        slots: &[
            Slot { kind: "Weight", units: &[("JIN-ZH", 0.5, 1.5), ("KiloGM", 0.3, 1.3)] },
            Slot { kind: "Ratio", units: &[("PERCENT", 0.3, 1.5)] },
        ],
        entities: &[],
    },
];

/// Configuration for corpus generation.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of sentences.
    pub sentences: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { sentences: 800, seed: 11 }
    }
}

/// How a unit surface form is rendered within a sentence.
fn render_unit(rng: &mut StdRng, kb: &DimUnitKb, code: &str, zh_context: bool) -> (String, String) {
    // lint:allow(no_panic, template unit codes are curated constants cross-checked against the KB by the corpus tests; an unknown code is a build-time data bug, not a runtime input)
    let unit = kb.unit_by_code(code).unwrap_or_else(|| panic!("unknown unit {code}"));
    let surface = if zh_context {
        match rng.gen_range(0..10) {
            0..=6 => unit.label_zh.clone(),
            7..=8 => unit.symbol.clone(),
            _ => unit
                .aliases
                .first()
                .cloned()
                .unwrap_or_else(|| unit.symbol.clone()),
        }
    } else {
        match rng.gen_range(0..10) {
            0..=4 => unit.symbol.clone(),
            5..=8 => unit.label_en.clone(),
            _ => unit
                .aliases
                .first()
                .cloned()
                .unwrap_or_else(|| unit.label_en.clone()),
        }
    };
    (surface, unit.code.clone())
}

/// Generates the corpus.
pub fn generate(kb: &DimUnitKb, config: &CorpusConfig) -> Vec<Sentence> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.sentences);
    for _ in 0..config.sentences {
        let template = &TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
        out.push(instantiate(kb, template, &mut rng));
    }
    out
}

fn instantiate(kb: &DimUnitKb, template: &Template, rng: &mut StdRng) -> Sentence {
    // Pre-draw slot values.
    let zh_context = template
        .parts
        .iter()
        .any(|p| matches!(p, T(s) if s.chars().any(dim_embed::tokenize::is_cjk)));
    let mut text = String::new();
    let mut quantities = Vec::new();
    let mut decoys = Vec::new();
    for part in template.parts {
        match part {
            T(s) => text.push_str(s),
            E => {
                let name = template.entities[rng.gen_range(0..template.entities.len())];
                text.push_str(name);
            }
            D => {
                let tok = decoy_token(rng);
                let start = text.len();
                text.push_str(&tok);
                decoys.push((start, text.len()));
            }
            Q(i) => {
                let slot = &template.slots[*i];
                let (code, lo, hi) = slot.units[rng.gen_range(0..slot.units.len())];
                let value = round_sig(10f64.powf(rng.gen_range(lo..hi)), 3);
                let (surface, unit_code) = render_unit(rng, kb, code, zh_context);
                let start = text.len();
                let value_str = fmt_value(value);
                text.push_str(&value_str);
                let value_end = text.len();
                // Latin units get a space after the value; CJK units do not.
                let needs_space =
                    surface.chars().next().is_some_and(|c| c.is_ascii_alphabetic());
                if needs_space {
                    text.push(' ');
                }
                let unit_start = text.len();
                text.push_str(&surface);
                let end = text.len();
                quantities.push(QuantitySpan {
                    start,
                    end,
                    value,
                    value_span: (start, value_end),
                    unit_surface: surface,
                    unit_span: (unit_start, end),
                    unit_code,
                    kind: slot.kind.to_string(),
                });
            }
        }
    }
    Sentence { text, quantities, decoys, domain: template.domain }
}

pub(crate) fn fmt_value(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v}")
    }
}

pub(crate) fn round_sig(v: f64, digits: i32) -> f64 {
    if v == 0.0 {
        return 0.0;
    }
    let mag = v.abs().log10().floor() as i32;
    let factor = 10f64.powi(digits - 1 - mag);
    (v * factor).round() / factor
}

/// Hint strings that precede decoys in templates (re-exported for tests).
pub fn decoy_hints() -> &'static [&'static str] {
    DECOY_AFTER_HINTS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Sentence> {
        generate(&DimUnitKb::shared(), &CorpusConfig { sentences: 300, seed: 5 })
    }

    #[test]
    fn gold_spans_are_byte_accurate() {
        for s in corpus() {
            for q in &s.quantities {
                let val = &s.text[q.value_span.0..q.value_span.1];
                assert!(val.parse::<f64>().is_ok(), "value span {val:?} in {}", s.text);
                assert_eq!(&s.text[q.unit_span.0..q.unit_span.1], q.unit_surface);
            }
        }
    }

    #[test]
    fn every_sentence_has_quantities() {
        for s in corpus() {
            assert!(s.has_quantity(), "{}", s.text);
        }
    }

    #[test]
    fn all_domains_are_covered() {
        let sents = corpus();
        for d in Domain::ALL {
            assert!(sents.iter().any(|s| s.domain == d), "missing domain {d:?}");
        }
    }

    #[test]
    fn decoys_appear() {
        let sents = corpus();
        let n: usize = sents.iter().map(|s| s.decoys.len()).sum();
        assert!(n > 10, "got {n} decoys");
    }

    #[test]
    fn unit_codes_resolve_in_kb() {
        let kb = DimUnitKb::shared();
        for s in corpus() {
            for q in &s.quantities {
                assert!(kb.unit_by_code(&q.unit_code).is_some(), "{}", q.unit_code);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].text, b[0].text);
        assert_eq!(a[42].text, b[42].text);
    }

    #[test]
    fn bilingual_mix() {
        let sents = corpus();
        let zh = sents.iter().filter(|s| s.text.chars().any(dim_embed::tokenize::is_cjk)).count();
        assert!(zh > 0 && zh < sents.len(), "both languages expected, zh={zh}");
    }
}
