//! The masked-LM numeric-slot filter (BERT substitution).
//!
//! Step 2 of Algorithm 1 replaces a candidate value token with `[MASK]` and
//! asks a pretrained LM whether a numeric token belongs in that slot; if
//! not, the candidate is discarded as a non-quantity (e.g. the `1` inside
//! the device code `LPUI-1T`). The only property the algorithm uses is
//! *"is this slot numeric-shaped?"*, so the substitution is a smoothed
//! bigram-context model `P(numeric | prev token, next token)` trained on
//! clean corpus text.

use dim_embed::tokenize::{tokenize, TokenKind};
use std::collections::HashMap;

/// Sentinel tokens for sequence boundaries.
const BOS: &str = "<s>";
const EOS: &str = "</s>";

/// Counts for one context: (numeric occurrences, non-numeric occurrences).
#[derive(Debug, Clone, Copy, Default)]
struct Counts {
    numeric: f64,
    other: f64,
}

impl Counts {
    fn prob(&self, prior: f64, prior_weight: f64) -> f64 {
        (self.numeric + prior * prior_weight) / (self.numeric + self.other + prior_weight)
    }
}

/// A numeric-slot model: predicts how likely a masked token position holds
/// a number given its neighbouring tokens.
#[derive(Debug, Clone, Default)]
pub struct NumericSlotModel {
    both: HashMap<(String, String), Counts>,
    prev_only: HashMap<String, Counts>,
    next_only: HashMap<String, Counts>,
    prior: Counts,
}

impl NumericSlotModel {
    /// Trains the model on raw sentences.
    pub fn train<'a>(sentences: impl IntoIterator<Item = &'a str>) -> Self {
        let mut model = NumericSlotModel::default();
        for text in sentences {
            let toks = tokenize(text);
            for (i, tok) in toks.iter().enumerate() {
                let prev = if i == 0 { BOS.to_string() } else { toks[i - 1].text.clone() };
                let next =
                    if i + 1 == toks.len() { EOS.to_string() } else { toks[i + 1].text.clone() };
                let numeric = tok.kind == TokenKind::Number;
                for c in [
                    model.both.entry((prev.clone(), next.clone())).or_default(),
                    model.prev_only.entry(prev).or_default(),
                    model.next_only.entry(next).or_default(),
                    &mut model.prior,
                ] {
                    if numeric {
                        c.numeric += 1.0;
                    } else {
                        c.other += 1.0;
                    }
                }
            }
        }
        model
    }

    /// The corpus-wide prior probability that a token is numeric.
    pub fn prior(&self) -> f64 {
        self.prior.prob(0.5, 1.0)
    }

    /// `P(numeric | prev, next)` with backoff: exact bigram context, then
    /// each side alone, then the prior.
    pub fn numeric_prob(&self, prev: &str, next: &str) -> f64 {
        let prior = self.prior();
        if let Some(c) = self.both.get(&(prev.to_string(), next.to_string())) {
            if c.numeric + c.other >= 3.0 {
                return c.prob(prior, 1.0);
            }
        }
        let p = self.prev_only.get(prev);
        let n = self.next_only.get(next);
        match (p, n) {
            (Some(a), Some(b)) => 0.5 * (a.prob(prior, 2.0) + b.prob(prior, 2.0)),
            (Some(a), None) => a.prob(prior, 2.0),
            (None, Some(b)) => b.prob(prior, 2.0),
            (None, None) => prior,
        }
    }

    /// Masks the token covering byte `pos` in `text` and returns the
    /// probability that a numeric token belongs there. `None` if no token
    /// covers `pos`.
    pub fn mask_and_score(&self, text: &str, pos: usize) -> Option<f64> {
        let toks = tokenize(text);
        let idx = toks.iter().position(|t| t.start <= pos && pos < t.end)?;
        let prev = if idx == 0 { BOS } else { &toks[idx - 1].text };
        let next = if idx + 1 == toks.len() { EOS } else { &toks[idx + 1].text };
        Some(self.numeric_prob(prev, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NumericSlotModel {
        let sents = [
            "货物重150千克需要运输",
            "货物重23千克需要运输",
            "货物重8千克需要运输",
            "箱子重40千克左右",
            "设备型号为LPUI-1T系列",
            "设备型号为XJ-5T系列",
            "设备型号为QR-2K系列",
        ];
        NumericSlotModel::train(sents)
    }

    #[test]
    fn quantity_slots_score_high() {
        let m = model();
        // "货物重" is 9 bytes of CJK; the value token "99" starts at byte 9.
        let p = m.mask_and_score("货物重99千克需要运输", 9).expect("covers 99");
        assert!(p > 0.5, "weight slot should look numeric, got {p}");
    }

    #[test]
    fn device_code_digits_score_low() {
        let m = model();
        // Position of the digit inside "ZV-9M": the context is hyphen+letter,
        // which in training co-occurs with code digits, but the *next* token
        // being a bare letter makes it indistinguishable from codes; the
        // model learned those contexts from decoy sentences where the token
        // IS numeric-shaped... The discriminative signal is the next token:
        // "千" strongly predicts numeric, "t"/"k" suffixes are code-like.
        let code_p = m.numeric_prob("-", "m");
        let qty_p = m.numeric_prob("重", "千");
        assert!(qty_p > code_p, "quantity context {qty_p} must beat code context {code_p}");
    }

    #[test]
    fn unseen_context_falls_back_to_prior() {
        let m = model();
        let p = m.numeric_prob("alienword", "anotheralien");
        assert!((p - m.prior()).abs() < 1e-9);
    }

    #[test]
    fn mask_out_of_range_is_none() {
        let m = model();
        assert!(m.mask_and_score("abc", 999).is_none());
    }

    #[test]
    fn prior_reflects_numeric_density() {
        let m = model();
        let p = m.prior();
        assert!(p > 0.0 && p < 0.5);
    }
}
