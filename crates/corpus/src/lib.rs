//! # dim-corpus — quantity-rich corpus generation and the masked-LM filter
//!
//! Substitutes the paper's gated crawls (§IV-C1): a bilingual template
//! generator produces sentences dense with quantities in diverse unit
//! surface forms, with gold spans and deliberate decoy tokens, and an
//! n-gram numeric-slot model substitutes for the BERT masked-LM filter of
//! Algorithm 1.

#![warn(missing_docs)]

pub mod generate;
pub mod mlm;
pub mod noise;
pub mod sentence;

pub use generate::{generate, CorpusConfig};
pub use mlm::NumericSlotModel;
pub use sentence::{Domain, QuantitySpan, Sentence};
