//! Decoy tokens: strings that *look* like quantities to a heuristic
//! annotator but are not — the paper's motivating example is the device
//! code `LPUI-1T`, whose `1T` suffix gets misread as "1 ton" or "1 tesla"
//! (§IV-C1).

use rand::rngs::StdRng;
use rand::Rng;

/// Literal hint strings used before decoys in corpus templates.
pub const DECOY_AFTER_HINTS: &[&str] = &["型号", "编号", "firmware", "封装"];

const CODE_LETTERS: &[&str] = &["LPUI", "XJ", "QR", "ZV", "HA", "TB", "KF", "MX", "GT", "RZ"];
/// Trailing letters deliberately chosen to collide with unit symbols
/// (T = tesla/tonne, K = kelvin, M = metre-ish, G = gauss, A = ampere, W = watt).
const CODE_SUFFIX: &[char] = &['T', 'K', 'M', 'G', 'A', 'W', 'V', 'S'];

/// Draws one decoy token: a device code (`LPUI-1T`), a year (`1999`), or a
/// version string (`v2.5`).
pub fn decoy_token(rng: &mut StdRng) -> String {
    match rng.gen_range(0..10) {
        0..=5 => {
            let head = CODE_LETTERS[rng.gen_range(0..CODE_LETTERS.len())];
            let digit = rng.gen_range(1..10);
            let suffix = CODE_SUFFIX[rng.gen_range(0..CODE_SUFFIX.len())];
            format!("{head}-{digit}{suffix}")
        }
        6..=7 => format!("{}", rng.gen_range(1980..2024)),
        _ => format!("v{}.{}", rng.gen_range(1..9), rng.gen_range(0..10)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn decoys_include_device_codes_with_unit_suffixes() {
        let mut rng = StdRng::seed_from_u64(1);
        let toks: Vec<String> = (0..100).map(|_| decoy_token(&mut rng)).collect();
        assert!(toks.iter().any(|t| t.contains('-') && t.ends_with('T')),
            "device codes ending in T (the tesla/tonne trap) must occur");
        assert!(toks.iter().any(|t| t.starts_with('v')), "version strings must occur");
        assert!(toks.iter().any(|t| t.len() == 4 && t.parse::<u32>().is_ok()), "years must occur");
    }

    #[test]
    fn decoys_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            assert_eq!(decoy_token(&mut a), decoy_token(&mut b));
        }
    }
}
