//! Sentence records with gold quantity annotations.

/// A gold-annotated quantity occurrence inside a sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantitySpan {
    /// Byte span of the whole quantity (value + unit).
    pub start: usize,
    /// One past the end byte of the whole quantity.
    pub end: usize,
    /// The numeric value.
    pub value: f64,
    /// Byte span of the value part.
    pub value_span: (usize, usize),
    /// The unit surface form as written.
    pub unit_surface: String,
    /// Byte span of the unit part.
    pub unit_span: (usize, usize),
    /// KB code of the unit.
    pub unit_code: String,
    /// The (narrow) quantity-kind name.
    pub kind: String,
}

/// The corpus domains the paper crawls (§IV-C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// High-school physics test problems.
    PhysicsTest,
    /// Electronic-information forum posts.
    Electronics,
    /// Industrial knowledge-graph descriptions.
    Industrial,
    /// General-domain knowledge-graph text.
    General,
}

impl Domain {
    /// All domains.
    pub const ALL: [Domain; 4] =
        [Domain::PhysicsTest, Domain::Electronics, Domain::Industrial, Domain::General];
}

/// A corpus sentence with gold annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct Sentence {
    /// The raw text.
    pub text: String,
    /// Gold quantity spans (possibly empty).
    pub quantities: Vec<QuantitySpan>,
    /// Spans of decoy tokens that *look* like quantities but are not
    /// (device codes, years, version numbers).
    pub decoys: Vec<(usize, usize)>,
    /// Source domain.
    pub domain: Domain,
}

impl Sentence {
    /// True if the sentence contains at least one gold quantity.
    pub fn has_quantity(&self) -> bool {
        !self.quantities.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_accessors() {
        let s = Sentence {
            text: "重150千克".into(),
            quantities: vec![QuantitySpan {
                start: 3,
                end: 12,
                value: 150.0,
                value_span: (3, 6),
                unit_surface: "千克".into(),
                unit_span: (6, 12),
                unit_code: "KiloGM".into(),
                kind: "Weight".into(),
            }],
            decoys: vec![],
            domain: Domain::General,
        };
        assert!(s.has_quantity());
        let q = &s.quantities[0];
        assert_eq!(&s.text[q.value_span.0..q.value_span.1], "150");
        assert_eq!(&s.text[q.unit_span.0..q.unit_span.1], "千克");
    }
}
