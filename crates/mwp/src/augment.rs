//! Quantity-oriented data augmentation (§V-B2, Table V).
//!
//! Two directions × two substitution methods:
//!
//! * **Context-based** — rewrite a quantity in the problem *context*;
//!   the answer must stay unchanged, so dimension substitution rescales the
//!   written value (150千克 → 150000克) and records the inverse conversion
//!   in the gold equation.
//! * **Question-based** — rewrite the unit the *question* asks in; the
//!   answer changes (450千克 → 0.45吨), so the gold equation gains a final
//!   conversion step.
//!
//! * **Format substitution** keeps the unit and swaps its surface form
//!   (千克 → kg).
//! * **Dimension substitution** swaps in a different unit of the same
//!   dimension (千克 → 克 / 吨).

use crate::equation::{Node, Op};
use crate::problem::MwpProblem;
use dimkb::degrade::{self, BudgetExceeded, Degraded, ErrorBudget, QuarantineEntry, RecordError};
use dimkb::{DimUnitKb, Unit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// Observability (no-ops unless `dim_obs::enable()` was called). Attempts
// vs augmented measures the augmentation success rate at each η.
static QMWP_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("mwp.qmwp");
static AUGMENT_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("mwp.augment");
static AUGMENT_ATTEMPTS: dim_obs::Counter = dim_obs::Counter::new("mwp.augment_attempts");
static AUGMENTED: dim_obs::Counter = dim_obs::Counter::new("mwp.augmented");

/// Chaos/quarantine site for Q-MWP conversion (indexed by problem).
const SITE_QMWP: &str = "mwp.qmwp";
/// Chaos/quarantine site for dataset augmentation (indexed by attempt).
const SITE_AUGMENT: &str = "mwp.augment";

/// The four augmentation methods of Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AugmentMethod {
    /// Context-based unit format substitution.
    ContextFormat,
    /// Context-based substitution of a unit with the same dimension.
    ContextDimension,
    /// Question-based unit format substitution.
    QuestionFormat,
    /// Question-based substitution of a unit with the same dimension.
    QuestionDimension,
}

impl AugmentMethod {
    /// All four methods.
    pub const ALL: [AugmentMethod; 4] = [
        AugmentMethod::ContextFormat,
        AugmentMethod::ContextDimension,
        AugmentMethod::QuestionFormat,
        AugmentMethod::QuestionDimension,
    ];
}

/// The augmenter: a KB plus RNG.
pub struct Augmenter<'a> {
    kb: &'a DimUnitKb,
    rng: StdRng,
    /// The seed this augmenter was created with; the batch entry points
    /// derive independent per-item streams from it (see [`dim_par::seed_for`])
    /// so their output does not depend on thread count.
    seed: u64,
}

impl<'a> Augmenter<'a> {
    /// Creates an augmenter.
    pub fn new(kb: &'a DimUnitKb, seed: u64) -> Self {
        Augmenter { kb, rng: StdRng::seed_from_u64(seed), seed }
    }

    /// Applies one method to a problem; `None` when the method does not
    /// apply (no eligible quantity, no alternative unit, …).
    pub fn augment(&mut self, p: &MwpProblem, method: AugmentMethod) -> Option<MwpProblem> {
        match method {
            AugmentMethod::ContextFormat => self.context_format(p),
            AugmentMethod::ContextDimension => self.context_dimension(p),
            AugmentMethod::QuestionFormat => self.question_format(p),
            AugmentMethod::QuestionDimension => self.question_dimension(p),
        }
    }

    /// Context quantities eligible for substitution: linked to a real unit,
    /// not percent, not a bare count, surface actually a form of the unit.
    fn eligible_context(&self, p: &MwpProblem) -> Vec<usize> {
        let in_question = p.question_quantities();
        (0..p.quantities.len())
            .filter(|i| !in_question.contains(i))
            .filter(|&i| {
                let q = &p.quantities[i];
                if q.is_percent || q.surface.is_empty() {
                    return false;
                }
                let Some(code) = &q.unit_code else { return false };
                let Some(unit) = self.kb.unit_by_code(code) else { return false };
                unit.surface_forms().any(|f| f == q.surface)
            })
            .collect()
    }

    fn alt_format(&mut self, unit: &Unit, current: &str) -> Option<String> {
        let mut forms: Vec<&str> = unit.surface_forms().filter(|f| *f != current).collect();
        if forms.is_empty() {
            return None;
        }
        let pick = self.rng.gen_range(0..forms.len());
        Some(forms.swap_remove(pick).to_string())
    }

    fn alt_unit(&mut self, unit: &Unit, value: f64) -> Option<(&'a Unit, f64)> {
        let candidates: Vec<&Unit> = self
            .kb
            .units_with_dim(unit.dim)
            .iter()
            .map(|&id| self.kb.unit(id))
            .filter(|u| {
                u.code != unit.code
                    && !u.conversion.is_affine()
                    && u.frequency > 0.3
                    && !u.label_zh.is_empty()
                    // A same-scale unit (公斤 vs 千克) is a format change,
                    // not a dimension substitution requiring conversion.
                    && (u.conversion.factor / unit.conversion.factor - 1.0).abs() > 1e-12
            })
            .filter(|u| {
                let v = value * unit.conversion.factor / u.conversion.factor;
                (1e-3..1e7).contains(&v.abs())
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        // Prefer power-of-ten (or otherwise short) rescalings so values
        // stay readable, like the paper's 150千克 → 150000克.
        let nice: Vec<&&Unit> = candidates
            .iter()
            .filter(|u| {
                let v = value * unit.conversion.factor / u.conversion.factor;
                (v * 1e4).round() / 1e4 == v
            })
            .collect();
        let chosen: &Unit = if nice.is_empty() {
            candidates[self.rng.gen_range(0..candidates.len())]
        } else {
            nice[self.rng.gen_range(0..nice.len())]
        };
        let new_value = value * unit.conversion.factor / chosen.conversion.factor;
        Some((chosen, new_value))
    }

    fn context_format(&mut self, p: &MwpProblem) -> Option<MwpProblem> {
        let eligible = self.eligible_context(p);
        if eligible.is_empty() {
            return None;
        }
        let i = eligible[self.rng.gen_range(0..eligible.len())];
        let q = &p.quantities[i];
        let unit = self.kb.unit_by_code(q.unit_code.as_ref()?)?;
        let new_surface = self.alt_format(unit, &q.surface)?;
        let mut out = p.clone();
        out.quantities[i].surface = new_surface;
        Some(out)
    }

    fn context_dimension(&mut self, p: &MwpProblem) -> Option<MwpProblem> {
        let eligible = self.eligible_context(p);
        if eligible.is_empty() {
            return None;
        }
        let i = eligible[self.rng.gen_range(0..eligible.len())];
        let q = &p.quantities[i];
        let unit = self.kb.unit_by_code(q.unit_code.as_ref()?)?;
        let (new_unit, new_value) = self.alt_unit(unit, q.value)?;
        // The conversion restoring the original scale: written value in the
        // new unit × (f_new / f_old) = original written value.
        let ratio = new_unit.conversion.factor / unit.conversion.factor;
        let mut out = p.clone();
        out.quantities[i].value = new_value;
        out.quantities[i].unit_code = Some(new_unit.code.clone());
        out.quantities[i].surface = new_unit.label_zh.clone();
        out.equation = out.equation.map_q(&mut |j| {
            if j == i {
                wrap_conversion(Node::Q(j), ratio)
            } else {
                Node::Q(j)
            }
        });
        out.conversions.push((i, ratio));
        Some(out)
    }

    fn question_format(&mut self, p: &MwpProblem) -> Option<MwpProblem> {
        let code = p.answer_unit_code.as_ref()?;
        let unit = self.kb.unit_by_code(code)?;
        if !unit.surface_forms().any(|f| f == p.answer_unit_surface) {
            return None;
        }
        let new_surface = self.alt_format(unit, &p.answer_unit_surface)?;
        let mut out = p.clone();
        out.answer_unit_surface = new_surface;
        Some(out)
    }

    fn question_dimension(&mut self, p: &MwpProblem) -> Option<MwpProblem> {
        let code = p.answer_unit_code.as_ref()?;
        let unit = self.kb.unit_by_code(code)?;
        if unit.conversion.is_affine() {
            return None;
        }
        if !unit.surface_forms().any(|f| f == p.answer_unit_surface) {
            return None;
        }
        let answer = p.answer();
        let (new_unit, _) = self.alt_unit(unit, answer)?;
        // answer' = answer × f_old / f_new.
        let ratio = unit.conversion.factor / new_unit.conversion.factor;
        let mut out = p.clone();
        out.answer_unit_code = Some(new_unit.code.clone());
        out.answer_unit_surface = new_unit.label_zh.clone();
        out.equation = wrap_conversion(out.equation, ratio);
        out.answer_conversion *= ratio;
        Some(out)
    }

    /// One problem's Q-MWP derivation: one or two dimension substitutions
    /// (falling back to format substitution), drawing from `self.rng`.
    fn qmwp_one(&mut self, p: &MwpProblem) -> MwpProblem {
        let mut cur = p.clone();
        let first = if self.rng.gen_bool(0.75) {
            AugmentMethod::ContextDimension
        } else {
            AugmentMethod::QuestionDimension
        };
        if let Some(next) = self.augment(&cur, first) {
            cur = next;
        } else if let Some(next) = self.augment(&cur, AugmentMethod::ContextFormat) {
            cur = next;
        }
        // A second pass diversifies further half the time.
        if self.rng.gen_bool(0.5) {
            let second = if self.rng.gen_bool(0.5) {
                AugmentMethod::QuestionDimension
            } else {
                AugmentMethod::ContextDimension
            };
            if let Some(next) = self.augment(&cur, second) {
                cur = next;
            }
        }
        if let Some(next) = self.augment(&cur, AugmentMethod::QuestionFormat) {
            if self.rng.gen_bool(0.3) {
                cur = next;
            }
        }
        cur
    }

    /// Builds a Q-MWP dataset: each problem receives one or two dimension
    /// substitutions (falling back to format substitution), diversifying
    /// units and adding conversion steps — the Table VI profile.
    pub fn to_qmwp(&mut self, problems: &[MwpProblem]) -> Vec<MwpProblem> {
        self.to_qmwp_with(problems, dim_par::Parallelism::SEQUENTIAL)
    }

    /// Like [`Self::to_qmwp`], fanning the per-problem work out across
    /// `par`. Each problem gets its own RNG stream from `(seed, index)`,
    /// so output is byte-identical for every thread count — the morsel
    /// scheduler in `dim_par` only decides *where* an index runs (and
    /// clamps the worker count to the host's usable cores), never which
    /// seed it gets.
    pub fn to_qmwp_with(
        &mut self,
        problems: &[MwpProblem],
        par: dim_par::Parallelism,
    ) -> Vec<MwpProblem> {
        let _span = QMWP_SPAN.span();
        let (kb, seed) = (self.kb, self.seed);
        dim_par::par_map_indexed(par, problems, |i, p| {
            Augmenter::new(kb, dim_par::seed_for(seed ^ 0x51, i as u64)).qmwp_one(p)
        })
    }

    /// Degraded-mode [`Self::to_qmwp_with`]: per-problem panic isolation and
    /// fault injection; a faulted problem is quarantined (its slot is
    /// `None`) under `budget`. With no faults, slot `i` equals the classic
    /// output's element `i` exactly.
    pub fn try_to_qmwp_with(
        &mut self,
        problems: &[MwpProblem],
        par: dim_par::Parallelism,
        budget: ErrorBudget,
    ) -> Result<Degraded<MwpProblem>, BudgetExceeded> {
        let _span = QMWP_SPAN.span();
        let (kb, seed) = (self.kb, self.seed);
        let slots = dim_par::try_par_map_indexed(par, problems, |i, p| {
            degrade::inject(SITE_QMWP, i)?;
            Ok(Augmenter::new(kb, dim_par::seed_for(seed ^ 0x51, i as u64)).qmwp_one(p))
        });
        let slots = slots.into_iter().map(|slot| match slot {
            Ok(inner) => inner,
            Err(p) => Err(RecordError::Panicked(p.message)),
        });
        degrade::collect_degraded(SITE_QMWP, slots, budget)
    }

    /// Training-set augmentation at rate η: appends ~η·N augmented variants
    /// (random method per pick) to the originals (§VI-G, Fig. 6).
    pub fn augment_dataset(&mut self, problems: &[MwpProblem], eta: f64) -> Vec<MwpProblem> {
        self.augment_dataset_with(problems, eta, dim_par::Parallelism::SEQUENTIAL)
    }

    /// Like [`Self::augment_dataset`] with a parallel fan-out. Augmentation
    /// attempts are numbered; attempt `k` derives its own RNG stream from
    /// `(seed, k)` and picks its own problem and method, and the first
    /// `extra` successes in attempt order are kept — waves of attempts run
    /// in parallel but the kept set is thread-count invariant.
    pub fn augment_dataset_with(
        &mut self,
        problems: &[MwpProblem],
        eta: f64,
        par: dim_par::Parallelism,
    ) -> Vec<MwpProblem> {
        let _span = AUGMENT_SPAN.span();
        let mut out = problems.to_vec();
        let extra = (problems.len() as f64 * eta).round() as usize;
        if extra == 0 || problems.is_empty() {
            return out;
        }
        let (kb, seed) = (self.kb, self.seed);
        let guard_limit = extra * 20 + 100;
        let mut produced = 0usize;
        let mut attempt = 0usize;
        while produced < extra && attempt < guard_limit {
            // Most attempts succeed, so a wave sized to the deficit (with a
            // floor to amortize fan-out) rarely needs a second round.
            let wave = (extra - produced).max(32).min(guard_limit - attempt);
            let ks: Vec<u64> = (attempt..attempt + wave).map(|k| k as u64).collect();
            let results =
                dim_par::par_map(par, &ks, |&k| attempt_one(kb, seed, problems, k));
            for aug in results.into_iter().flatten() {
                if produced >= extra {
                    break;
                }
                out.push(aug);
                produced += 1;
            }
            attempt += wave;
        }
        AUGMENT_ATTEMPTS.add(attempt as u64);
        AUGMENTED.add(produced as u64);
        out
    }

    /// Degraded-mode [`Self::augment_dataset_with`]: each attempt runs in
    /// panic isolation, faulted attempts are recorded (by attempt number)
    /// and skipped, and later attempts backfill toward the η target — so
    /// unlike the positional `try_*` batches, the *set* of appended variants
    /// can differ from the classic output when faults fire (with no faults
    /// it is identical). The budget is checked over attempts at the end.
    pub fn try_augment_dataset_with(
        &mut self,
        problems: &[MwpProblem],
        eta: f64,
        par: dim_par::Parallelism,
        budget: ErrorBudget,
    ) -> Result<(Vec<MwpProblem>, Vec<QuarantineEntry>), BudgetExceeded> {
        let _span = AUGMENT_SPAN.span();
        let mut out = problems.to_vec();
        let extra = (problems.len() as f64 * eta).round() as usize;
        if extra == 0 || problems.is_empty() {
            return Ok((out, Vec::new()));
        }
        let (kb, seed) = (self.kb, self.seed);
        let guard_limit = extra * 20 + 100;
        let mut produced = 0usize;
        let mut attempt = 0usize;
        let mut quarantine = Vec::new();
        while produced < extra && attempt < guard_limit {
            let wave = (extra - produced).max(32).min(guard_limit - attempt);
            let ks: Vec<u64> = (attempt..attempt + wave).map(|k| k as u64).collect();
            let results = dim_par::try_par_map_indexed(par, &ks, |_, &k| {
                degrade::inject(SITE_AUGMENT, k as usize)?;
                Ok(attempt_one(kb, seed, problems, k))
            });
            for (j, slot) in results.into_iter().enumerate() {
                let flat = match slot {
                    Ok(inner) => inner,
                    Err(p) => Err(RecordError::Panicked(p.message)),
                };
                match flat {
                    Ok(Some(aug)) => {
                        if produced < extra {
                            out.push(aug);
                            produced += 1;
                        }
                    }
                    Ok(None) => {}
                    Err(e) => quarantine.push(QuarantineEntry {
                        site: SITE_AUGMENT.to_string(),
                        index: attempt + j,
                        error: e.to_string(),
                    }),
                }
            }
            attempt += wave;
        }
        AUGMENT_ATTEMPTS.add(attempt as u64);
        AUGMENTED.add(produced as u64);
        let failed = quarantine.len();
        if attempt > 0 && failed as f64 > budget.max_error_rate * attempt as f64 {
            return Err(BudgetExceeded {
                site: SITE_AUGMENT.to_string(),
                failed,
                total: attempt,
                max_error_rate: budget.max_error_rate,
            });
        }
        Ok((out, quarantine))
    }
}

/// One numbered augmentation attempt: attempt `k` derives its own RNG
/// stream from `(seed, k)`, picks its own problem and method, and succeeds
/// or not — the shared body of the classic and degraded dataset augmenters.
fn attempt_one(
    kb: &DimUnitKb,
    seed: u64,
    problems: &[MwpProblem],
    k: u64,
) -> Option<MwpProblem> {
    let mut a = Augmenter::new(kb, dim_par::seed_for(seed ^ 0x0A, k));
    let p = &problems[a.rng.gen_range(0..problems.len())];
    let method = AugmentMethod::ALL[a.rng.gen_range(0..AugmentMethod::ALL.len())];
    a.augment(p, method)
}

/// Wraps `node` so it evaluates to `node × ratio`, rendered as `/k` when
/// the ratio is a reciprocal of a clean factor (the conventional gold form
/// `x=…/1000` rather than `x=…*0.001`).
fn wrap_conversion(node: Node, ratio: f64) -> Node {
    if ratio == 1.0 {
        return node;
    }
    let recip = 1.0 / ratio;
    if recip > 1.0 && (recip.round() - recip).abs() < 1e-9 {
        Node::bin(Op::Div, node, Node::Const(recip.round()))
    } else {
        Node::bin(Op::Mul, node, Node::Const(ratio))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::problem::Source;
    use dimkb::DimUnitKb;

    fn problems() -> Vec<MwpProblem> {
        generate(Source::Math23k, &GenConfig { count: 60, seed: 33 })
    }

    #[test]
    fn context_dimension_preserves_answer() {
        let kb = DimUnitKb::shared();
        let mut aug = Augmenter::new(&kb, 1);
        let mut applied = 0;
        for p in problems() {
            if let Some(a) = aug.augment(&p, AugmentMethod::ContextDimension) {
                applied += 1;
                let (orig, new) = (p.answer(), a.answer());
                assert!(
                    (orig - new).abs() < 1e-6 * orig.abs().max(1.0),
                    "answer changed {orig} -> {new}\n  {} | {}\n  {} | {}",
                    p.text(),
                    p.equation_text(),
                    a.text(),
                    a.equation_text()
                );
                assert_ne!(p.text(), a.text(), "text must actually change");
                assert!(a.op_count() > p.op_count(), "conversion adds operations");
            }
        }
        assert!(applied > 30, "method should usually apply, got {applied}");
    }

    #[test]
    fn context_format_keeps_answer_and_equation() {
        let kb = DimUnitKb::shared();
        let mut aug = Augmenter::new(&kb, 2);
        let mut applied = 0;
        for p in problems() {
            if let Some(a) = aug.augment(&p, AugmentMethod::ContextFormat) {
                applied += 1;
                assert_eq!(p.equation_text(), a.equation_text());
                assert_eq!(p.answer(), a.answer());
                assert_ne!(p.text(), a.text());
            }
        }
        assert!(applied > 30);
    }

    #[test]
    fn question_dimension_rescales_answer() {
        let kb = DimUnitKb::shared();
        let mut aug = Augmenter::new(&kb, 3);
        let mut applied = 0;
        for p in problems() {
            if let Some(a) = aug.augment(&p, AugmentMethod::QuestionDimension) {
                applied += 1;
                let old_unit = kb.unit_by_code(p.answer_unit_code.as_ref().unwrap()).unwrap();
                let new_unit = kb.unit_by_code(a.answer_unit_code.as_ref().unwrap()).unwrap();
                let expect = p.answer() * old_unit.conversion.factor / new_unit.conversion.factor;
                assert!(
                    (a.answer() - expect).abs() < 1e-6 * expect.abs().max(1e-12),
                    "answer {} != expected {expect}",
                    a.answer()
                );
                assert_ne!(p.answer_unit_surface, a.answer_unit_surface);
            }
        }
        assert!(applied > 10, "got {applied}");
    }

    #[test]
    fn table_v_style_example() {
        // Reproduce the Table V question-dimension case: 千克 → 吨 divides
        // the answer by 1000.
        let kb = DimUnitKb::shared();
        let base = problems().into_iter().find(|p| p.answer_unit_surface == "千克").unwrap();
        let mut found = false;
        for seed in 0..40 {
            let mut aug = Augmenter::new(&kb, seed);
            if let Some(a) = aug.augment(&base, AugmentMethod::QuestionDimension) {
                if a.answer_unit_surface == "吨" {
                    assert!((a.answer() - base.answer() / 1000.0).abs() < 1e-9);
                    assert!(a.equation_text().contains("/1000"), "{}", a.equation_text());
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "千克→吨 substitution should be reachable");
    }

    #[test]
    fn qmwp_diversifies_units() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let mut aug = Augmenter::new(&kb, 5);
        let qs = aug.to_qmwp(&ps);
        let distinct = |set: &[MwpProblem]| {
            let mut all: Vec<String> = set
                .iter()
                .flat_map(|p| p.unit_surfaces().into_iter().map(String::from).collect::<Vec<_>>())
                .collect();
            all.sort();
            all.dedup();
            all.len()
        };
        assert!(
            distinct(&qs) > distinct(&ps),
            "Q-MWP must have more unit diversity: {} vs {}",
            distinct(&qs),
            distinct(&ps)
        );
        let ops = |set: &[MwpProblem]| {
            set.iter().map(MwpProblem::op_count).sum::<usize>() as f64 / set.len() as f64
        };
        assert!(ops(&qs) > ops(&ps), "Q-MWP needs more computation steps");
    }

    #[test]
    fn augment_dataset_rate_controls_size() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let mut aug = Augmenter::new(&kb, 6);
        let half = aug.augment_dataset(&ps, 0.5);
        assert_eq!(half.len(), ps.len() + ps.len() / 2);
        let zero = aug.augment_dataset(&ps, 0.0);
        assert_eq!(zero.len(), ps.len());
    }

    #[test]
    fn batch_augmentation_is_thread_count_invariant() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let seq_qmwp = Augmenter::new(&kb, 5).to_qmwp(&ps);
        let seq_data = Augmenter::new(&kb, 6).augment_dataset(&ps, 0.5);
        for threads in [2, 4] {
            let par = dim_par::Parallelism::new(threads);
            assert_eq!(Augmenter::new(&kb, 5).to_qmwp_with(&ps, par), seq_qmwp);
            assert_eq!(Augmenter::new(&kb, 6).augment_dataset_with(&ps, 0.5, par), seq_data);
        }
    }

    #[test]
    fn augmented_equations_still_calculate() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let mut aug = Augmenter::new(&kb, 7);
        for p in aug.to_qmwp(&ps) {
            let via = crate::equation::calculate(&p.equation_text()).unwrap();
            assert!(
                (via - p.answer()).abs() < 1e-6 * p.answer().abs().max(1.0),
                "{} -> {via} vs {}",
                p.equation_text(),
                p.answer()
            );
        }
    }
}
