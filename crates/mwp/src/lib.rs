//! # dim-mwp — math word problems (§V of the paper)
//!
//! N-MWP generation in Math23k / Ape210k style, the equation engine (the
//! "calculator" used for scoring), quantity-oriented data augmentation
//! (Table V) that turns N-MWP into Q-MWP, equation tokenization strategies,
//! and dataset statistics (Table VI).

#![warn(missing_docs)]

pub mod augment;
pub mod equation;
pub mod gen;
pub mod problem;
pub mod solve;
pub mod stats;
pub mod tokenize;

pub use augment::{AugmentMethod, Augmenter};
pub use equation::{calculate, fmt_number, parse, Node, Op, ParseError};
pub use gen::{generate, generate_with, try_generate_with, GenConfig};
pub use problem::{MwpProblem, ProblemQuantity, Seg, Source};
pub use solve::{accuracy, prediction_correct, CandidateSolver, MwpSolver, Prediction};
pub use stats::{dataset_stats, DatasetStats, OP_BUCKET_LABELS};
pub use tokenize::{detokenize, tokenize_equation, EqTokenization};
