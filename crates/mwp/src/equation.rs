//! Equation representation for math word problems.
//!
//! Equations are trees over quantity references and constants. The textual
//! form follows the MWP convention (`x=150*20%/5%-150`), and a recursive-
//! descent parser plus evaluator form the "calculator" the paper uses to
//! score equation-generating models (§VI-D).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl Op {
    fn precedence(self) -> u8 {
        match self {
            Op::Add | Op::Sub => 1,
            Op::Mul | Op::Div => 2,
        }
    }

    fn symbol(self) -> char {
        match self {
            Op::Add => '+',
            Op::Sub => '-',
            Op::Mul => '*',
            Op::Div => '/',
        }
    }
}

/// An equation tree node. `Q(i)` references the i-th quantity of a problem;
/// `Const` holds literal constants (conversion factors, the 1 in work-rate
/// problems); `Bin` combines subtrees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Reference to a problem quantity.
    Q(usize),
    /// A literal constant.
    Const(f64),
    /// A binary operation.
    Bin(Op, Box<Node>, Box<Node>),
}

impl Node {
    /// Convenience constructor.
    pub fn bin(op: Op, l: Node, r: Node) -> Node {
        Node::Bin(op, Box::new(l), Box::new(r))
    }

    /// Number of operators in the tree (the paper's `#Operations`).
    pub fn op_count(&self) -> usize {
        match self {
            Node::Q(_) | Node::Const(_) => 0,
            Node::Bin(_, l, r) => 1 + l.op_count() + r.op_count(),
        }
    }

    /// Evaluates against quantity values (`values[i]` is the arithmetic
    /// value of quantity `i`, percent already divided by 100).
    pub fn eval(&self, values: &[f64]) -> f64 {
        match self {
            Node::Q(i) => values[*i],
            Node::Const(c) => *c,
            Node::Bin(op, l, r) => {
                let (a, b) = (l.eval(values), r.eval(values));
                match op {
                    Op::Add => a + b,
                    Op::Sub => a - b,
                    Op::Mul => a * b,
                    Op::Div => a / b,
                }
            }
        }
    }

    /// Renders to the conventional `x=` equation string. `display[i]` is the
    /// literal rendering of quantity `i` (e.g. `150` or `20%`).
    pub fn render(&self, display: &[String]) -> String {
        format!("x={}", self.render_prec(display, 0))
    }

    fn render_prec(&self, display: &[String], parent_prec: u8) -> String {
        match self {
            Node::Q(i) => display[*i].clone(),
            Node::Const(c) => fmt_number(*c),
            Node::Bin(op, l, r) => {
                let prec = op.precedence();
                let left = l.render_prec(display, prec);
                // Right side of - and / needs parens at equal precedence.
                let right = r.render_prec(display, prec + u8::from(matches!(op, Op::Sub | Op::Div)));
                let body = format!("{left}{}{right}", op.symbol());
                if prec < parent_prec {
                    format!("({body})")
                } else {
                    body
                }
            }
        }
    }

    /// Remaps quantity indices (used when augmentation reorders quantities).
    pub fn map_q(&self, f: &mut impl FnMut(usize) -> Node) -> Node {
        match self {
            Node::Q(i) => f(*i),
            Node::Const(c) => Node::Const(*c),
            Node::Bin(op, l, r) => Node::bin(*op, l.map_q(f), r.map_q(f)),
        }
    }
}

/// Formats a number for equation text.
pub fn fmt_number(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v}")
    }
}

/// Errors from equation parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "equation parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses an equation string (`x=…` prefix optional) into a literal tree
/// where every number is a [`Node::Const`] (percent literals `20%` become
/// `0.2`). This is the calculator's input format.
pub fn parse(input: &str) -> Result<Node, ParseError> {
    let s = input.trim();
    let s = s.strip_prefix("x=").or_else(|| s.strip_prefix("X=")).unwrap_or(s);
    let mut p = Parser { chars: s.chars().collect(), pos: 0 };
    let node = p.expr()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(ParseError(format!("trailing input at {}", p.pos)));
    }
    Ok(node)
}

/// Evaluates an equation string directly (the calculator).
pub fn calculate(input: &str) -> Result<f64, ParseError> {
    let v = parse(input)?.eval(&[]);
    if v.is_finite() {
        Ok(v)
    } else {
        Err(ParseError("non-finite result".into()))
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while matches!(self.chars.get(self.pos), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn expr(&mut self) -> Result<Node, ParseError> {
        let mut acc = self.term()?;
        while let Some(c) = self.peek() {
            let op = match c {
                '+' => Op::Add,
                '-' => Op::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            acc = Node::bin(op, acc, rhs);
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<Node, ParseError> {
        let mut acc = self.factor()?;
        while let Some(c) = self.peek() {
            let op = match c {
                '*' | '×' => Op::Mul,
                '/' | '÷' => Op::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.factor()?;
            acc = Node::bin(op, acc, rhs);
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Node, ParseError> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let inner = self.expr()?;
                if self.peek() != Some(')') {
                    return Err(ParseError("expected )".into()));
                }
                self.pos += 1;
                self.percent(inner)
            }
            Some('-') => {
                self.pos += 1;
                let inner = self.factor()?;
                Ok(Node::bin(Op::Sub, Node::Const(0.0), inner))
            }
            Some(c) if c.is_ascii_digit() || c == '.' => {
                let start = self.pos;
                while matches!(self.chars.get(self.pos), Some(c) if c.is_ascii_digit() || *c == '.')
                {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                let value: f64 =
                    text.parse().map_err(|_| ParseError(format!("bad number {text:?}")))?;
                self.percent(Node::Const(value))
            }
            other => Err(ParseError(format!("unexpected {other:?}"))),
        }
    }

    fn percent(&mut self, node: Node) -> Result<Node, ParseError> {
        if self.chars.get(self.pos) == Some(&'%') {
            self.pos += 1;
            return Ok(Node::bin(Op::Div, node, Node::Const(100.0)));
        }
        Ok(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_dilution_equation() {
        // 小王's dilution: x = 150*20%/5% - 150 = 450.
        let v = calculate("x=150*20%/5%-150").unwrap();
        assert!((v - 450.0).abs() < 1e-9);
    }

    #[test]
    fn precedence_and_parens() {
        assert_eq!(calculate("1+2*3").unwrap(), 7.0);
        assert_eq!(calculate("(1+2)*3").unwrap(), 9.0);
        assert_eq!(calculate("10-2-3").unwrap(), 5.0);
        assert_eq!(calculate("12/2/3").unwrap(), 2.0);
    }

    #[test]
    fn unary_minus() {
        assert_eq!(calculate("-5+8").unwrap(), 3.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("x=1+").is_err());
        assert!(parse("x=(1").is_err());
        assert!(parse("hello").is_err());
        assert!(calculate("1/0").is_err(), "division by zero is non-finite");
    }

    #[test]
    fn render_round_trips_through_calculator() {
        let display = vec!["150".to_string(), "20%".to_string(), "5%".to_string()];
        let values = [150.0, 0.2, 0.05];
        let node = Node::bin(
            Op::Sub,
            Node::bin(Op::Div, Node::bin(Op::Mul, Node::Q(0), Node::Q(1)), Node::Q(2)),
            Node::Q(0),
        );
        let text = node.render(&display);
        assert_eq!(text, "x=150*20%/5%-150");
        let direct = node.eval(&values);
        let parsed = calculate(&text).unwrap();
        assert!((direct - parsed).abs() < 1e-9);
    }

    #[test]
    fn render_parenthesizes_correctly() {
        let d: Vec<String> = vec!["2".into(), "3".into(), "4".into()];
        // (2+3)*4
        let n = Node::bin(Op::Mul, Node::bin(Op::Add, Node::Q(0), Node::Q(1)), Node::Q(2));
        assert_eq!(n.render(&d), "x=(2+3)*4");
        // 2-(3-4)
        let n = Node::bin(Op::Sub, Node::Q(0), Node::bin(Op::Sub, Node::Q(1), Node::Q(2)));
        assert_eq!(n.render(&d), "x=2-(3-4)");
        assert_eq!(calculate(&n.render(&d)).unwrap(), 3.0);
        // 2/(3*4) — equal precedence right of /
        let n = Node::bin(Op::Div, Node::Q(0), Node::bin(Op::Mul, Node::Q(1), Node::Q(2)));
        assert!((calculate(&n.render(&d)).unwrap() - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn op_count_counts_operators() {
        let n = parse("x=1*2/3-4").unwrap();
        assert_eq!(n.op_count(), 3);
        assert_eq!(parse("5").unwrap().op_count(), 0);
        // Percent adds a hidden /100 operator, mirroring the extra
        // computation step it demands.
        assert_eq!(parse("20%").unwrap().op_count(), 1);
    }

    #[test]
    fn map_q_substitutes() {
        let n = Node::bin(Op::Mul, Node::Q(0), Node::Q(1));
        let wrapped = n.map_q(&mut |i| {
            if i == 0 {
                Node::bin(Op::Div, Node::Q(0), Node::Const(1000.0))
            } else {
                Node::Q(i)
            }
        });
        assert!((wrapped.eval(&[5000.0, 2.0]) - 10.0).abs() < 1e-12);
    }
}
