//! Dataset statistics: the Table VI row format.

use crate::problem::MwpProblem;
use std::collections::BTreeSet;

/// Statistics of an MWP evaluation dataset (one Table VI row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Number of problems (`#Num` in Table VI).
    pub problems: usize,
    /// Distinct unit surface forms (`#Units`).
    pub units: usize,
    /// Operation-count histogram over the buckets
    /// `[0,3] (3,5] (5,8] (8,+∞)`.
    pub op_buckets: [usize; 4],
}

/// The Table VI operation buckets.
pub const OP_BUCKET_LABELS: [&str; 4] = ["[0,3]", "(3,5]", "(5,8]", "(8,+inf)"];

/// Computes the statistics of a dataset.
pub fn dataset_stats(problems: &[MwpProblem]) -> DatasetStats {
    let mut units: BTreeSet<String> = BTreeSet::new();
    let mut op_buckets = [0usize; 4];
    for p in problems {
        for s in p.unit_surfaces() {
            units.insert(s.to_string());
        }
        let ops = p.op_count();
        let bucket = match ops {
            0..=3 => 0,
            4..=5 => 1,
            6..=8 => 2,
            _ => 3,
        };
        op_buckets[bucket] += 1;
    }
    DatasetStats { problems: problems.len(), units: units.len(), op_buckets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::Augmenter;
    use crate::gen::{generate, GenConfig};
    use crate::problem::Source;
    use dimkb::DimUnitKb;

    #[test]
    fn buckets_sum_to_total() {
        let ps = generate(Source::Math23k, &GenConfig { count: 225, seed: 1 });
        let s = dataset_stats(&ps);
        assert_eq!(s.problems, 225);
        assert_eq!(s.op_buckets.iter().sum::<usize>(), 225);
    }

    #[test]
    fn table_vi_shape_q_exceeds_n() {
        // Table VI: Q-sets have more units and shift to higher op buckets.
        let kb = DimUnitKb::shared();
        let n = generate(Source::Ape210k, &GenConfig { count: 225, seed: 2 });
        let mut aug = Augmenter::new(&kb, 2);
        let qs = aug.to_qmwp(&n);
        let (sn, sq) = (dataset_stats(&n), dataset_stats(&qs));
        assert!(sq.units > sn.units, "units {} vs {}", sq.units, sn.units);
        let high_n = sn.op_buckets[2] + sn.op_buckets[3];
        let high_q = sq.op_buckets[2] + sq.op_buckets[3];
        assert!(high_q > high_n, "high-op problems {high_q} vs {high_n}");
    }
}
