//! Structured math-word-problem representation.
//!
//! Problems are stored as *segments* (literal text and quantity slots) plus
//! an equation tree over the quantities. Keeping the structure (instead of
//! a flat string) is what makes the paper's quantity-oriented augmentation
//! (§V-B2) mechanical: substituting a unit rewrites one quantity and wraps
//! the equation with the corresponding conversion factor.

use crate::equation::{fmt_number, Node};
use serde::{Deserialize, Serialize};

/// Which dataset style a problem was generated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// Math23k-style (simpler, fewer operations).
    Math23k,
    /// Ape210k-style (larger, more multi-step).
    Ape210k,
}

impl Source {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Source::Math23k => "Math23k",
            Source::Ape210k => "Ape210k",
        }
    }
}

/// A quantity slot of a problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemQuantity {
    /// The written numeric value.
    pub value: f64,
    /// KB unit code; `None` for bare counts.
    pub unit_code: Option<String>,
    /// The unit surface form as written (`千克`, `kg`, `%`, empty for bare).
    pub surface: String,
    /// True when the unit is the percent sign (value is divided by 100 in
    /// arithmetic).
    pub is_percent: bool,
}

impl ProblemQuantity {
    /// The arithmetic value used in equation evaluation.
    pub fn arith_value(&self) -> f64 {
        if self.is_percent {
            self.value / 100.0
        } else {
            self.value
        }
    }

    /// The literal rendering inside equations (`150`, `20%`).
    pub fn equation_literal(&self) -> String {
        if self.is_percent {
            format!("{}%", fmt_number(self.value))
        } else {
            fmt_number(self.value)
        }
    }

    /// The rendering inside problem text (`150千克`, `2.5 kg`).
    pub fn text_rendering(&self) -> String {
        let v = fmt_number(self.value);
        if self.surface.is_empty() {
            v
        } else if self.surface.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
            format!("{v} {}", self.surface)
        } else {
            format!("{v}{}", self.surface)
        }
    }
}

/// One segment of problem text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Seg {
    /// Literal text.
    Text(String),
    /// The i-th quantity.
    Qty(usize),
    /// The answer-unit mention in the question ("多少千克" → `千克`).
    AnswerUnit,
}

/// A structured math word problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MwpProblem {
    /// Stable id within its dataset.
    pub id: u64,
    /// Dataset style.
    pub source: Source,
    /// Text segments; the question part starts at `question_seg`.
    pub segs: Vec<Seg>,
    /// Index into `segs` where the question begins.
    pub question_seg: usize,
    /// The quantities.
    pub quantities: Vec<ProblemQuantity>,
    /// The solution equation over quantity indices.
    pub equation: Node,
    /// KB code of the unit the answer is asked in; `None` for bare counts.
    pub answer_unit_code: Option<String>,
    /// Surface form of the answer unit as written in the question.
    pub answer_unit_surface: String,
    /// Unit-conversion steps embedded in the gold equation by augmentation:
    /// `(quantity index, wrap ratio)` — the equation multiplies `Q(i)` by
    /// the ratio to restore the original scale.
    #[serde(default)]
    pub conversions: Vec<(usize, f64)>,
    /// Final answer conversion ratio applied at the equation root by
    /// question-based dimension substitution (1.0 when none).
    #[serde(default = "one")]
    pub answer_conversion: f64,
}

fn one() -> f64 {
    1.0
}

impl MwpProblem {
    /// Renders the full problem text.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for seg in &self.segs {
            match seg {
                Seg::Text(t) => out.push_str(t),
                Seg::Qty(i) => out.push_str(&self.quantities[*i].text_rendering()),
                Seg::AnswerUnit => out.push_str(&self.answer_unit_surface),
            }
        }
        out
    }

    /// Renders only the context part (before the question).
    pub fn context_text(&self) -> String {
        self.render_range(0, self.question_seg)
    }

    /// Renders only the question part.
    pub fn question_text(&self) -> String {
        self.render_range(self.question_seg, self.segs.len())
    }

    fn render_range(&self, lo: usize, hi: usize) -> String {
        let mut out = String::new();
        for seg in &self.segs[lo..hi] {
            match seg {
                Seg::Text(t) => out.push_str(t),
                Seg::Qty(i) => out.push_str(&self.quantities[*i].text_rendering()),
                Seg::AnswerUnit => out.push_str(&self.answer_unit_surface),
            }
        }
        out
    }

    /// The arithmetic values of the quantities.
    pub fn values(&self) -> Vec<f64> {
        self.quantities.iter().map(ProblemQuantity::arith_value).collect()
    }

    /// The gold numeric answer.
    pub fn answer(&self) -> f64 {
        self.equation.eval(&self.values())
    }

    /// The gold equation string (`x=150*20%/5%-150`).
    pub fn equation_text(&self) -> String {
        let display: Vec<String> =
            self.quantities.iter().map(ProblemQuantity::equation_literal).collect();
        self.equation.render(&display)
    }

    /// Number of operations in the gold equation (Table VI's `#Operations`).
    pub fn op_count(&self) -> usize {
        // Percent literals cost a hidden /100 each time they appear.
        let mut percent_uses = 0usize;
        count_percent_uses(&self.equation, &self.quantities, &mut percent_uses);
        self.equation.op_count() + percent_uses
    }

    /// Distinct unit surface forms appearing in the problem (units of
    /// quantities plus the answer unit).
    pub fn unit_surfaces(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .quantities
            .iter()
            .map(|q| q.surface.as_str())
            .chain(std::iter::once(self.answer_unit_surface.as_str()))
            .filter(|s| !s.is_empty())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Which quantities appear in the question part (rather than context).
    pub fn question_quantities(&self) -> Vec<usize> {
        self.segs[self.question_seg..]
            .iter()
            .filter_map(|s| if let Seg::Qty(i) = s { Some(*i) } else { None })
            .collect()
    }
}

fn count_percent_uses(node: &Node, quantities: &[ProblemQuantity], acc: &mut usize) {
    match node {
        Node::Q(i) => {
            if quantities[*i].is_percent {
                *acc += 1;
            }
        }
        Node::Const(_) => {}
        Node::Bin(_, l, r) => {
            count_percent_uses(l, quantities, acc);
            count_percent_uses(r, quantities, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equation::Op;

    /// The Table V dilution problem, built by hand.
    pub(crate) fn dilution() -> MwpProblem {
        MwpProblem {
            id: 0,
            source: Source::Math23k,
            segs: vec![
                Seg::Text("小王要将".into()),
                Seg::Qty(0),
                Seg::Text("含药量".into()),
                Seg::Qty(1),
                Seg::Text("的农药稀释成含药量".into()),
                Seg::Qty(2),
                Seg::Text("的药水，".into()),
                Seg::Text("需要加水多少".into()),
                Seg::AnswerUnit,
                Seg::Text("？".into()),
            ],
            question_seg: 7,
            quantities: vec![
                ProblemQuantity {
                    value: 150.0,
                    unit_code: Some("KiloGM".into()),
                    surface: "千克".into(),
                    is_percent: false,
                },
                ProblemQuantity {
                    value: 20.0,
                    unit_code: Some("PERCENT".into()),
                    surface: "%".into(),
                    is_percent: true,
                },
                ProblemQuantity {
                    value: 5.0,
                    unit_code: Some("PERCENT".into()),
                    surface: "%".into(),
                    is_percent: true,
                },
            ],
            equation: Node::bin(
                Op::Sub,
                Node::bin(Op::Div, Node::bin(Op::Mul, Node::Q(0), Node::Q(1)), Node::Q(2)),
                Node::Q(0),
            ),
            answer_unit_code: Some("KiloGM".into()),
            answer_unit_surface: "千克".into(),
            conversions: vec![],
            answer_conversion: 1.0,
        }
    }

    #[test]
    fn dilution_matches_table_v() {
        let p = dilution();
        assert_eq!(
            p.text(),
            "小王要将150千克含药量20%的农药稀释成含药量5%的药水，需要加水多少千克？"
        );
        assert!((p.answer() - 450.0).abs() < 1e-9);
        assert_eq!(p.equation_text(), "x=150*20%/5%-150");
    }

    #[test]
    fn calculator_agrees_with_tree() {
        let p = dilution();
        let via_text = crate::equation::calculate(&p.equation_text()).unwrap();
        assert!((via_text - p.answer()).abs() < 1e-9);
    }

    #[test]
    fn context_question_split() {
        let p = dilution();
        assert!(p.context_text().ends_with("药水，"));
        assert!(p.question_text().starts_with("需要加水"));
        assert!(p.question_quantities().is_empty());
    }

    #[test]
    fn op_count_includes_percent_steps() {
        let p = dilution();
        // 3 explicit ops + 2 percent normalizations.
        assert_eq!(p.op_count(), 5);
    }

    #[test]
    fn unit_surfaces_deduplicate() {
        let p = dilution();
        assert_eq!(p.unit_surfaces(), vec!["%", "千克"]);
    }
}
