//! Solver interface and the calculator-based accuracy scorer (§VI-D: "for
//! equation-generating models, we use a calculator to assess the accuracy
//! of their equations").

use crate::equation::calculate;
use crate::problem::MwpProblem;

/// A model's prediction for one problem.
#[derive(Debug, Clone, PartialEq)]
pub enum Prediction {
    /// An equation string to be run through the calculator.
    Equation(String),
    /// A direct numeric answer.
    Answer(f64),
    /// No prediction (counts as wrong).
    None,
}

/// Anything that can solve MWPs.
pub trait MwpSolver {
    /// Display name for result tables.
    fn name(&self) -> String;

    /// Solve one problem.
    fn solve(&mut self, problem: &MwpProblem) -> Prediction;
}

/// Solvers that can expose a *ranked list* of candidate predictions,
/// best first. This is the hook verification passes (`dim-verify`) plug
/// into: a reranker walks the beam and promotes the first candidate that
/// survives dimensional checking. The default implementation wraps
/// [`MwpSolver::solve`] as a beam of one.
pub trait CandidateSolver: MwpSolver {
    /// Up to `k` candidate predictions, best first. Must be a superset
    /// ordering of [`MwpSolver::solve`]: the first candidate is the
    /// prediction `solve` would return.
    fn candidates(&mut self, problem: &MwpProblem, k: usize) -> Vec<Prediction> {
        if k == 0 {
            Vec::new()
        } else {
            vec![self.solve(problem)]
        }
    }
}

/// Relative tolerance for answer matching.
const REL_TOL: f64 = 1e-4;

/// Does a prediction match the gold answer?
pub fn prediction_correct(problem: &MwpProblem, prediction: &Prediction) -> bool {
    let gold = problem.answer();
    let value = match prediction {
        Prediction::Equation(eq) => match calculate(eq) {
            Ok(v) => v,
            Err(_) => return false,
        },
        Prediction::Answer(v) => *v,
        Prediction::None => return false,
    };
    (value - gold).abs() <= REL_TOL * gold.abs().max(1e-9)
}

/// Accuracy of a solver over a dataset.
pub fn accuracy(solver: &mut dyn MwpSolver, problems: &[MwpProblem]) -> f64 {
    if problems.is_empty() {
        return 0.0;
    }
    let correct = problems
        .iter()
        .filter(|p| prediction_correct(p, &solver.solve(p)))
        .count();
    correct as f64 / problems.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::problem::Source;

    struct GoldEq;

    impl MwpSolver for GoldEq {
        fn name(&self) -> String {
            "gold-equation".into()
        }

        fn solve(&mut self, problem: &MwpProblem) -> Prediction {
            Prediction::Equation(problem.equation_text())
        }
    }

    struct Silent;

    impl MwpSolver for Silent {
        fn name(&self) -> String {
            "silent".into()
        }

        fn solve(&mut self, _p: &MwpProblem) -> Prediction {
            Prediction::None
        }
    }

    impl CandidateSolver for GoldEq {}

    #[test]
    fn default_candidates_wrap_solve() {
        let ps = generate(Source::Math23k, &GenConfig { count: 1, seed: 3 });
        let mut s = GoldEq;
        assert_eq!(s.candidates(&ps[0], 0), Vec::<Prediction>::new());
        assert_eq!(s.candidates(&ps[0], 3), vec![s.solve(&ps[0])]);
    }

    #[test]
    fn gold_equations_score_full_accuracy() {
        let ps = generate(Source::Math23k, &GenConfig { count: 50, seed: 3 });
        assert_eq!(accuracy(&mut GoldEq, &ps), 1.0);
    }

    #[test]
    fn silence_scores_zero() {
        let ps = generate(Source::Math23k, &GenConfig { count: 10, seed: 3 });
        assert_eq!(accuracy(&mut Silent, &ps), 0.0);
    }

    #[test]
    fn malformed_equation_is_wrong_not_fatal() {
        let ps = generate(Source::Math23k, &GenConfig { count: 1, seed: 3 });
        assert!(!prediction_correct(&ps[0], &Prediction::Equation("x=1+".into())));
    }

    #[test]
    fn direct_answers_are_scored_with_tolerance() {
        let ps = generate(Source::Math23k, &GenConfig { count: 5, seed: 4 });
        for p in &ps {
            assert!(prediction_correct(p, &Prediction::Answer(p.answer() * (1.0 + 1e-6))));
            assert!(!prediction_correct(p, &Prediction::Answer(p.answer() * 1.5 + 1.0)));
        }
    }
}
