//! Equation tokenization (§V-B3).
//!
//! The paper investigates digit tokenization (after GenBERT): a word-piece
//! of an equation `##e1…##ek` with `e ∈ D ∪ Op` is split into single-symbol
//! pieces `##e1, …, ##ek`. The ablation (Fig. 7) finds it *hurts* for
//! larger models; both strategies are provided so the ablation can run.

/// Equation tokenization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EqTokenization {
    /// Regular tokenization: numbers stay whole (`150`, `20%`).
    Regular,
    /// Digit tokenization: every digit and operator is its own piece.
    Digit,
}

/// The symbol alphabet of equations: digits and the operator set
/// `{+,-,*,/,%,=,(,)}` of the paper, plus the decimal point.
pub fn is_equation_symbol(c: char) -> bool {
    c.is_ascii_digit() || matches!(c, '+' | '-' | '*' | '/' | '%' | '=' | '(' | ')' | '.' | 'x')
}

/// Tokenizes an equation string under the given strategy.
pub fn tokenize_equation(eq: &str, strategy: EqTokenization) -> Vec<String> {
    match strategy {
        EqTokenization::Digit => eq
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| c.to_string())
            .collect(),
        EqTokenization::Regular => {
            let mut out = Vec::new();
            let mut num = String::new();
            for c in eq.chars() {
                if c.is_whitespace() {
                    continue;
                }
                if c.is_ascii_digit() || c == '.' {
                    num.push(c);
                } else {
                    if !num.is_empty() {
                        out.push(std::mem::take(&mut num));
                    }
                    out.push(c.to_string());
                }
            }
            if !num.is_empty() {
                out.push(num);
            }
            out
        }
    }
}

/// Reassembles tokens into an equation string (inverse of tokenization).
pub fn detokenize(tokens: &[String]) -> String {
    tokens.concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_keeps_numbers_whole() {
        let toks = tokenize_equation("x=150*20%/5%-150", EqTokenization::Regular);
        assert_eq!(toks, vec!["x", "=", "150", "*", "20", "%", "/", "5", "%", "-", "150"]);
    }

    #[test]
    fn digit_splits_everything() {
        let toks = tokenize_equation("x=15*2", EqTokenization::Digit);
        assert_eq!(toks, vec!["x", "=", "1", "5", "*", "2"]);
    }

    #[test]
    fn roundtrip_via_detokenize() {
        let eq = "x=(1+2)*3.5";
        for s in [EqTokenization::Regular, EqTokenization::Digit] {
            assert_eq!(detokenize(&tokenize_equation(eq, s)), eq);
        }
    }

    #[test]
    fn digit_produces_longer_sequences() {
        let eq = "x=1500*23%";
        let r = tokenize_equation(eq, EqTokenization::Regular).len();
        let d = tokenize_equation(eq, EqTokenization::Digit).len();
        assert!(d > r);
    }
}
