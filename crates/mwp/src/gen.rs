//! N-MWP generators in Math23k and Ape210k style.
//!
//! The two source datasets are gated downloads; these generators reproduce
//! their *statistical profile* (Table VI): Chinese elementary problems,
//! uniform unit representation (the N-MWP property the paper criticizes),
//! with Ape210k skewing toward more operations per problem. Q-MWP variants
//! are then derived by quantity-oriented augmentation (`crate::augment`).

use crate::equation::{Node, Op};
use crate::problem::{MwpProblem, ProblemQuantity, Seg, Source};
use dimkb::degrade::{self, BudgetExceeded, Degraded, ErrorBudget, RecordError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// Observability (no-ops unless `dim_obs::enable()` was called).
static GEN_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("mwp.gen");
static GEN_PROBLEMS: dim_obs::Counter = dim_obs::Counter::new("mwp.problems");

/// Configuration for problem generation.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of problems.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { count: 225, seed: 101 }
    }
}

fn q(value: f64, code: &str, surface: &str) -> ProblemQuantity {
    ProblemQuantity {
        value,
        unit_code: if code.is_empty() { None } else { Some(code.to_string()) },
        surface: surface.to_string(),
        is_percent: surface == "%",
    }
}

fn t(s: &str) -> Seg {
    Seg::Text(s.to_string())
}

/// Nice random integer in a range, rounded to the step.
fn nice(rng: &mut StdRng, lo: i64, hi: i64, step: i64) -> f64 {
    let v = rng.gen_range(lo..=hi);
    ((v / step) * step).max(step) as f64
}

type Template = fn(&mut StdRng, u64, Source) -> MwpProblem;

fn dilution(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let mass = nice(rng, 50, 400, 10);
    let high = nice(rng, 10, 40, 5);
    let low = nice(rng, 2, (high as i64 / 2).max(3), 1);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("小王要将"),
            Seg::Qty(0),
            t("含药量"),
            Seg::Qty(1),
            t("的农药稀释成含药量"),
            Seg::Qty(2),
            t("的药水，"),
            t("需要加水多少"),
            Seg::AnswerUnit,
            t("？"),
        ],
        question_seg: 7,
        quantities: vec![q(mass, "KiloGM", "千克"), q(high, "PERCENT", "%"), q(low, "PERCENT", "%")],
        equation: Node::bin(
            Op::Sub,
            Node::bin(Op::Div, Node::bin(Op::Mul, Node::Q(0), Node::Q(1)), Node::Q(2)),
            Node::Q(0),
        ),
        answer_unit_code: Some("KiloGM".into()),
        answer_unit_surface: "千克".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn travel_distance(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let speed = nice(rng, 30, 120, 5);
    let hours = nice(rng, 2, 9, 1);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一辆汽车以每小时"),
            Seg::Qty(0),
            t("的速度匀速行驶了"),
            Seg::Qty(1),
            t("，"),
            t("这辆汽车一共行驶了多少"),
            Seg::AnswerUnit,
            t("？"),
        ],
        question_seg: 5,
        quantities: vec![q(speed, "KiloM", "千米"), q(hours, "HR", "小时")],
        equation: Node::bin(Op::Mul, Node::Q(0), Node::Q(1)),
        answer_unit_code: Some("KiloM".into()),
        answer_unit_surface: "千米".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn travel_time(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let speed = nice(rng, 40, 100, 10);
    let mult = nice(rng, 2, 8, 1);
    let dist = speed * mult;
    MwpProblem {
        id,
        source,
        segs: vec![
            t("甲乙两地相距"),
            Seg::Qty(0),
            t("，一列火车以每小时"),
            Seg::Qty(1),
            t("的速度从甲地开往乙地，"),
            t("需要多少"),
            Seg::AnswerUnit,
            t("到达？"),
        ],
        question_seg: 5,
        quantities: vec![q(dist, "KiloM", "千米"), q(speed, "KiloM", "千米")],
        equation: Node::bin(Op::Div, Node::Q(0), Node::Q(1)),
        answer_unit_code: Some("HR".into()),
        answer_unit_surface: "小时".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn rectangle_area(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let len = nice(rng, 6, 60, 2);
    let wid = nice(rng, 3, len as i64 - 1, 1);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一块长方形菜地长"),
            Seg::Qty(0),
            t("，宽"),
            Seg::Qty(1),
            t("，"),
            t("这块菜地的面积是多少平方"),
            Seg::AnswerUnit,
            t("？"),
        ],
        question_seg: 5,
        quantities: vec![q(len, "M", "米"), q(wid, "M", "米")],
        equation: Node::bin(Op::Mul, Node::Q(0), Node::Q(1)),
        answer_unit_code: Some("M2".into()),
        answer_unit_surface: "米".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn rectangle_perimeter(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let len = nice(rng, 5, 50, 1);
    let wid = nice(rng, 2, len as i64 - 1, 1);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一个长方形花坛长"),
            Seg::Qty(0),
            t("，宽"),
            Seg::Qty(1),
            t("，"),
            t("它的周长是多少"),
            Seg::AnswerUnit,
            t("？"),
        ],
        question_seg: 5,
        quantities: vec![q(len, "M", "米"), q(wid, "M", "米")],
        equation: Node::bin(Op::Mul, Node::bin(Op::Add, Node::Q(0), Node::Q(1)), Node::Const(2.0)),
        answer_unit_code: Some("M".into()),
        answer_unit_surface: "米".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn remaining_cargo(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let trips = nice(rng, 3, 9, 1);
    let per = nice(rng, 2, 8, 1);
    let total = trips * per + nice(rng, 5, 40, 5);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("仓库里有货物"),
            Seg::Qty(0),
            t("，运走了"),
            Seg::Qty(1),
            t("车，每车装"),
            Seg::Qty(2),
            t("，"),
            t("仓库里还剩多少"),
            Seg::AnswerUnit,
            t("的货物？"),
        ],
        question_seg: 7,
        quantities: vec![q(total, "TONNE", "吨"), q(trips, "", ""), q(per, "TONNE", "吨")],
        equation: Node::bin(Op::Sub, Node::Q(0), Node::bin(Op::Mul, Node::Q(1), Node::Q(2))),
        answer_unit_code: Some("TONNE".into()),
        answer_unit_surface: "吨".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn rope_pieces(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let per = nice(rng, 2, 6, 1);
    let total = per * nice(rng, 4, 15, 1);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一根绳子长"),
            Seg::Qty(0),
            t("，剪成每段"),
            Seg::Qty(1),
            t("的小段，"),
            t("一共能剪成多少段？"),
        ],
        question_seg: 5,
        quantities: vec![q(total, "M", "米"), q(per, "M", "米")],
        equation: Node::bin(Op::Div, Node::Q(0), Node::Q(1)),
        answer_unit_code: None,
        answer_unit_surface: String::new(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn water_remaining(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let vol = nice(rng, 100, 900, 50);
    let pct = nice(rng, 10, 80, 5);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("水池里有水"),
            Seg::Qty(0),
            t("，用去了其中的"),
            Seg::Qty(1),
            t("，"),
            t("水池里还剩多少"),
            Seg::AnswerUnit,
            t("的水？"),
        ],
        question_seg: 5,
        quantities: vec![q(vol, "L", "升"), q(pct, "PERCENT", "%")],
        equation: Node::bin(Op::Sub, Node::Q(0), Node::bin(Op::Mul, Node::Q(0), Node::Q(1))),
        answer_unit_code: Some("L".into()),
        answer_unit_surface: "升".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn electricity(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let kw = nice(rng, 1, 6, 1);
    let hours = nice(rng, 2, 12, 1);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一台功率为"),
            Seg::Qty(0),
            t("的空调连续运行"),
            Seg::Qty(1),
            t("，"),
            t("一共消耗多少"),
            Seg::AnswerUnit,
            t("的电能？"),
        ],
        question_seg: 5,
        quantities: vec![q(kw, "KiloW", "千瓦"), q(hours, "HR", "小时")],
        equation: Node::bin(Op::Mul, Node::Q(0), Node::Q(1)),
        answer_unit_code: Some("KiloWH".into()),
        answer_unit_surface: "千瓦时".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn density_mass(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let density = nice(rng, 2, 9, 1);
    let vol = nice(rng, 10, 200, 10);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("某种金属的密度是每立方厘米"),
            Seg::Qty(0),
            t("，一块体积为"),
            Seg::Qty(1),
            t("的这种金属，"),
            t("质量是多少"),
            Seg::AnswerUnit,
            t("？"),
        ],
        question_seg: 5,
        quantities: vec![q(density, "GM", "克"), q(vol, "CM3", "立方厘米")],
        equation: Node::bin(Op::Mul, Node::Q(0), Node::Q(1)),
        answer_unit_code: Some("GM".into()),
        answer_unit_surface: "克".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn work_together(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let a = nice(rng, 4, 12, 2);
    let b = a * 2.0;
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一项工程，甲队单独做需要"),
            Seg::Qty(0),
            t("完成，乙队单独做需要"),
            Seg::Qty(1),
            t("完成，"),
            t("两队合作需要多少"),
            Seg::AnswerUnit,
            t("完成？"),
        ],
        question_seg: 5,
        quantities: vec![q(a, "DAY", "天"), q(b, "DAY", "天")],
        equation: Node::bin(
            Op::Div,
            Node::Const(1.0),
            Node::bin(
                Op::Add,
                Node::bin(Op::Div, Node::Const(1.0), Node::Q(0)),
                Node::bin(Op::Div, Node::Const(1.0), Node::Q(1)),
            ),
        ),
        answer_unit_code: Some("DAY".into()),
        answer_unit_surface: "天".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

// ---- Ape210k-style multi-step templates -----------------------------------

fn apples_bags(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let crates = nice(rng, 5, 20, 1);
    let per = nice(rng, 10, 30, 5);
    let bags = nice(rng, 2, 10, 1);
    let sold = (crates * per / 2.0 / bags).floor() * bags;
    MwpProblem {
        id,
        source,
        segs: vec![
            t("商店运来"),
            Seg::Qty(0),
            t("筐苹果，每筐重"),
            Seg::Qty(1),
            t("，卖出"),
            Seg::Qty(2),
            t("后，剩下的苹果平均装成"),
            Seg::Qty(3),
            t("袋，"),
            t("每袋苹果重多少"),
            Seg::AnswerUnit,
            t("？"),
        ],
        question_seg: 9,
        quantities: vec![
            q(crates, "", ""),
            q(per, "KiloGM", "千克"),
            q(sold, "KiloGM", "千克"),
            q(bags, "", ""),
        ],
        equation: Node::bin(
            Op::Div,
            Node::bin(Op::Sub, Node::bin(Op::Mul, Node::Q(0), Node::Q(1)), Node::Q(2)),
            Node::Q(3),
        ),
        answer_unit_code: Some("KiloGM".into()),
        answer_unit_surface: "千克".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn two_stage_travel(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let s1 = nice(rng, 40, 90, 10);
    let t1 = nice(rng, 2, 5, 1);
    let s2 = nice(rng, 60, 110, 10);
    let t2 = nice(rng, 1, 4, 1);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一辆货车先以每小时"),
            Seg::Qty(0),
            t("行驶了"),
            Seg::Qty(1),
            t("，又以每小时"),
            Seg::Qty(2),
            t("行驶了"),
            Seg::Qty(3),
            t("，"),
            t("这辆货车一共行驶了多少"),
            Seg::AnswerUnit,
            t("？"),
        ],
        question_seg: 9,
        quantities: vec![
            q(s1, "KiloM", "千米"),
            q(t1, "HR", "小时"),
            q(s2, "KiloM", "千米"),
            q(t2, "HR", "小时"),
        ],
        equation: Node::bin(
            Op::Add,
            Node::bin(Op::Mul, Node::Q(0), Node::Q(1)),
            Node::bin(Op::Mul, Node::Q(2), Node::Q(3)),
        ),
        answer_unit_code: Some("KiloM".into()),
        answer_unit_surface: "千米".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn mixture_price(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let m1 = nice(rng, 2, 10, 1);
    let c1 = nice(rng, 10, 40, 5);
    let m2 = nice(rng, 2, 10, 1);
    let c2 = nice(rng, 10, 40, 5);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("把"),
            Seg::Qty(0),
            t("每千克含糖"),
            Seg::Qty(1),
            t("的糖水与"),
            Seg::Qty(2),
            t("每千克含糖"),
            Seg::Qty(3),
            t("的糖水混合，"),
            t("混合后平均每千克糖水含糖多少"),
            Seg::AnswerUnit,
            t("？"),
        ],
        question_seg: 9,
        quantities: vec![
            q(m1, "KiloGM", "千克"),
            q(c1, "GM", "克"),
            q(m2, "KiloGM", "千克"),
            q(c2, "GM", "克"),
        ],
        equation: Node::bin(
            Op::Div,
            Node::bin(
                Op::Add,
                Node::bin(Op::Mul, Node::Q(0), Node::Q(1)),
                Node::bin(Op::Mul, Node::Q(2), Node::Q(3)),
            ),
            Node::bin(Op::Add, Node::Q(0), Node::Q(2)),
        ),
        answer_unit_code: Some("GM".into()),
        answer_unit_surface: "克".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn discount_chain(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let base = nice(rng, 200, 900, 50);
    let p1 = nice(rng, 10, 30, 5);
    let p2 = nice(rng, 5, 20, 5);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一批水果重"),
            Seg::Qty(0),
            t("，第一天卖出"),
            Seg::Qty(1),
            t("，第二天卖出余下的"),
            Seg::Qty(2),
            t("，"),
            t("还剩下多少"),
            Seg::AnswerUnit,
            t("的水果？"),
        ],
        question_seg: 7,
        quantities: vec![q(base, "KiloGM", "千克"), q(p1, "PERCENT", "%"), q(p2, "PERCENT", "%")],
        equation: Node::bin(
            Op::Mul,
            Node::bin(Op::Sub, Node::Q(0), Node::bin(Op::Mul, Node::Q(0), Node::Q(1))),
            Node::bin(Op::Sub, Node::Const(1.0), Node::Q(2)),
        ),
        answer_unit_code: Some("KiloGM".into()),
        answer_unit_surface: "千克".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn tank_fill(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let rate = nice(rng, 20, 90, 10);
    let minutes = nice(rng, 5, 30, 5);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一个水箱用每分钟"),
            Seg::Qty(0),
            t("的水管注水，注了"),
            Seg::Qty(1),
            t("，"),
            t("水箱里一共有多少"),
            Seg::AnswerUnit,
            t("的水？"),
        ],
        question_seg: 5,
        quantities: vec![q(rate, "L", "升"), q(minutes, "MIN", "分钟")],
        equation: Node::bin(Op::Mul, Node::Q(0), Node::Q(1)),
        answer_unit_code: Some("L".into()),
        answer_unit_surface: "升".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn average_speed(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let hours = nice(rng, 2, 6, 1);
    let dist = nice(rng, 20, 90, 10) * hours;
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一名骑手"),
            Seg::Qty(1),
            t("内骑行了"),
            Seg::Qty(0),
            t("，"),
            t("他平均每小时骑行多少"),
            Seg::AnswerUnit,
            t("？"),
        ],
        question_seg: 5,
        quantities: vec![q(dist, "KiloM", "千米"), q(hours, "HR", "小时")],
        equation: Node::bin(Op::Div, Node::Q(0), Node::Q(1)),
        answer_unit_code: Some("KiloM".into()),
        answer_unit_surface: "千米".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn unit_mass_price(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let boxes = nice(rng, 4, 12, 1);
    let per = nice(rng, 5, 25, 5);
    let extra = nice(rng, 2, 15, 1);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("食堂买来"),
            Seg::Qty(0),
            t("箱面粉，每箱重"),
            Seg::Qty(1),
            t("，又买来"),
            Seg::Qty(2),
            t("大米，"),
            t("食堂一共买了多少"),
            Seg::AnswerUnit,
            t("的粮食？"),
        ],
        question_seg: 7,
        quantities: vec![q(boxes, "", ""), q(per, "KiloGM", "千克"), q(extra, "KiloGM", "千克")],
        equation: Node::bin(Op::Add, Node::bin(Op::Mul, Node::Q(0), Node::Q(1)), Node::Q(2)),
        answer_unit_code: Some("KiloGM".into()),
        answer_unit_surface: "千克".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn reading_pages(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let per_day = nice(rng, 10, 40, 5);
    let days = nice(rng, 3, 9, 1);
    let total = per_day * days + nice(rng, 20, 80, 10);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一本书共"),
            Seg::Qty(0),
            t("页，小明每天读"),
            Seg::Qty(1),
            t("页，读了"),
            Seg::Qty(2),
            t("，"),
            t("还剩多少页没有读？"),
        ],
        question_seg: 7,
        quantities: vec![q(total, "", ""), q(per_day, "", ""), q(days, "DAY", "天")],
        equation: Node::bin(Op::Sub, Node::Q(0), Node::bin(Op::Mul, Node::Q(1), Node::Q(2))),
        answer_unit_code: None,
        answer_unit_surface: String::new(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn orchard_ratio(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let total = nice(rng, 200, 900, 50);
    let pct = nice(rng, 20, 60, 5);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("果园里共有果树"),
            Seg::Qty(0),
            t("棵，其中苹果树占"),
            Seg::Qty(1),
            t("，"),
            t("苹果树有多少棵？"),
        ],
        question_seg: 5,
        quantities: vec![q(total, "", ""), q(pct, "PERCENT", "%")],
        equation: Node::bin(Op::Mul, Node::Q(0), Node::Q(1)),
        answer_unit_code: None,
        answer_unit_surface: String::new(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

fn irrigation_chain(rng: &mut StdRng, id: u64, source: Source) -> MwpProblem {
    let area = nice(rng, 20, 80, 10);
    let per = nice(rng, 200, 600, 50);
    let hours = nice(rng, 2, 8, 1);
    MwpProblem {
        id,
        source,
        segs: vec![
            t("一台抽水机每小时可以灌溉"),
            Seg::Qty(0),
            t("的农田，用水"),
            Seg::Qty(1),
            t("，工作"),
            Seg::Qty(2),
            t("后，"),
            t("一共用水多少"),
            Seg::AnswerUnit,
            t("？"),
        ],
        question_seg: 7,
        quantities: vec![q(area, "MU-ZH", "亩"), q(per, "L", "升"), q(hours, "HR", "小时")],
        equation: Node::bin(Op::Mul, Node::Q(1), Node::Q(2)),
        answer_unit_code: Some("L".into()),
        answer_unit_surface: "升".into(),
        conversions: vec![],
        answer_conversion: 1.0,
    }
}

const MATH23K_TEMPLATES: &[(Template, u32)] = &[
    (dilution, 2),
    (travel_distance, 3),
    (travel_time, 3),
    (rectangle_area, 3),
    (rectangle_perimeter, 2),
    (remaining_cargo, 2),
    (rope_pieces, 2),
    (water_remaining, 2),
    (electricity, 1),
    (density_mass, 1),
    (work_together, 1),
    (two_stage_travel, 1),
    (tank_fill, 2),
    (average_speed, 2),
    (unit_mass_price, 2),
    (reading_pages, 2),
    (orchard_ratio, 2),
];

const APE210K_TEMPLATES: &[(Template, u32)] = &[
    (dilution, 2),
    (travel_distance, 1),
    (travel_time, 1),
    (rectangle_area, 1),
    (remaining_cargo, 2),
    (water_remaining, 1),
    (electricity, 1),
    (density_mass, 1),
    (work_together, 2),
    (apples_bags, 3),
    (two_stage_travel, 3),
    (mixture_price, 2),
    (discount_chain, 3),
    (tank_fill, 1),
    (average_speed, 1),
    (unit_mass_price, 2),
    (reading_pages, 1),
    (orchard_ratio, 1),
    (irrigation_chain, 2),
];

/// Generates an N-MWP dataset in the given style.
pub fn generate(source: Source, config: &GenConfig) -> Vec<MwpProblem> {
    generate_with(source, config, dim_par::Parallelism::SEQUENTIAL)
}

/// Like [`generate`], fanning problem construction out across `par`.
///
/// Each problem draws from its own RNG stream derived from
/// `(config.seed, id)`, so the dataset is byte-identical for every thread
/// count: `dim_par`'s morsel scheduler decides only which worker builds
/// problem `id` (clamping the width to the host's usable cores), while the
/// index-ordered merge fixes the output position.
pub fn generate_with(
    source: Source,
    config: &GenConfig,
    par: dim_par::Parallelism,
) -> Vec<MwpProblem> {
    let _span = GEN_SPAN.span();
    GEN_PROBLEMS.add(config.count as u64);
    let templates = match source {
        Source::Math23k => MATH23K_TEMPLATES,
        Source::Ape210k => APE210K_TEMPLATES,
    };
    let total_weight: u32 = templates.iter().map(|(_, w)| w).sum();
    let ids: Vec<u64> = (0..config.count as u64).collect();
    dim_par::par_map(par, &ids, |&id| gen_one(templates, total_weight, config.seed, id, source))
}

/// Generates problem `id` from its own `(seed, id)` RNG stream — the shared
/// body of [`generate_with`] and [`try_generate_with`].
fn gen_one(
    templates: &[(Template, u32)],
    total_weight: u32,
    seed: u64,
    id: u64,
    source: Source,
) -> MwpProblem {
    let mut rng = StdRng::seed_from_u64(dim_par::seed_for(seed, id));
    let mut pick = rng.gen_range(0..total_weight);
    let template = templates
        .iter()
        .find(|(_, w)| {
            if pick < *w {
                true
            } else {
                pick -= w;
                false
            }
        })
        .map(|(t, _)| t)
        // lint:allow(no_panic, pick is drawn from 0..total_weight so the weighted scan always lands on a template)
        .expect("weights cover range");
    template(&mut rng, id, source)
}

/// The chaos/quarantine site for a generation source. The source is part of
/// the site name so the two datasets get independent fault streams and
/// distinguishable manifest entries.
fn gen_site(source: Source) -> &'static str {
    match source {
        Source::Math23k => "mwp.gen.math23k",
        Source::Ape210k => "mwp.gen.ape210k",
    }
}

/// Degraded-mode [`generate_with`]: each problem is generated in panic
/// isolation; a faulted record is quarantined instead of aborting the batch,
/// subject to `budget`. With no faults, slot `i` equals the classic output's
/// element `i` exactly.
pub fn try_generate_with(
    source: Source,
    config: &GenConfig,
    par: dim_par::Parallelism,
    budget: ErrorBudget,
) -> Result<Degraded<MwpProblem>, BudgetExceeded> {
    let _span = GEN_SPAN.span();
    GEN_PROBLEMS.add(config.count as u64);
    let templates = match source {
        Source::Math23k => MATH23K_TEMPLATES,
        Source::Ape210k => APE210K_TEMPLATES,
    };
    let total_weight: u32 = templates.iter().map(|(_, w)| w).sum();
    let ids: Vec<u64> = (0..config.count as u64).collect();
    let site = gen_site(source);
    let slots = dim_par::try_par_map_indexed(par, &ids, |i, &id| {
        degrade::inject(site, i)?;
        Ok(gen_one(templates, total_weight, config.seed, id, source))
    });
    let slots = slots.into_iter().map(|slot| match slot {
        Ok(inner) => inner,
        Err(p) => Err(RecordError::Panicked(p.message)),
    });
    degrade::collect_degraded(site, slots, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equation::calculate;

    #[test]
    fn generated_problems_are_consistent() {
        for source in [Source::Math23k, Source::Ape210k] {
            for p in generate(source, &GenConfig { count: 100, seed: 9 }) {
                let answer = p.answer();
                assert!(answer.is_finite() && answer > 0.0, "{}", p.text());
                let via_calc = calculate(&p.equation_text()).unwrap();
                assert!(
                    (via_calc - answer).abs() < 1e-6 * answer.abs().max(1.0),
                    "calculator disagrees on {}: {via_calc} vs {answer}",
                    p.equation_text()
                );
            }
        }
    }

    #[test]
    fn ape210k_has_more_operations() {
        let cfg = GenConfig { count: 200, seed: 4 };
        let mean_ops = |src| {
            let ps = generate(src, &cfg);
            ps.iter().map(MwpProblem::op_count).sum::<usize>() as f64 / ps.len() as f64
        };
        assert!(
            mean_ops(Source::Ape210k) > mean_ops(Source::Math23k),
            "Ape210k skews multi-step (Table VI shape)"
        );
    }

    #[test]
    fn n_mwp_units_are_uniform() {
        // The N-MWP property the paper criticizes: few distinct units.
        let ps = generate(Source::Math23k, &GenConfig { count: 225, seed: 5 });
        let mut surfaces: Vec<String> = ps
            .iter()
            .flat_map(|p| p.unit_surfaces().into_iter().map(String::from).collect::<Vec<_>>())
            .collect();
        surfaces.sort();
        surfaces.dedup();
        assert!(surfaces.len() <= 20, "N-MWP should be unit-uniform, got {surfaces:?}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig { count: 20, seed: 77 };
        assert_eq!(generate(Source::Math23k, &cfg), generate(Source::Math23k, &cfg));
    }

    #[test]
    fn parallel_generation_is_thread_count_invariant() {
        let cfg = GenConfig { count: 300, seed: 77 };
        for source in [Source::Math23k, Source::Ape210k] {
            let seq = generate(source, &cfg);
            for threads in [2, 4] {
                let par = generate_with(source, &cfg, dim_par::Parallelism::new(threads));
                assert_eq!(par, seq, "{source:?} threads = {threads}");
            }
        }
    }

    #[test]
    fn texts_are_wellformed_chinese_problems() {
        for p in generate(Source::Ape210k, &GenConfig { count: 50, seed: 8 }) {
            let text = p.text();
            assert!(text.contains("多少"), "question word expected: {text}");
            assert!(text.ends_with('？'), "{text}");
        }
    }
}
