//! NUMCoT-style unit-perturbation suite.
//!
//! NUMCoT (PAPERS.md) shows language models break precisely on
//! numeral/unit conversion steps. This suite measures whether the
//! `dim-verify` checker catches such breaks *when they are injected
//! deliberately*: a quantity's unit is mutated mid-problem while the
//! gold equation and answer stay fixed, and detection means the checker
//! no longer accepts the gold solution. Three mutation classes, from
//! hardest to easiest for a dimension checker:
//!
//! * **Prefix swap** (`米`→`厘米`, `千克`→`克`): the dimension vector is
//!   unchanged — only the conversion-law (scale) layer can catch it;
//! * **Cross-lingual** (`千克`→`斤`): a same-dimension Chinese folk unit
//!   with a different factor — again scale-layer territory;
//! * **Cross-dimension** (`千克`→`米`): the dimension law itself breaks.
//!
//! Every mutation targets a quantity the gold equation actually uses,
//! so a miss is the checker's miss, not a vacuous one. Mutation choice
//! is driven by per-item seed streams ([`dim_par::seed_for`]) keyed on
//! the problem index, so rates are identical at every thread width.

use dim_mwp::{MwpProblem, Node};
use dim_par::{par_map_indexed, seed_for, Parallelism};
use dim_verify::verify_problem;
use dimkb::prefix::SI_PREFIXES;
use dimkb::{DimUnitKb, Unit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-item seed stream salt for mutation choice.
const PERTURB_SALT: u64 = 0x9E27;

/// Relative difference under which two conversion factors count equal
/// (a synonym swap is not a perturbation).
const FACTOR_TOL: f64 = 1e-9;

/// Fixed replacement pool for cross-dimension mutations: everyday units
/// spanning mass, length, volume, and time.
const CROSS_DIM_POOL: &[&str] = &["KiloGM", "M", "L", "HR", "KiloM", "GM", "MIN"];

/// A class of unit mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationClass {
    /// Same base unit, different SI prefix (`米`→`厘米`).
    PrefixSwap,
    /// Same dimension, Chinese folk unit with a different factor
    /// (`千克`→`斤`).
    CrossLingual,
    /// A unit of a different dimension entirely (`千克`→`米`).
    CrossDimension,
}

impl MutationClass {
    /// All classes, in report order.
    pub const ALL: [MutationClass; 3] =
        [MutationClass::PrefixSwap, MutationClass::CrossLingual, MutationClass::CrossDimension];

    /// Stable report label.
    pub fn name(self) -> &'static str {
        match self {
            MutationClass::PrefixSwap => "prefix-swap",
            MutationClass::CrossLingual => "cross-lingual",
            MutationClass::CrossDimension => "cross-dimension",
        }
    }

    fn salt(self) -> u64 {
        match self {
            MutationClass::PrefixSwap => 1,
            MutationClass::CrossLingual => 2,
            MutationClass::CrossDimension => 3,
        }
    }
}

/// One applied mutation, for inspection and reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Mutation {
    /// Mutation class applied.
    pub class: MutationClass,
    /// Index of the mutated quantity.
    pub quantity: usize,
    /// Unit code before the mutation.
    pub from: String,
    /// Unit code after the mutation.
    pub to: String,
}

/// One row of the detection-rate table.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbRow {
    /// Mutation class.
    pub class: MutationClass,
    /// Problems where the class applied (an eligible quantity and a
    /// replacement unit existed).
    pub n: usize,
    /// Mutations the checker flagged.
    pub detected: usize,
}

impl PerturbRow {
    /// Detection rate in `[0, 1]` (0 when the class never applied).
    pub fn rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.detected as f64 / self.n as f64
        }
    }
}

/// Strips one SI prefix from a QUDT-style code (`KiloM` → `M`),
/// returning the family base code. Prefixed codes are generated as
/// `Kilo` + base, i.e. the capitalized English prefix name.
fn base_code(code: &str) -> &str {
    for p in SI_PREFIXES {
        let Some((head, rest)) = code.split_at_checked(p.name_en.len()) else {
            continue;
        };
        if !rest.is_empty()
            && head.eq_ignore_ascii_case(p.name_en)
            && head.ends_with(&p.name_en[1..])
        {
            return rest;
        }
    }
    code
}

fn factors_differ(a: f64, b: f64) -> bool {
    (a - b).abs() > FACTOR_TOL * a.abs().max(b.abs())
}

/// A usable, linearly-convertible replacement unit.
fn usable(u: &Unit) -> bool {
    !u.conversion.is_affine() && !u.label_zh.is_empty()
}

/// Replacement candidates for `orig` under `class`, sorted by code for
/// determinism.
fn replacements<'a>(kb: &'a DimUnitKb, orig: &Unit, class: MutationClass) -> Vec<&'a Unit> {
    let mut out: Vec<&Unit> = match class {
        MutationClass::PrefixSwap => kb
            .units()
            .iter()
            .filter(|u| {
                u.code != orig.code
                    && u.dim == orig.dim
                    && base_code(&u.code) == base_code(&orig.code)
                    && factors_differ(u.conversion.factor, orig.conversion.factor)
                    && usable(u)
            })
            .collect(),
        MutationClass::CrossLingual => kb
            .units()
            .iter()
            .filter(|u| {
                u.code != orig.code
                    && u.dim == orig.dim
                    && u.code.ends_with("-ZH")
                    && factors_differ(u.conversion.factor, orig.conversion.factor)
                    && usable(u)
            })
            .collect(),
        MutationClass::CrossDimension => CROSS_DIM_POOL
            .iter()
            .filter_map(|code| kb.unit_by_code(code))
            .filter(|u| u.dim != orig.dim && usable(u))
            .collect(),
    };
    out.sort_by(|a, b| a.code.cmp(&b.code));
    out
}

/// Quantity indices the gold equation references, in first-use order.
fn used_quantities(node: &Node, out: &mut Vec<usize>) {
    match node {
        Node::Const(_) => {}
        Node::Q(i) => {
            if !out.contains(i) {
                out.push(*i);
            }
        }
        Node::Bin(_, l, r) => {
            used_quantities(l, out);
            used_quantities(r, out);
        }
    }
}

/// Applies one `class` mutation to `problem`, choosing the target
/// quantity and replacement unit from `rng`. Returns `None` when no
/// equation-relevant quantity has a replacement in this class.
pub fn mutate(
    problem: &MwpProblem,
    kb: &DimUnitKb,
    class: MutationClass,
    rng: &mut StdRng,
) -> Option<(MwpProblem, Mutation)> {
    let mut used = Vec::new();
    used_quantities(&problem.equation, &mut used);
    let eligible: Vec<usize> = used
        .into_iter()
        .filter(|&i| {
            problem.quantities.get(i).is_some_and(|q| !q.is_percent && q.unit_code.is_some())
        })
        .collect();
    if eligible.is_empty() {
        return None;
    }
    let start = rng.gen_range(0..eligible.len());
    for offset in 0..eligible.len() {
        let qi = *eligible.get((start + offset) % eligible.len())?;
        let q = problem.quantities.get(qi)?;
        let orig = q.unit_code.as_deref().and_then(|c| kb.unit_by_code(c));
        let Some(orig) = orig else { continue };
        let options = replacements(kb, orig, class);
        if options.is_empty() {
            continue;
        }
        let pick = options.get(rng.gen_range(0..options.len()))?;
        let mut mutated = problem.clone();
        let mq = mutated.quantities.get_mut(qi)?;
        mq.unit_code = Some(pick.code.clone());
        mq.surface = pick.label_zh.clone();
        let record = Mutation {
            class,
            quantity: qi,
            from: orig.code.clone(),
            to: pick.code.clone(),
        };
        return Some((mutated, record));
    }
    None
}

/// Per-class detection rates over an evaluation set: each problem is
/// mutated once per class (when the class applies) and the gold
/// solution re-verified; detection means the checker rejects it.
pub fn detection_rates(
    problems: &[MwpProblem],
    kb: &DimUnitKb,
    seed: u64,
    par: Parallelism,
) -> Vec<PerturbRow> {
    MutationClass::ALL
        .iter()
        .map(|&class| {
            let per_item = par_map_indexed(par, problems, |i, p| {
                let mut rng =
                    StdRng::seed_from_u64(seed_for(seed ^ PERTURB_SALT ^ class.salt(), i as u64));
                match mutate(p, kb, class, &mut rng) {
                    None => (0usize, 0usize),
                    Some((mutated, _)) => {
                        let detected = !verify_problem(&mutated, kb).accepted();
                        (1, usize::from(detected))
                    }
                }
            });
            PerturbRow {
                class,
                n: per_item.iter().map(|r| r.0).sum(),
                detected: per_item.iter().map(|r| r.1).sum(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_mwp::{generate, GenConfig, Source};

    fn problems() -> Vec<MwpProblem> {
        let mut ps = generate(Source::Math23k, &GenConfig { count: 60, seed: 31 });
        ps.extend(generate(Source::Ape210k, &GenConfig { count: 60, seed: 32 }));
        ps
    }

    #[test]
    fn prefix_swap_keeps_the_dimension() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = 0;
        for p in &ps {
            if let Some((mutated, m)) = mutate(p, &kb, MutationClass::PrefixSwap, &mut rng) {
                seen += 1;
                let from = kb.dim_of_code(&m.from).expect("original resolves");
                let to = kb.dim_of_code(&m.to).expect("replacement resolves");
                assert_eq!(from, to, "prefix swap changed the dimension: {m:?}");
                let q = &mutated.quantities[m.quantity];
                assert_eq!(q.unit_code.as_deref(), Some(m.to.as_str()));
            }
        }
        assert!(seen > 0, "prefix swap must apply to some problems");
    }

    #[test]
    fn cross_dimension_changes_the_dimension() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = 0;
        for p in &ps {
            if let Some((_, m)) = mutate(p, &kb, MutationClass::CrossDimension, &mut rng) {
                seen += 1;
                let from = kb.dim_of_code(&m.from).expect("original resolves");
                let to = kb.dim_of_code(&m.to).expect("replacement resolves");
                assert!(from != to, "cross-dimension swap kept the dimension: {m:?}");
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn every_class_applies_and_detects_nonzero() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let rows = detection_rates(&ps, &kb, 2024, Parallelism::new(1));
        assert_eq!(rows.len(), MutationClass::ALL.len());
        for row in &rows {
            assert!(row.n > 0, "class {:?} never applied", row.class);
            assert!(row.detected > 0, "class {:?} never detected: {row:?}", row.class);
            assert!(row.detected <= row.n);
        }
    }

    #[test]
    fn rates_are_identical_across_thread_widths() {
        let kb = DimUnitKb::shared();
        let ps = problems();
        let w1 = detection_rates(&ps, &kb, 7, Parallelism::new(1));
        let w4 = detection_rates(&ps, &kb, 7, Parallelism::new(4));
        assert_eq!(w1, w4);
    }

    #[test]
    fn base_code_strips_exactly_one_prefix() {
        assert_eq!(base_code("KiloM"), "M");
        assert_eq!(base_code("CentiM"), "M");
        assert_eq!(base_code("KiloGM"), "GM");
        assert_eq!(base_code("M"), "M");
        assert_eq!(base_code("MIN"), "MIN");
        assert_eq!(base_code("TONNE"), "TONNE");
    }
}
