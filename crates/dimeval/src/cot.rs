//! Chain-of-thought target formatting (§IV-D).
//!
//! Fine-tuning targets are serialized as `<bos> R <sep> A <eos>` where `R`
//! is the templated reasoning sequence and `A` the answer sequence.

use crate::gen::OPTION_LETTERS;
use crate::task::ChoiceItem;

/// Sequence delimiters of the output format.
pub const BOS: &str = "<bos>";
/// Separator between reasoning and answer.
pub const SEP: &str = "<sep>";
/// End-of-sequence marker.
pub const EOS: &str = "<eos>";

/// Formats the training target for a choice item.
pub fn format_target(item: &ChoiceItem) -> String {
    format!(
        "{BOS} {} {SEP} The answer is ({}). {EOS}",
        item.rationale, OPTION_LETTERS[item.answer]
    )
}

/// Parses the answer letter back out of a generated target; `None` when the
/// output is malformed (treated as abstention by evaluation).
pub fn parse_answer(output: &str) -> Option<usize> {
    let tail = output.rsplit(SEP).next()?;
    for (i, letter) in OPTION_LETTERS.iter().enumerate() {
        if tail.contains(&format!("({letter})")) {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ItemMeta, TaskKind};
    use dimkb::UnitId;

    fn item(answer: usize) -> ChoiceItem {
        ChoiceItem {
            task: TaskKind::MagnitudeComparison,
            question: "q".into(),
            options: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            answer,
            rationale: "because reasons".into(),
            meta: ItemMeta::Magnitude { options: vec![UnitId(0); 4] },
        }
    }

    #[test]
    fn roundtrip() {
        for a in 0..4 {
            let target = format_target(&item(a));
            assert!(target.starts_with(BOS) && target.ends_with(EOS));
            assert_eq!(parse_answer(&target), Some(a));
        }
    }

    #[test]
    fn malformed_output_abstains() {
        assert_eq!(parse_answer("no answer here"), None);
        assert_eq!(parse_answer(""), None);
    }
}
