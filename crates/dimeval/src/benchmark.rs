//! DimEval assembly and evaluation.
//!
//! [`DimEval::build`] orchestrates the full §IV-C construction: corpus
//! generation + Algorithm 1 for quantity extraction, knowledge-graph
//! synthesis + Algorithm 2 (+ verbalization) for dimension prediction, and
//! heuristic rule-based generation for the remaining five tasks.

use crate::algo1::{self, Algo1Config};
use crate::algo2::{self, Algo2Config};
use crate::gen::Generator;
use crate::metrics::{ChoiceScore, ExtractionScore};
use crate::task::{Category, ChoiceItem, DimEvalSolver, ExtractionItem, TaskKind};
use dim_kgraph::{SynthConfig, SynthKg};
use dimkb::degrade::{self, BudgetExceeded, ErrorBudget, QuarantineEntry, RecordError};
use dimkb::DimUnitKb;
use dimlink::{Annotator, LinkerConfig, UnitLinker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

// Observability (no-ops unless `dim_obs::enable()` was called).
static BUILD_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("dimeval.build");
static BUILD_ITEMS: dim_obs::Counter = dim_obs::Counter::new("dimeval.items");
static EVAL_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("eval.evaluate");
static EVAL_ITEMS: dim_obs::Counter = dim_obs::Counter::new("eval.items");

/// Configuration for benchmark construction.
#[derive(Debug, Clone, Copy)]
pub struct DimEvalConfig {
    /// Items per choice task.
    pub per_task: usize,
    /// Extraction items.
    pub extraction_items: usize,
    /// Fraction of dimension-prediction items drawn from bootstrapped
    /// triples (the rest come from kind templates).
    pub bootstrap_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fan-out for construction: Algorithm 1's per-sentence pass,
    /// Algorithm 2's ratio/regrowth passes, and per-task item generation.
    /// Every thread count yields a byte-identical benchmark.
    pub parallelism: dim_par::Parallelism,
}

impl Default for DimEvalConfig {
    fn default() -> Self {
        // 45 items per task matches the paper's evaluation granularity
        // (scores are multiples of 1/45 in Table VII).
        DimEvalConfig {
            per_task: 45,
            extraction_items: 45,
            bootstrap_fraction: 0.5,
            seed: 2024,
            parallelism: dim_par::Parallelism::SEQUENTIAL,
        }
    }
}

/// The assembled benchmark.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DimEval {
    /// Items per choice task.
    pub choice: HashMap<TaskKind, Vec<ChoiceItem>>,
    /// Extraction items.
    pub extraction: Vec<ExtractionItem>,
}

/// Fault-free construction inputs shared by the classic and degraded builds.
struct BuildSubstrate {
    extraction: Vec<ExtractionItem>,
    kg: SynthKg,
    out2: algo2::Algo2Output,
}

impl DimEval {
    /// Builds the benchmark from scratch against a knowledge base.
    ///
    /// Construction fans out across `config.parallelism`; each choice task
    /// derives its own RNG stream from `(seed, task index)`, so the result
    /// is byte-identical for every thread count.
    pub fn build(kb: &Arc<DimUnitKb>, config: &DimEvalConfig) -> Self {
        let _span = BUILD_SPAN.span();
        let sub = Self::substrate(kb, config);
        let task_items =
            dim_par::par_map_coarse(config.parallelism, &TaskKind::CHOICE, |task_index, &task| {
                Self::build_task_items(kb, config, &sub.kg, &sub.out2, task_index, task)
            });
        let choice: HashMap<TaskKind, Vec<ChoiceItem>> =
            TaskKind::CHOICE.into_iter().zip(task_items).collect();
        let eval = DimEval { choice, extraction: sub.extraction };
        BUILD_ITEMS.add(eval.len() as u64);
        eval
    }

    /// Degraded-mode [`Self::build`]: each choice task runs in panic
    /// isolation with fault injection at site `"dimeval.task"`. A
    /// quarantined task yields an *empty* item list — a degraded but usable
    /// benchmark — plus a manifest entry; the failure fraction over the six
    /// tasks is checked against `budget`. With no faults the benchmark is
    /// identical to the classic build.
    pub fn try_build(
        kb: &Arc<DimUnitKb>,
        config: &DimEvalConfig,
        budget: ErrorBudget,
    ) -> Result<(Self, Vec<QuarantineEntry>), BudgetExceeded> {
        const SITE_TASK: &str = "dimeval.task";
        let _span = BUILD_SPAN.span();
        let sub = Self::substrate(kb, config);
        let slots = dim_par::try_par_map_coarse(
            config.parallelism,
            &TaskKind::CHOICE,
            |task_index, &task| {
                degrade::inject(SITE_TASK, task_index)?;
                Ok(Self::build_task_items(kb, config, &sub.kg, &sub.out2, task_index, task))
            },
        );
        let slots = slots.into_iter().map(|slot| match slot {
            Ok(inner) => inner,
            Err(p) => Err(RecordError::Panicked(p.message)),
        });
        let d = degrade::collect_degraded(SITE_TASK, slots, budget)?;
        let quarantine = d.quarantine.clone();
        let choice: HashMap<TaskKind, Vec<ChoiceItem>> = TaskKind::CHOICE
            .into_iter()
            .zip(d.items.into_iter().map(Option::unwrap_or_default))
            .collect();
        let eval = DimEval { choice, extraction: sub.extraction };
        BUILD_ITEMS.add(eval.len() as u64);
        Ok((eval, quarantine))
    }

    /// The shared, fault-free construction substrate: extraction items via
    /// Algorithm 1 and the knowledge graph + Algorithm 2 output the
    /// dimension-prediction task bootstraps from.
    fn substrate(kb: &Arc<DimUnitKb>, config: &DimEvalConfig) -> BuildSubstrate {
        // --- extraction via Algorithm 1 --------------------------------
        let corpus = dim_corpus::generate(
            kb,
            &dim_corpus::CorpusConfig {
                sentences: (config.extraction_items * 3).max(200),
                seed: config.seed ^ 0x11,
            },
        );
        let annotator =
            Annotator::new(UnitLinker::new(kb.clone(), None, LinkerConfig::default()));
        let mlm = algo1::train_filter(&corpus);
        let out1 = algo1::semi_automated_annotate(
            &annotator,
            &mlm,
            &corpus,
            Algo1Config { parallelism: config.parallelism, ..Default::default() },
        );
        let mut extraction = out1.dataset;
        extraction.truncate(config.extraction_items);

        // --- dimension prediction via Algorithm 2 ----------------------
        let kg = dim_kgraph::synthesize(
            kb,
            &SynthConfig { entities_per_type: 40, seed: config.seed ^ 0x22 },
        );
        let out2 = algo2::bootstrap_retrieve(
            &kg,
            &annotator,
            Algo2Config { parallelism: config.parallelism, ..Default::default() },
        );
        BuildSubstrate { extraction, kg, out2 }
    }

    /// Builds one choice task's items from its own `(seed, task index)` RNG
    /// streams — the shared per-task body of [`Self::build`] and
    /// [`Self::try_build`].
    fn build_task_items(
        kb: &Arc<DimUnitKb>,
        config: &DimEvalConfig,
        kg: &SynthKg,
        out2: &algo2::Algo2Output,
        task_index: usize,
        task: TaskKind,
    ) -> Vec<ChoiceItem> {
        let mut generator =
            Generator::new(kb, dim_par::seed_for(config.seed ^ 0x33, task_index as u64));
        if task == TaskKind::DimensionPrediction {
            let mut rng =
                StdRng::seed_from_u64(dim_par::seed_for(config.seed, task_index as u64));
            let n_boot = (config.per_task as f64 * config.bootstrap_fraction).round() as usize;
            let mut items = Vec::with_capacity(config.per_task);
            let mut tries = 0;
            while items.len() < n_boot
                && tries < out2.triplets.len() * 2
                && !out2.triplets.is_empty()
            {
                tries += 1;
                let tid = out2.triplets[rng.gen_range(0..out2.triplets.len())];
                let Some(gold) = kg.gold.get(&tid) else { continue };
                let Some(kind) = kb.kind_by_name(&gold.kind) else { continue };
                let (_, masked) = algo2::verbalize(kg, tid);
                if let Some(item) = generator.dim_prediction_from_masked(&masked, kind.id) {
                    items.push(item);
                }
            }
            let remaining = config.per_task - items.len();
            items.extend(generator.generate(task, remaining));
            items
        } else {
            generator.generate(task, config.per_task)
        }
    }

    /// Total number of items. Canonical task order, not map layout order —
    /// the sum is order-insensitive today, but the iteration discipline is
    /// lint-enforced so a future fold can't silently become layout-ordered.
    pub fn len(&self) -> usize {
        self.extraction.len()
            + TaskKind::CHOICE
                .iter()
                .filter_map(|t| self.choice.get(t))
                .map(Vec::len)
                .sum::<usize>()
    }

    /// True when the benchmark is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the benchmark to JSON (for inspection or offline reuse;
    /// unit/kind ids refer to the KB the benchmark was built against).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("benchmark items always serialize")
    }

    /// Restores a benchmark serialized by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Per-model evaluation report over the benchmark.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Model name.
    pub model: String,
    /// Extraction QE/VE/UE scores.
    pub extraction: ExtractionScore,
    /// Per-task choice scores.
    pub choice: HashMap<TaskKind, ChoiceScore>,
}

impl EvalReport {
    /// Category-aggregated `(precision, f1)` — the Table VIII format.
    /// Choice tasks contribute their precision/F1; extraction contributes
    /// the mean of its QE/VE/UE F1s to Basic Perception.
    pub fn category(&self, cat: Category) -> (f64, f64) {
        let mut ps = Vec::new();
        let mut fs = Vec::new();
        // Canonical task order: float accumulation must not depend on
        // HashMap layout.
        for task in TaskKind::CHOICE {
            let Some(score) = self.choice.get(&task) else { continue };
            if task.category() == cat {
                ps.push(score.precision());
                fs.push(score.f1());
            }
        }
        if cat == Category::BasicPerception {
            let e = &self.extraction;
            ps.push((e.qe.precision() + e.ve.precision() + e.ue.precision()) / 3.0);
            fs.push((e.qe.f1() + e.ve.f1() + e.ue.f1()) / 3.0);
        }
        let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
        (mean(&ps), mean(&fs))
    }
}

/// Evaluates a solver over the benchmark.
pub fn evaluate(solver: &mut dyn DimEvalSolver, eval: &DimEval) -> EvalReport {
    let _span = EVAL_SPAN.span();
    EVAL_ITEMS.add(eval.len() as u64);
    let mut extraction = ExtractionScore::default();
    for item in &eval.extraction {
        let pred = solver.extract(&item.text);
        extraction.push(&item.gold, &pred);
    }
    let mut choice = HashMap::new();
    // Canonical task order: the solver's RNG state advances across items,
    // so iteration order must not depend on HashMap layout.
    for task in TaskKind::CHOICE {
        let Some(items) = eval.choice.get(&task) else { continue };
        let mut score = ChoiceScore::default();
        for item in items {
            score.push(item.answer, solver.answer(item));
        }
        choice.insert(task, score);
    }
    EvalReport { model: solver.name(), extraction, choice }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ExtractedQuantity;

    fn eval() -> DimEval {
        let kb = DimUnitKb::shared();
        DimEval::build(&kb, &DimEvalConfig { per_task: 12, extraction_items: 12, ..Default::default() })
    }

    /// A perfect oracle (answers from item metadata).
    struct Oracle;

    impl DimEvalSolver for Oracle {
        fn name(&self) -> String {
            "oracle".into()
        }

        fn answer(&mut self, item: &ChoiceItem) -> Option<usize> {
            Some(item.answer)
        }

        fn extract(&mut self, _text: &str) -> Vec<ExtractedQuantity> {
            Vec::new()
        }
    }

    /// A solver that always abstains.
    struct Mute;

    impl DimEvalSolver for Mute {
        fn name(&self) -> String {
            "mute".into()
        }

        fn answer(&mut self, _item: &ChoiceItem) -> Option<usize> {
            None
        }

        fn extract(&mut self, _text: &str) -> Vec<ExtractedQuantity> {
            Vec::new()
        }
    }

    #[test]
    fn build_produces_all_tasks() {
        let e = eval();
        assert_eq!(e.choice.len(), 6);
        for (task, items) in &e.choice {
            assert_eq!(items.len(), 12, "{task:?}");
        }
        assert_eq!(e.extraction.len(), 12);
        assert!(!e.is_empty());
    }

    #[test]
    fn oracle_scores_perfectly_on_choice() {
        let e = eval();
        let report = evaluate(&mut Oracle, &e);
        for (task, score) in &report.choice {
            assert_eq!(score.precision(), 1.0, "{task:?}");
            assert_eq!(score.f1(), 1.0, "{task:?}");
        }
    }

    #[test]
    fn mute_scores_zero() {
        let e = eval();
        let report = evaluate(&mut Mute, &e);
        for score in report.choice.values() {
            assert_eq!(score.precision(), 0.0);
            assert_eq!(score.f1(), 0.0);
        }
    }

    #[test]
    fn category_aggregation_covers_all() {
        let e = eval();
        let report = evaluate(&mut Oracle, &e);
        for cat in Category::ALL {
            let (p, f) = report.category(cat);
            assert!((0.0..=1.0).contains(&p));
            assert!((0.0..=1.0).contains(&f));
        }
        // Oracle is perfect on dimension/scale categories (choice only).
        let (p, _) = report.category(Category::DimensionPerception);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn dimension_prediction_mixes_bootstrap_and_templates() {
        let e = eval();
        let items = &e.choice[&TaskKind::DimensionPrediction];
        let masked_external =
            items.iter().filter(|i| i.question.contains("的") && i.question.contains("[MASK]")).count();
        assert!(masked_external > 0, "bootstrapped masked sentences expected");
    }

    #[test]
    fn build_is_deterministic() {
        let kb = DimUnitKb::shared();
        let cfg = DimEvalConfig { per_task: 6, extraction_items: 6, ..Default::default() };
        let a = DimEval::build(&kb, &cfg);
        let b = DimEval::build(&kb, &cfg);
        assert_eq!(a.choice[&TaskKind::UnitConversion], b.choice[&TaskKind::UnitConversion]);
        assert_eq!(a.extraction.len(), b.extraction.len());
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let kb = DimUnitKb::shared();
        let base = DimEvalConfig { per_task: 6, extraction_items: 6, ..Default::default() };
        let seq = DimEval::build(&kb, &base);
        let par = DimEval::build(
            &kb,
            &DimEvalConfig { parallelism: dim_par::Parallelism::new(4), ..base },
        );
        assert_eq!(seq.to_json(), par.to_json(), "parallel build must be byte-identical");
    }
}
