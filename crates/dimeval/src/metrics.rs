//! Evaluation metrics: precision / F1 with abstention for choice tasks,
//! and the QE / VE / UE F1 triple for quantity extraction (§VI-D).

use crate::task::{ExtractedQuantity, GoldExtraction};

/// Precision and F1 of a choice task under abstention.
///
/// * precision = correct / answered (1.0 precision when nothing answered is
///   defined as 0 to avoid rewarding total abstention);
/// * recall = correct / total;
/// * F1 = harmonic mean.
///
/// This reproduces the paper's observation that abstaining models show
/// F1 well below precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChoiceScore {
    /// Items in the dataset.
    pub total: usize,
    /// Items the solver answered.
    pub answered: usize,
    /// Correct answers.
    pub correct: usize,
}

impl ChoiceScore {
    /// Accumulates one prediction.
    pub fn push(&mut self, gold: usize, pred: Option<usize>) {
        self.total += 1;
        if let Some(p) = pred {
            self.answered += 1;
            if p == gold {
                self.correct += 1;
            }
        }
    }

    /// Precision over answered items.
    pub fn precision(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.correct as f64 / self.answered as f64
        }
    }

    /// Recall over all items.
    pub fn recall(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// F1 of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// The three extraction F1s: full quantity (QE), value only (VE), unit
/// only (UE).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExtractionScore {
    /// Full-quantity F1 counts.
    pub qe: PrfCounts,
    /// Value F1 counts.
    pub ve: PrfCounts,
    /// Unit F1 counts.
    pub ue: PrfCounts,
}

/// Raw precision/recall counts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrfCounts {
    /// True positives.
    pub tp: usize,
    /// Predicted items.
    pub pred: usize,
    /// Gold items.
    pub gold: usize,
}

impl PrfCounts {
    /// Precision.
    pub fn precision(&self) -> f64 {
        if self.pred == 0 {
            0.0
        } else {
            self.tp as f64 / self.pred as f64
        }
    }

    /// Recall.
    pub fn recall(&self) -> f64 {
        if self.gold == 0 {
            0.0
        } else {
            self.tp as f64 / self.gold as f64
        }
    }

    /// F1.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn value_matches(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs());
    scale > 0.0 && (a - b).abs() / scale < 1e-6
}

fn unit_matches(a: &str, b: &str) -> bool {
    dimkb::normalize(a) == dimkb::normalize(b)
}

impl ExtractionScore {
    /// Scores one text's predictions against gold with greedy one-to-one
    /// matching per criterion.
    pub fn push(&mut self, gold: &[GoldExtraction], pred: &[ExtractedQuantity]) {
        self.qe.gold += gold.len();
        self.ve.gold += gold.len();
        self.ue.gold += gold.len();
        self.qe.pred += pred.len();
        self.ve.pred += pred.len();
        self.ue.pred += pred.len();
        // Greedy matching for each criterion independently.
        let mut used_q = vec![false; gold.len()];
        let mut used_v = vec![false; gold.len()];
        let mut used_u = vec![false; gold.len()];
        for p in pred {
            if let Some(i) = gold.iter().enumerate().position(|(i, g)| {
                !used_q[i] && value_matches(g.value, p.value) && unit_matches(&g.unit_surface, &p.unit_surface)
            }) {
                used_q[i] = true;
                self.qe.tp += 1;
            }
            if let Some(i) = gold
                .iter()
                .enumerate()
                .position(|(i, g)| !used_v[i] && value_matches(g.value, p.value))
            {
                used_v[i] = true;
                self.ve.tp += 1;
            }
            if let Some(i) = gold
                .iter()
                .enumerate()
                .position(|(i, g)| !used_u[i] && unit_matches(&g.unit_surface, &p.unit_surface))
            {
                used_u[i] = true;
                self.ue.tp += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abstention_lowers_f1_not_precision() {
        let mut confident = ChoiceScore::default();
        let mut abstainer = ChoiceScore::default();
        for i in 0..10 {
            confident.push(0, Some(if i < 6 { 0 } else { 1 }));
            // The abstainer answers only 5, all correct.
            abstainer.push(0, if i < 5 { Some(0) } else { None });
        }
        assert!((confident.precision() - 0.6).abs() < 1e-12);
        assert!((abstainer.precision() - 1.0).abs() < 1e-12);
        assert!(abstainer.f1() < abstainer.precision());
        assert!((abstainer.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_scores_are_zero() {
        let s = ChoiceScore::default();
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn extraction_partial_credit() {
        let mut s = ExtractionScore::default();
        let gold = vec![
            GoldExtraction { value: 2.06, unit_surface: "meters".into() },
            GoldExtraction { value: 188.0, unit_surface: "cm".into() },
        ];
        // Right values, one wrong unit.
        let pred = vec![
            ExtractedQuantity { value: 2.06, unit_surface: "meters".into() },
            ExtractedQuantity { value: 188.0, unit_surface: "mm".into() },
        ];
        s.push(&gold, &pred);
        assert_eq!(s.qe.tp, 1);
        assert_eq!(s.ve.tp, 2);
        assert_eq!(s.ue.tp, 1);
        assert!(s.ve.f1() > s.qe.f1());
    }

    #[test]
    fn unit_match_is_normalized() {
        assert!(unit_matches("Meters", "meters"));
        assert!(unit_matches(" km ", "km"));
        assert!(!unit_matches("km", "m"));
    }

    #[test]
    fn value_match_tolerates_float_noise() {
        assert!(value_matches(0.1 + 0.2, 0.3));
        assert!(!value_matches(1.0, 1.1));
    }

    #[test]
    fn duplicate_predictions_do_not_double_count() {
        let mut s = ExtractionScore::default();
        let gold = vec![GoldExtraction { value: 5.0, unit_surface: "kg".into() }];
        let pred = vec![
            ExtractedQuantity { value: 5.0, unit_surface: "kg".into() },
            ExtractedQuantity { value: 5.0, unit_surface: "kg".into() },
        ];
        s.push(&gold, &pred);
        assert_eq!(s.qe.tp, 1);
        assert_eq!(s.qe.pred, 2);
        assert!(s.qe.precision() < 1.0);
    }
}
