//! Algorithm 2: the bootstrapping retrieval method (§IV-C2).
//!
//! Maintains a growing *mention set* `M` (unit surface forms) and a
//! *predicate set* `P`, alternating three steps for δ iterations:
//!
//! 1. grow `P` from triples whose objects mention some `m ∈ M`;
//! 2. filter `P` by the ratio of quantity-like triples (DimKS annotation),
//!    keeping predicates with ratio ≥ τ;
//! 3. grow `M` from unit mentions in the objects of the kept predicates.
//!
//! Finally all triples of the kept predicates are retrieved. The paper then
//! feeds the triplets to ChatGPT to verbalize them into sentences; here the
//! verbalizer is template-based (see [`verbalize`]).

use dim_kgraph::{PredicateId, SynthKg, TripleId};
use dimlink::Annotator;
use std::collections::{BTreeMap, BTreeSet};

// Observability (no-ops unless `dim_obs::enable()` was called).
static ALGO2_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("algo2.run");
static ALGO2_PREDICATES: dim_obs::Counter = dim_obs::Counter::new("algo2.predicates");
static ALGO2_TRIPLES: dim_obs::Counter = dim_obs::Counter::new("algo2.triples");
static ALGO2_MENTIONS: dim_obs::Counter = dim_obs::Counter::new("algo2.mentions");

/// Configuration for the bootstrapping retrieval.
#[derive(Debug, Clone, Copy)]
pub struct Algo2Config {
    /// Quantity-ratio threshold τ for keeping a predicate.
    pub tau: f64,
    /// Bootstrapping iterations δ (the paper uses 5).
    pub iterations: usize,
    /// Number of high-frequency seed units for `M₀`.
    pub seed_mentions: usize,
    /// Fan-out for the per-predicate ratio and mention-regrowth passes.
    pub parallelism: dim_par::Parallelism,
}

impl Default for Algo2Config {
    fn default() -> Self {
        Algo2Config {
            tau: 0.6,
            iterations: 5,
            seed_mentions: 40,
            parallelism: dim_par::Parallelism::SEQUENTIAL,
        }
    }
}

/// Output of the bootstrap, with retrieval quality vs the KG's gold labels.
#[derive(Debug, Clone)]
pub struct Algo2Output {
    /// Retrieved (hopefully quantitative) triples.
    pub triplets: Vec<TripleId>,
    /// The final predicate set.
    pub predicates: Vec<PredicateId>,
    /// The final mention set.
    pub mentions: Vec<String>,
    /// Precision of the retrieved triples against gold.
    pub precision: f64,
    /// Recall against all gold quantitative triples.
    pub recall: f64,
    /// `(|P|, |M|)` after each iteration — the growth trace.
    pub growth: Vec<(usize, usize)>,
}

/// Is this object string quantity-like according to DimKS? True when the
/// annotator finds a mention covering most of the object.
fn object_is_quantity(annotator: &Annotator, object: &str) -> bool {
    annotator
        .annotate(object)
        .iter()
        .any(|m| (m.end - m.start) * 2 >= object.len())
}

/// Runs the bootstrapping retrieval over a knowledge graph.
pub fn bootstrap_retrieve(
    kg: &SynthKg,
    annotator: &Annotator,
    config: Algo2Config,
) -> Algo2Output {
    let _span = ALGO2_SPAN.span();
    let kb = annotator.linker().kb();
    // M₀: surface forms of the highest-frequency units.
    let mut mentions: BTreeSet<String> = dimkb::stats::top_units(kb, config.seed_mentions)
        .into_iter()
        .flat_map(|(id, _)| {
            let u = kb.unit(id);
            [u.label_zh.clone(), u.symbol.clone()]
        })
        .filter(|s| !s.is_empty())
        .collect();
    let mut kept: BTreeSet<PredicateId> = BTreeSet::new();
    let mut growth = Vec::new();

    // Memoized per-predicate quantity ratios (objects don't change).
    let mut ratio_cache: BTreeMap<PredicateId, f64> = BTreeMap::new();

    for _ in 0..config.iterations {
        // Step 1: predicates reachable from the mention set.
        let mut p: BTreeSet<PredicateId> = BTreeSet::new();
        for m in &mentions {
            for tid in kg.store.find_by_object_mention(m) {
                p.insert(kg.store.triple(tid).predicate);
            }
        }
        // Step 2: filter by quantity ratio. Ratios for not-yet-seen
        // predicates are computed in parallel (each is an independent
        // annotate pass over that predicate's objects), then cached in
        // BTreeMap order — the filter itself stays sequential and
        // deterministic.
        let uncached: Vec<PredicateId> =
            p.iter().copied().filter(|pid| !ratio_cache.contains_key(pid)).collect();
        let ratios = dim_par::par_map_coarse(config.parallelism, &uncached, |_, &pid| {
            let triples = kg.store.find_by_predicate(pid);
            if triples.is_empty() {
                return 0.0;
            }
            let q = triples
                .iter()
                .filter(|&&tid| object_is_quantity(annotator, &kg.store.triple(tid).object))
                .count();
            q as f64 / triples.len() as f64
        });
        ratio_cache.extend(uncached.into_iter().zip(ratios));
        p.retain(|pid| ratio_cache[pid] >= config.tau);
        kept = p.clone();
        // Step 3: regrow the mention set from the kept predicates' objects
        // (parallel per predicate; the BTreeSet union is order-insensitive).
        let kept_list: Vec<PredicateId> = p.iter().copied().collect();
        let grown = dim_par::par_map_coarse(config.parallelism, &kept_list, |_, &pid| {
            let mut surfaces = Vec::new();
            for &tid in kg.store.find_by_predicate(pid) {
                for qm in annotator.annotate(&kg.store.triple(tid).object) {
                    surfaces.push(qm.unit_surface);
                }
            }
            surfaces
        });
        let m: BTreeSet<String> = grown.into_iter().flatten().collect();
        if !m.is_empty() {
            mentions = m;
        }
        growth.push((kept.len(), mentions.len()));
    }

    // Retrieve the final triples.
    let mut triplets: Vec<TripleId> = Vec::new();
    for &pid in &kept {
        triplets.extend_from_slice(kg.store.find_by_predicate(pid));
    }
    triplets.sort_unstable();
    triplets.dedup();

    let retrieved_quant = triplets.iter().filter(|&&t| kg.is_quantitative(t)).count();
    let precision = if triplets.is_empty() {
        0.0
    } else {
        retrieved_quant as f64 / triplets.len() as f64
    };
    let recall = if kg.quantitative_count() == 0 {
        0.0
    } else {
        retrieved_quant as f64 / kg.quantitative_count() as f64
    };

    ALGO2_PREDICATES.add(kept.len() as u64);
    ALGO2_TRIPLES.add(triplets.len() as u64);
    ALGO2_MENTIONS.add(mentions.len() as u64);
    Algo2Output {
        triplets,
        predicates: kept.into_iter().collect(),
        mentions: mentions.into_iter().collect(),
        precision,
        recall,
        growth,
    }
}

/// Verbalizes a triple into a sentence and a masked variant (the ChatGPT
/// substitution): `<LeBron, height, 2.06m>` →
/// `勒布朗的身高是2.06m。` / `勒布朗的身高是[MASK]。`.
pub fn verbalize(kg: &SynthKg, id: TripleId) -> (String, String) {
    let t = kg.store.triple(id);
    let subject = kg.store.entity_name(t.subject);
    let predicate = kg.store.predicate_name(t.predicate);
    let sentence = format!("{subject}的{predicate}是{object}。", object = t.object);
    let masked = format!("{subject}的{predicate}是[MASK]。");
    (sentence, masked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_kgraph::{synthesize, SynthConfig};
    use dimkb::DimUnitKb;
    use dimlink::{LinkerConfig, UnitLinker};

    fn run() -> (SynthKg, Algo2Output) {
        let kb = DimUnitKb::shared();
        let kg = synthesize(&kb, &SynthConfig { entities_per_type: 40, seed: 21 });
        let annotator = Annotator::new(UnitLinker::new(kb, None, LinkerConfig::default()));
        let out = bootstrap_retrieve(&kg, &annotator, Algo2Config::default());
        (kg, out)
    }

    #[test]
    fn bootstrap_finds_quantity_predicates_with_high_precision() {
        let (_, out) = run();
        assert!(!out.triplets.is_empty());
        assert!(out.precision > 0.85, "precision {}", out.precision);
        assert!(out.recall > 0.5, "recall {}", out.recall);
    }

    #[test]
    fn decoy_predicates_are_filtered() {
        let (kg, out) = run();
        let names: Vec<&str> =
            out.predicates.iter().map(|&p| kg.store.predicate_name(p)).collect();
        assert!(!names.contains(&"颜色"), "colour is not a quantity predicate: {names:?}");
        assert!(!names.contains(&"型号"), "model codes are not quantities: {names:?}");
        assert!(
            names.contains(&"身高") || names.contains(&"高度"),
            "height-like predicates must be kept: {names:?}"
        );
    }

    #[test]
    fn mention_set_grows_beyond_seeds() {
        let (_, out) = run();
        assert!(!out.mentions.is_empty());
        assert_eq!(out.growth.len(), Algo2Config::default().iterations);
    }

    #[test]
    fn verbalizer_produces_masked_pairs() {
        let (kg, out) = run();
        let (sentence, masked) = verbalize(&kg, out.triplets[0]);
        assert!(sentence.ends_with("。"));
        assert!(masked.contains("[MASK]"));
        assert!(!masked.contains(&kg.store.triple(out.triplets[0]).object));
    }

    #[test]
    fn parallel_bootstrap_matches_sequential() {
        let kb = DimUnitKb::shared();
        let kg = synthesize(&kb, &SynthConfig { entities_per_type: 40, seed: 21 });
        let annotator = Annotator::new(UnitLinker::new(kb, None, LinkerConfig::default()));
        let seq = bootstrap_retrieve(&kg, &annotator, Algo2Config::default());
        let par = bootstrap_retrieve(
            &kg,
            &annotator,
            Algo2Config { parallelism: dim_par::Parallelism::new(4), ..Default::default() },
        );
        assert_eq!(seq.triplets, par.triplets);
        assert_eq!(seq.predicates, par.predicates);
        assert_eq!(seq.mentions, par.mentions);
        assert_eq!(seq.growth, par.growth);
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let (_, a) = run();
        let (_, b) = run();
        assert_eq!(a.triplets, b.triplets);
        assert_eq!(a.mentions, b.mentions);
    }
}
