//! Heuristic rule-based item generators for the five DimEval tasks that the
//! paper constructs directly from DimKS (§IV-C: "the remaining five tasks
//! can be constructed with heuristic rule-based methods with DimKS"), plus
//! the template-based dimension-prediction generator.
//!
//! Every item carries a templated chain-of-thought rationale (§IV-D), used
//! as the `R` segment of fine-tuning targets.

use crate::task::{ChoiceItem, ItemMeta, TaskKind};
use dimkb::expr::eval_powers;
use dimkb::{DimUnitKb, KindId, Unit, UnitId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Letters used to label options.
pub const OPTION_LETTERS: [char; 4] = ['A', 'B', 'C', 'D'];

/// The number of options per item (m = 4 in the paper).
pub const NUM_OPTIONS: usize = 4;

/// Item generator over a knowledge base.
pub struct Generator<'a> {
    kb: &'a DimUnitKb,
    rng: StdRng,
}

impl<'a> Generator<'a> {
    /// Creates a generator with a deterministic seed.
    pub fn new(kb: &'a DimUnitKb, seed: u64) -> Self {
        Generator { kb, rng: StdRng::seed_from_u64(seed) }
    }

    /// Generates `n` items of the given choice task (panics on the
    /// extraction task, which is corpus-driven — see `algo1`).
    pub fn generate(&mut self, task: TaskKind, n: usize) -> Vec<ChoiceItem> {
        let mut items = Vec::with_capacity(n);
        let mut guard = 0usize;
        while items.len() < n {
            guard += 1;
            assert!(
                guard < n * 200 + 10_000,
                "generator failed to produce enough {task:?} items"
            );
            let item = match task {
                TaskKind::QuantityKindMatch => self.kind_match(),
                TaskKind::ComparableAnalysis => self.comparable(),
                TaskKind::DimensionPrediction => self.dim_prediction(),
                TaskKind::DimensionArithmetic => self.dim_arithmetic(),
                TaskKind::MagnitudeComparison => self.magnitude(),
                TaskKind::UnitConversion => self.conversion(),
                TaskKind::QuantityExtraction => {
                    // lint:allow(no_panic, extraction items are documented to come from the annotated corpus (algo1); routing them through the synthetic generator is an API-misuse bug every DimEval constructor guards against)
                    panic!("extraction items come from the annotated corpus (algo1)")
                }
            };
            if let Some(item) = item {
                items.push(item);
            }
        }
        items
    }

    /// Frequency-weighted unit sample satisfying `pred`.
    fn sample_unit(&mut self, mut pred: impl FnMut(&Unit) -> bool) -> Option<UnitId> {
        let units = self.kb.units();
        for _ in 0..400 {
            let u = &units[self.rng.gen_range(0..units.len())];
            if self.rng.gen_bool(u.frequency.clamp(0.05, 1.0)) && pred(u) {
                return Some(u.id);
            }
        }
        // Deterministic fallback scan.
        units.iter().find(|u| pred(u)).map(|u| u.id)
    }

    fn display(&self, id: UnitId) -> String {
        let u = self.kb.unit(id);
        if u.label_en == u.symbol {
            u.label_en.clone()
        } else {
            format!("{} ({})", u.label_en, u.symbol)
        }
    }

    /// Shuffles options, returning (index of gold after shuffle).
    fn shuffle_gold<T>(&mut self, options: &mut [T], gold: usize) -> usize {
        let n = options.len();
        let mut gold = gold;
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            options.swap(i, j);
            if gold == i {
                gold = j;
            } else if gold == j {
                gold = i;
            }
        }
        gold
    }

    fn options_text(&self, ids: &[UnitId]) -> (String, Vec<String>) {
        let texts: Vec<String> = ids.iter().map(|&id| self.display(id)).collect();
        let labelled = texts
            .iter()
            .enumerate()
            .map(|(i, t)| format!("({}) {}", OPTION_LETTERS[i], t))
            .collect::<Vec<_>>()
            .join("  ");
        (labelled, texts)
    }

    // ---- Def. 3: QuantityKind Match -----------------------------------

    fn kind_match(&mut self) -> Option<ChoiceItem> {
        let correct = self.sample_unit(|_| true)?;
        let kind = self.kb.unit(correct).kind;
        let dim = self.kb.unit(correct).dim;
        let mut options = vec![correct];
        for _ in 0..(NUM_OPTIONS - 1) {
            let id = self.sample_unit(|u| u.dim != dim && !options.contains(&u.id))?;
            options.push(id);
        }
        let gold = self.shuffle_gold(&mut options, 0);
        let kind_rec = self.kb.kind(kind);
        let (labelled, _) = self.options_text(&options);
        let question = format!(
            "Which of the following units measures the quantity kind \"{}\" ({})?  {}",
            kind_rec.name_en, kind_rec.name_zh, labelled
        );
        let rationale = format!(
            "The quantity kind {} has dimension {}. Among the candidates, {} measures {}.",
            kind_rec.name_en,
            kind_rec.dim.formula(),
            self.display(options[gold]),
            kind_rec.name_en,
        );
        Some(ChoiceItem {
            task: TaskKind::QuantityKindMatch,
            question,
            options: options.iter().map(|&id| self.display(id)).collect(),
            answer: gold,
            rationale,
            meta: ItemMeta::KindMatch { kind, options },
        })
    }

    // ---- Def. 4: Comparable Analysis -----------------------------------

    fn comparable(&mut self) -> Option<ChoiceItem> {
        let reference = self.sample_unit(|_| true)?;
        let dim = self.kb.unit(reference).dim;
        let same = self.sample_unit(|u| u.dim == dim && u.id != reference)?;
        let mut options = vec![same];
        for _ in 0..(NUM_OPTIONS - 1) {
            let id = self.sample_unit(|u| u.dim != dim && !options.contains(&u.id))?;
            options.push(id);
        }
        let gold = self.shuffle_gold(&mut options, 0);
        let (labelled, _) = self.options_text(&options);
        let question = format!(
            "Which of the following units is comparable with \"{}\" (i.e. shares its dimension)?  {}",
            self.display(reference),
            labelled
        );
        let rationale = format!(
            "dim({}) = {}. Only quantities with identical dimensions are comparable; \
             dim({}) = {} matches, while the other candidates have different dimensions.",
            self.display(reference),
            dim.formula(),
            self.display(options[gold]),
            dim.formula(),
        );
        Some(ChoiceItem {
            task: TaskKind::ComparableAnalysis,
            question,
            options: options.iter().map(|&id| self.display(id)).collect(),
            answer: gold,
            rationale,
            meta: ItemMeta::Comparable { reference, options },
        })
    }

    // ---- Def. 5: Dimension Prediction ------------------------------------

    fn dim_prediction(&mut self) -> Option<ChoiceItem> {
        // Pick a kind with units, verbalize a masked sentence from its
        // (narrow-)kind name — the CN-DBpedia-style predicate.
        let correct = self.sample_unit(|u| !u.conversion.is_affine())?;
        let unit = self.kb.unit(correct);
        let kind = self.kb.kind(unit.kind);
        let dim = unit.dim;
        let mut options = vec![correct];
        for _ in 0..(NUM_OPTIONS - 1) {
            let id = self.sample_unit(|u| u.dim != dim && !options.contains(&u.id))?;
            options.push(id);
        }
        let gold = self.shuffle_gold(&mut options, 0);
        let masked = if self.rng.gen_bool(0.5) {
            format!("这件物品的{}是 3 [MASK]。", kind.name_zh)
        } else {
            format!("The {} of the object is 3 [MASK].", lower_words(&kind.name_en))
        };
        let (labelled, _) = self.options_text(&options);
        let question = format!(
            "{masked}  Which unit fits the [MASK] so the sentence is dimensionally consistent?  {labelled}"
        );
        let rationale = format!(
            "The context asks for the {} of an object, a quantity of dimension {}. \
             {} has dimension {}, so it fits the mask.",
            lower_words(&kind.name_en),
            dim.formula(),
            self.display(options[gold]),
            dim.formula(),
        );
        Some(ChoiceItem {
            task: TaskKind::DimensionPrediction,
            question,
            options: options.iter().map(|&id| self.display(id)).collect(),
            answer: gold,
            rationale,
            meta: ItemMeta::DimPrediction { gold_kind: kind.id, options },
        })
    }

    /// Builds a dimension-prediction item from an external masked sentence
    /// (the Algorithm 2 path: bootstrapped triples verbalized and masked).
    pub fn dim_prediction_from_masked(
        &mut self,
        masked_sentence: &str,
        gold_kind: KindId,
    ) -> Option<ChoiceItem> {
        let dim = self.kb.kind(gold_kind).dim;
        let correct = self.sample_unit(|u| u.dim == dim && !u.conversion.is_affine())?;
        let mut options = vec![correct];
        for _ in 0..(NUM_OPTIONS - 1) {
            let id = self.sample_unit(|u| u.dim != dim && !options.contains(&u.id))?;
            options.push(id);
        }
        let gold = self.shuffle_gold(&mut options, 0);
        let (labelled, _) = self.options_text(&options);
        let kind = self.kb.kind(gold_kind);
        let question = format!(
            "{masked_sentence}  Which unit fits the [MASK] so the sentence is dimensionally consistent?  {labelled}"
        );
        let rationale = format!(
            "The masked quantity is a {} with dimension {}; {} matches that dimension.",
            lower_words(&kind.name_en),
            dim.formula(),
            self.display(options[gold]),
        );
        Some(ChoiceItem {
            task: TaskKind::DimensionPrediction,
            question,
            options: options.iter().map(|&id| self.display(id)).collect(),
            answer: gold,
            rationale,
            meta: ItemMeta::DimPrediction { gold_kind, options },
        })
    }

    // ---- Def. 6: Dimension Arithmetic -------------------------------------

    fn dim_arithmetic(&mut self) -> Option<ChoiceItem> {
        // Build an expression of 2-3 units with × and ÷.
        let len = self.rng.gen_range(2..=3);
        let mut expr: Vec<(UnitId, i8)> = Vec::new();
        for i in 0..len {
            let id = self.sample_unit(|u| !u.conversion.is_affine() && !u.dim.is_dimensionless())?;
            let exp = if i == 0 || self.rng.gen_bool(0.5) { 1 } else { -1 };
            expr.push((id, exp));
        }
        let value = eval_powers(self.kb, &expr).ok()?;
        // The result must be a dimension some KB unit has, and non-trivial.
        let matches = self.kb.units_with_dim(value.dim);
        if matches.is_empty() || value.dim.is_dimensionless() {
            return None;
        }
        let correct = *matches.iter().max_by(|a, b| {
            self.kb
                .unit(**a)
                .frequency
                .partial_cmp(&self.kb.unit(**b).frequency)
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        let mut options = vec![correct];
        for _ in 0..(NUM_OPTIONS - 1) {
            let id = self.sample_unit(|u| u.dim != value.dim && !options.contains(&u.id))?;
            options.push(id);
        }
        let gold = self.shuffle_gold(&mut options, 0);
        let expr_text = expr
            .iter()
            .enumerate()
            .map(|(i, (id, exp))| {
                let sym = self.kb.unit(*id).symbol.clone();
                if i == 0 {
                    sym
                } else if *exp > 0 {
                    format!(" × {sym}")
                } else {
                    format!(" ÷ {sym}")
                }
            })
            .collect::<String>();
        let (labelled, _) = self.options_text(&options);
        let question = format!(
            "Which unit has the same dimension as the expression {expr_text}?  {labelled}"
        );
        let steps = expr
            .iter()
            .map(|(id, exp)| {
                let u = self.kb.unit(*id);
                format!("dim({}) = {}{}", u.symbol, u.dim.formula(), if *exp < 0 { " (divided)" } else { "" })
            })
            .collect::<Vec<_>>()
            .join("; ");
        let rationale = format!(
            "{steps}. Combining, dim({expr_text}) = {}. {} has exactly this dimension.",
            value.dim.formula(),
            self.display(options[gold]),
        );
        Some(ChoiceItem {
            task: TaskKind::DimensionArithmetic,
            question,
            options: options.iter().map(|&id| self.display(id)).collect(),
            answer: gold,
            rationale,
            meta: ItemMeta::DimArithmetic { expr, options },
        })
    }

    // ---- Def. 7: Magnitude Comparison ---------------------------------------

    fn magnitude(&mut self) -> Option<ChoiceItem> {
        let first = self.sample_unit(|u| !u.conversion.is_affine())?;
        let dim = self.kb.unit(first).dim;
        if self.kb.units_with_dim(dim).len() < NUM_OPTIONS {
            return None;
        }
        let mut options = vec![first];
        let mut factors = vec![self.kb.unit(first).conversion.factor];
        let anchor = factors[0];
        for _ in 0..(NUM_OPTIONS - 1) {
            let taken = options.clone();
            let existing = factors.clone();
            // Candidates within a few decades of the anchor make the item
            // discriminative (km vs mile, not km vs light-year); fall back
            // to any same-dimension unit if the family is too small.
            let near = self.sample_unit(move |u| {
                u.dim == dim
                    && !u.conversion.is_affine()
                    && !taken.contains(&u.id)
                    && (u.conversion.factor / anchor).abs().log10().abs() <= 3.5
                    // Distinct magnitudes keep a unique answer.
                    && existing.iter().all(|&f| {
                        let r = u.conversion.factor / f;
                        !(0.999..=1.001).contains(&r)
                    })
            });
            let taken = options.clone();
            let existing = factors.clone();
            let id = match near {
                Some(id) => id,
                None => self.sample_unit(move |u| {
                    u.dim == dim
                        && !u.conversion.is_affine()
                        && !taken.contains(&u.id)
                        && existing.iter().all(|&f| {
                            let r = u.conversion.factor / f;
                            !(0.999..=1.001).contains(&r)
                        })
                })?,
            };
            options.push(id);
            factors.push(self.kb.unit(id).conversion.factor);
        }
        let gold_id = options[factors
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?
            .0];
        let gold_pos = options.iter().position(|&o| o == gold_id)?;
        let gold = self.shuffle_gold(&mut options, gold_pos);
        let (labelled, _) = self.options_text(&options);
        let question =
            format!("Which of the following units has the largest magnitude?  {labelled}");
        let steps = options
            .iter()
            .map(|&id| {
                let u = self.kb.unit(id);
                format!("1 {} = {:.6e} SI", u.symbol, u.conversion.factor)
            })
            .collect::<Vec<_>>()
            .join("; ");
        let rationale = format!(
            "All candidates share dimension {}. {steps}. The largest is {}.",
            dim.formula(),
            self.display(options[gold]),
        );
        Some(ChoiceItem {
            task: TaskKind::MagnitudeComparison,
            question,
            options: options.iter().map(|&id| self.display(id)).collect(),
            answer: gold,
            rationale,
            meta: ItemMeta::Magnitude { options },
        })
    }

    // ---- Def. 8: Unit Conversion -----------------------------------------------

    fn conversion(&mut self) -> Option<ChoiceItem> {
        let from = self.sample_unit(|u| !u.conversion.is_affine())?;
        let dim = self.kb.unit(from).dim;
        let to = self.sample_unit(|u| u.dim == dim && !u.conversion.is_affine() && u.id != from)?;
        let beta = self.kb.conversion_factor(from, to).ok()?;
        // Same-scale pairs (公斤 vs 千克, g/cm³ vs kg/L) make a degenerate
        // conversion question; skip them.
        if !beta.is_finite() || beta == 0.0 || (beta - 1.0).abs() < 1e-9 {
            return None;
        }
        let mut factors = vec![beta, beta * 10.0, beta / 100.0, 1.0 / beta];
        // Keep factors pairwise distinct (β and 1/β collide near 1).
        let mut distinct: Vec<f64> = Vec::with_capacity(NUM_OPTIONS);
        for f in factors.drain(..) {
            if distinct.iter().all(|d| (d / f - 1.0).abs() > 1e-9) {
                distinct.push(f);
            }
        }
        let mut factors = distinct;
        while factors.len() < NUM_OPTIONS {
            factors.push(factors[0] * 10f64.powi(self.rng.gen_range(2..5)));
        }
        let gold = self.shuffle_gold(&mut factors, 0);
        let (fu, tu) = (self.kb.unit(from), self.kb.unit(to));
        let labelled = factors
            .iter()
            .enumerate()
            .map(|(i, f)| format!("({}) {}", OPTION_LETTERS[i], fmt_factor(*f)))
            .collect::<Vec<_>>()
            .join("  ");
        let question = format!(
            "By what factor β must a value in {} be multiplied to express it in {}?  {}",
            self.display(from),
            self.display(to),
            labelled
        );
        let rationale = format!(
            "1 {} = {:.6e} SI and 1 {} = {:.6e} SI, so β = {:.6e} / {:.6e} = {}.",
            fu.symbol,
            fu.conversion.factor,
            tu.symbol,
            tu.conversion.factor,
            fu.conversion.factor,
            tu.conversion.factor,
            fmt_factor(factors[gold]),
        );
        Some(ChoiceItem {
            task: TaskKind::UnitConversion,
            question,
            options: factors.iter().map(|f| fmt_factor(*f)).collect(),
            answer: gold,
            rationale,
            meta: ItemMeta::Conversion { from, to, factors },
        })
    }
}

/// Formats a conversion factor for display.
pub fn fmt_factor(f: f64) -> String {
    if f == 0.0 {
        return "0".into();
    }
    let a = f.abs();
    if (1e-4..1e7).contains(&a) {
        let s = format!("{f}");
        if s.len() <= 12 {
            return s;
        }
        return format!("{f:.6}");
    }
    format!("{f:.4e}")
}

fn lower_words(camel: &str) -> String {
    let mut out = String::new();
    for c in camel.chars() {
        if c.is_uppercase() && !out.is_empty() {
            out.push(' ');
        }
        out.extend(c.to_lowercase());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimkb::DimUnitKb;

    fn gen_items(task: TaskKind, n: usize) -> Vec<ChoiceItem> {
        let kb = DimUnitKb::shared();
        let mut g = Generator::new(&kb, 99);
        g.generate(task, n)
    }

    #[test]
    fn all_choice_tasks_generate() {
        for task in TaskKind::CHOICE {
            let items = gen_items(task, 10);
            assert_eq!(items.len(), 10, "{task:?}");
            for item in &items {
                assert_eq!(item.task, task);
                assert_eq!(item.options.len(), NUM_OPTIONS);
                assert!(item.answer < NUM_OPTIONS);
                assert!(!item.rationale.is_empty());
                assert!(!item.question.is_empty());
            }
        }
    }

    #[test]
    fn kind_match_gold_is_only_unit_of_kind_dim() {
        let kb = DimUnitKb::shared();
        for item in gen_items(TaskKind::QuantityKindMatch, 25) {
            let ItemMeta::KindMatch { kind, options } = &item.meta else { panic!() };
            let dim = kb.kind(*kind).dim;
            for (i, &u) in options.iter().enumerate() {
                if i == item.answer {
                    assert_eq!(kb.unit(u).dim, dim);
                } else {
                    assert_ne!(kb.unit(u).dim, dim, "distractors differ in dimension");
                }
            }
        }
    }

    #[test]
    fn comparable_gold_shares_reference_dim() {
        let kb = DimUnitKb::shared();
        for item in gen_items(TaskKind::ComparableAnalysis, 25) {
            let ItemMeta::Comparable { reference, options } = &item.meta else { panic!() };
            let dim = kb.unit(*reference).dim;
            assert_eq!(kb.unit(options[item.answer]).dim, dim);
            for (i, &u) in options.iter().enumerate() {
                if i != item.answer {
                    assert_ne!(kb.unit(u).dim, dim);
                }
            }
        }
    }

    #[test]
    fn dim_arithmetic_gold_matches_expression() {
        let kb = DimUnitKb::shared();
        for item in gen_items(TaskKind::DimensionArithmetic, 25) {
            let ItemMeta::DimArithmetic { expr, options } = &item.meta else { panic!() };
            let v = eval_powers(&kb, expr).unwrap();
            assert_eq!(kb.unit(options[item.answer]).dim, v.dim);
        }
    }

    #[test]
    fn magnitude_gold_is_largest() {
        let kb = DimUnitKb::shared();
        for item in gen_items(TaskKind::MagnitudeComparison, 25) {
            let ItemMeta::Magnitude { options } = &item.meta else { panic!() };
            let gold_f = kb.unit(options[item.answer]).conversion.factor;
            for &u in options {
                assert!(kb.unit(u).conversion.factor <= gold_f + 1e-12);
            }
        }
    }

    #[test]
    fn conversion_gold_factor_is_exact() {
        let kb = DimUnitKb::shared();
        for item in gen_items(TaskKind::UnitConversion, 25) {
            let ItemMeta::Conversion { from, to, factors } = &item.meta else { panic!() };
            let beta = kb.conversion_factor(*from, *to).unwrap();
            let gold = factors[item.answer];
            assert!((gold / beta - 1.0).abs() < 1e-9, "{gold} vs {beta}");
            // All options distinct.
            for (i, a) in factors.iter().enumerate() {
                for b in &factors[i + 1..] {
                    assert!((a / b - 1.0).abs() > 1e-9, "duplicate options {a} {b}");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_items(TaskKind::UnitConversion, 5);
        let b = gen_items(TaskKind::UnitConversion, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn answers_are_uniformly_spread() {
        // Shuffling must not leave the gold always at index 0.
        let items = gen_items(TaskKind::ComparableAnalysis, 40);
        let firsts = items.iter().filter(|i| i.answer == 0).count();
        assert!(firsts < 30, "answers concentrated at A: {firsts}/40");
    }

    #[test]
    fn masked_prediction_from_external_sentence() {
        let kb = DimUnitKb::shared();
        let mut g = Generator::new(&kb, 7);
        let kind = kb.kind_by_name("Height").unwrap().id;
        let item = g
            .dim_prediction_from_masked("勒布朗·詹姆斯的身高是[MASK]。", kind)
            .expect("generates");
        let ItemMeta::DimPrediction { gold_kind, options } = &item.meta else { panic!() };
        assert_eq!(*gold_kind, kind);
        assert_eq!(kb.unit(options[item.answer]).dim, kb.kind(kind).dim);
        assert!(item.question.contains("[MASK]"));
    }
}
