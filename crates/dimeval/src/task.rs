//! DimEval task definitions (Definitions 2–8 of the paper).

use dimkb::{KindId, UnitId};
use serde::{Deserialize, Serialize};

/// The three capability categories of DimEval (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Identifying quantities and matching them to kinds.
    BasicPerception,
    /// Comparability, dimension arithmetic, dimension prediction.
    DimensionPerception,
    /// Magnitude comparison and unit conversion.
    ScalePerception,
}

impl Category {
    /// All categories.
    pub const ALL: [Category; 3] =
        [Category::BasicPerception, Category::DimensionPerception, Category::ScalePerception];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Category::BasicPerception => "Basic Perception",
            Category::DimensionPerception => "Dimension Perception",
            Category::ScalePerception => "Scale Perception",
        }
    }
}

/// The seven DimEval tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Def. 2: extract quantities (value + unit) from text.
    QuantityExtraction,
    /// Def. 3: select the unit describing a given quantity kind.
    QuantityKindMatch,
    /// Def. 4: determine which unit is comparable (same dimension).
    ComparableAnalysis,
    /// Def. 5: select the unit whose dimension fits a masked slot.
    DimensionPrediction,
    /// Def. 6: select the unit matching the dimension of a unit expression.
    DimensionArithmetic,
    /// Def. 7: identify the unit of largest magnitude.
    MagnitudeComparison,
    /// Def. 8: determine the conversion factor between two units.
    UnitConversion,
}

impl TaskKind {
    /// All seven tasks in paper order.
    pub const ALL: [TaskKind; 7] = [
        TaskKind::QuantityExtraction,
        TaskKind::QuantityKindMatch,
        TaskKind::ComparableAnalysis,
        TaskKind::DimensionPrediction,
        TaskKind::DimensionArithmetic,
        TaskKind::MagnitudeComparison,
        TaskKind::UnitConversion,
    ];

    /// The six multiple-choice tasks (everything but extraction).
    pub const CHOICE: [TaskKind; 6] = [
        TaskKind::QuantityKindMatch,
        TaskKind::ComparableAnalysis,
        TaskKind::DimensionPrediction,
        TaskKind::DimensionArithmetic,
        TaskKind::MagnitudeComparison,
        TaskKind::UnitConversion,
    ];

    /// The category this task probes.
    pub fn category(self) -> Category {
        match self {
            TaskKind::QuantityExtraction | TaskKind::QuantityKindMatch => Category::BasicPerception,
            TaskKind::ComparableAnalysis
            | TaskKind::DimensionPrediction
            | TaskKind::DimensionArithmetic => Category::DimensionPerception,
            TaskKind::MagnitudeComparison | TaskKind::UnitConversion => Category::ScalePerception,
        }
    }

    /// Short display name matching the paper's table headers.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::QuantityExtraction => "Quantity Extraction",
            TaskKind::QuantityKindMatch => "QuanKind Match",
            TaskKind::ComparableAnalysis => "Comparable Analysis",
            TaskKind::DimensionPrediction => "Dimension Pred.",
            TaskKind::DimensionArithmetic => "Dimension Arith.",
            TaskKind::MagnitudeComparison => "Magnitude Comp.",
            TaskKind::UnitConversion => "Unit Conversion",
        }
    }
}

/// Structured payload of a choice item, so mechanical solvers can reason
/// over ids instead of re-parsing the prompt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ItemMeta {
    /// QuantityKind match: the kind and candidate units.
    KindMatch {
        /// The queried kind.
        kind: KindId,
        /// Candidate units, parallel to the options.
        options: Vec<UnitId>,
    },
    /// Comparable analysis: reference unit and candidates.
    Comparable {
        /// The reference unit.
        reference: UnitId,
        /// Candidate units.
        options: Vec<UnitId>,
    },
    /// Dimension prediction: masked sentence plus candidates.
    DimPrediction {
        /// The narrow kind implied by the context.
        gold_kind: KindId,
        /// Candidate units.
        options: Vec<UnitId>,
    },
    /// Dimension arithmetic: the expression as unit powers in order, with
    /// candidates.
    DimArithmetic {
        /// The unit-power expression `u1^e1 · u2^e2 · …`.
        expr: Vec<(UnitId, i8)>,
        /// Candidate units.
        options: Vec<UnitId>,
    },
    /// Magnitude comparison: candidates of one dimension.
    Magnitude {
        /// Candidate units.
        options: Vec<UnitId>,
    },
    /// Unit conversion: the unit pair and the candidate factors.
    Conversion {
        /// Source unit.
        from: UnitId,
        /// Target unit.
        to: UnitId,
        /// Candidate factors, parallel to the options.
        factors: Vec<f64>,
    },
}

impl ItemMeta {
    /// The candidate units, when the options are units.
    pub fn unit_options(&self) -> Option<&[UnitId]> {
        match self {
            ItemMeta::KindMatch { options, .. }
            | ItemMeta::Comparable { options, .. }
            | ItemMeta::DimPrediction { options, .. }
            | ItemMeta::DimArithmetic { options, .. }
            | ItemMeta::Magnitude { options } => Some(options),
            ItemMeta::Conversion { .. } => None,
        }
    }
}

/// A multiple-choice DimEval item (m = 4 options, like the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChoiceItem {
    /// Which task this item belongs to.
    pub task: TaskKind,
    /// The natural-language prompt.
    pub question: String,
    /// The m option strings, labelled (A)–(D) in the prompt.
    pub options: Vec<String>,
    /// Gold option index.
    pub answer: usize,
    /// The templated chain-of-thought rationale `R` (§IV-D).
    pub rationale: String,
    /// Structured payload.
    pub meta: ItemMeta,
}

/// A gold quantity for the extraction task: the value and unit surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldExtraction {
    /// Numeric value.
    pub value: f64,
    /// Unit surface form as written in the text.
    pub unit_surface: String,
}

/// A quantity-extraction item (Def. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractionItem {
    /// The input text.
    pub text: String,
    /// Gold quantities.
    pub gold: Vec<GoldExtraction>,
}

/// A solver's extracted quantity: parsed value plus unit surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractedQuantity {
    /// Parsed numeric value.
    pub value: f64,
    /// The unit text as extracted.
    pub unit_surface: String,
}

/// Anything that can take the DimEval benchmark.
///
/// `answer` may return `None` to abstain (the paper observes LLMs declining
/// questions they are unsure about, which depresses F1 relative to
/// precision).
pub trait DimEvalSolver {
    /// Display name for result tables.
    fn name(&self) -> String;

    /// Answer a multiple-choice item; `None` abstains.
    fn answer(&mut self, item: &ChoiceItem) -> Option<usize>;

    /// Extract quantities from text (Def. 2).
    fn extract(&mut self, text: &str) -> Vec<ExtractedQuantity>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_partition_tasks() {
        let mut counts = std::collections::HashMap::new();
        for t in TaskKind::ALL {
            *counts.entry(t.category()).or_insert(0usize) += 1;
        }
        assert_eq!(counts[&Category::BasicPerception], 2);
        assert_eq!(counts[&Category::DimensionPerception], 3);
        assert_eq!(counts[&Category::ScalePerception], 2);
    }

    #[test]
    fn choice_excludes_extraction() {
        assert!(!TaskKind::CHOICE.contains(&TaskKind::QuantityExtraction));
        assert_eq!(TaskKind::CHOICE.len(), 6);
    }

    #[test]
    fn unit_options_present_except_conversion() {
        let meta = ItemMeta::Conversion { from: UnitId(0), to: UnitId(1), factors: vec![1.0] };
        assert!(meta.unit_options().is_none());
        let meta = ItemMeta::Magnitude { options: vec![UnitId(0)] };
        assert_eq!(meta.unit_options().unwrap().len(), 1);
    }
}
