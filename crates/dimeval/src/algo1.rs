//! Algorithm 1: the semi-automated annotating method (§IV-C1).
//!
//! Three stages, exactly as in the paper:
//!
//! 1. **Heuristic annotation with DimKS** — the `dimlink` annotator scans
//!    values and links following mentions into DimUnitKB (high recall, and
//!    it deliberately over-triggers on device codes like `LPUI-1T`).
//! 2. **Masked-LM filtering** — each candidate value is masked and a
//!    numeric-slot model scores whether a number belongs there; low-scoring
//!    candidates are removed (this is where `LPUI-1T` dies).
//! 3. **Manual review** — a review oracle corrects residual errors. Here
//!    the oracle is the corpus gold (simulating the paper's human pass);
//!    the number of corrections it makes is reported.

use crate::task::{ExtractionItem, GoldExtraction};
use dim_corpus::{NumericSlotModel, Sentence};
use dimlink::{Annotator, QuantityMention};

// Observability (no-ops unless `dim_obs::enable()` was called).
static ALGO1_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("algo1.run");
static ALGO1_SENTENCES: dim_obs::Counter = dim_obs::Counter::new("algo1.sentences");
static ALGO1_MLM_REMOVED: dim_obs::Counter = dim_obs::Counter::new("algo1.mlm_removed");
static ALGO1_CORRECTED: dim_obs::Counter = dim_obs::Counter::new("algo1.corrected");

/// Configuration for Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct Algo1Config {
    /// Minimum masked-LM numeric probability for a candidate to survive
    /// stage 2.
    pub mlm_threshold: f64,
    /// Fan-out for the per-sentence annotate + filter work.
    pub parallelism: dim_par::Parallelism,
}

impl Default for Algo1Config {
    fn default() -> Self {
        Algo1Config { mlm_threshold: 0.18, parallelism: dim_par::Parallelism::SEQUENTIAL }
    }
}

/// Output of the pipeline, including per-stage quality measurements.
#[derive(Debug, Clone)]
pub struct Algo1Output {
    /// The final reviewed dataset `D'`.
    pub dataset: Vec<ExtractionItem>,
    /// Mention-level precision of stage 1 (heuristic only) against gold.
    pub stage1_precision: f64,
    /// Mention-level precision after the masked-LM filter — the paper
    /// reports 82% for this automated portion.
    pub stage2_precision: f64,
    /// Candidates removed by the masked-LM filter.
    pub removed_by_filter: usize,
    /// Mentions the (simulated) manual review had to fix or add.
    pub corrected_by_review: usize,
}

/// Does a predicted mention agree with some gold span of the sentence?
fn mention_correct(m: &QuantityMention, sent: &Sentence) -> bool {
    sent.quantities.iter().any(|g| {
        let value_ok = (g.value - m.value).abs() <= 1e-9 * g.value.abs().max(1.0);
        let overlap = m.unit_span.0 < g.unit_span.1 && g.unit_span.0 < m.unit_span.1;
        value_ok && overlap
    })
}

/// Per-sentence tallies produced by the (possibly parallel) stage 1+2 pass;
/// folded in corpus order so every thread count yields identical output.
#[derive(Default)]
struct SentenceTally {
    stage1_total: usize,
    stage1_correct: usize,
    stage2_total: usize,
    stage2_correct: usize,
    removed: usize,
    corrected: usize,
    item: Option<ExtractionItem>,
}

/// Runs the three-stage pipeline over an annotated corpus. Sentences are
/// independent, so the annotate + filter work fans out across
/// `config.parallelism`; tallies are reduced in corpus order.
pub fn semi_automated_annotate(
    annotator: &Annotator,
    mlm: &NumericSlotModel,
    corpus: &[Sentence],
    config: Algo1Config,
) -> Algo1Output {
    let _span = ALGO1_SPAN.span();
    ALGO1_SENTENCES.add(corpus.len() as u64);
    let tallies = dim_par::par_map_scratch(
        config.parallelism,
        corpus,
        dimlink::ScratchSpace::new,
        |_, sent, scratch| {
        let mut t = SentenceTally::default();
        // Stage 1: heuristic DimKS annotation with per-worker scratch; keep
        // sentences with numerics.
        let mentions = annotator.annotate_with(&sent.text, scratch);
        if mentions.is_empty() {
            return t;
        }
        for m in &mentions {
            t.stage1_total += 1;
            if mention_correct(m, sent) {
                t.stage1_correct += 1;
            }
        }

        // Stage 2: mask each value and keep numeric-looking slots.
        let surviving: Vec<&QuantityMention> = mentions
            .iter()
            .filter(|m| {
                let p = mlm.mask_and_score(&sent.text, m.value_span.0).unwrap_or(0.0);
                let keep = p >= config.mlm_threshold;
                if !keep {
                    t.removed += 1;
                }
                keep
            })
            .collect();
        for m in &surviving {
            t.stage2_total += 1;
            if mention_correct(m, sent) {
                t.stage2_correct += 1;
            }
        }

        // Stage 3: manual review (gold oracle) — count corrections.
        let surviving_correct = surviving.iter().filter(|m| mention_correct(m, sent)).count();
        let false_positives = surviving.len() - surviving_correct;
        let missed = sent.quantities.len().saturating_sub(surviving_correct);
        t.corrected = false_positives + missed;
        t.item = Some(ExtractionItem {
            text: sent.text.clone(),
            gold: sent
                .quantities
                .iter()
                .map(|q| GoldExtraction { value: q.value, unit_surface: q.unit_surface.clone() })
                .collect(),
        });
        t
    });

    let mut stage1_total = 0usize;
    let mut stage1_correct = 0usize;
    let mut stage2_total = 0usize;
    let mut stage2_correct = 0usize;
    let mut removed = 0usize;
    let mut corrected = 0usize;
    let mut dataset = Vec::new();
    for t in tallies {
        stage1_total += t.stage1_total;
        stage1_correct += t.stage1_correct;
        stage2_total += t.stage2_total;
        stage2_correct += t.stage2_correct;
        removed += t.removed;
        corrected += t.corrected;
        dataset.extend(t.item);
    }

    ALGO1_MLM_REMOVED.add(removed as u64);
    ALGO1_CORRECTED.add(corrected as u64);
    let ratio = |c: usize, t: usize| if t == 0 { 0.0 } else { c as f64 / t as f64 };
    Algo1Output {
        dataset,
        stage1_precision: ratio(stage1_correct, stage1_total),
        stage2_precision: ratio(stage2_correct, stage2_total),
        removed_by_filter: removed,
        corrected_by_review: corrected,
    }
}

/// Trains the numeric-slot model on the corpus itself (the paper uses a
/// BERT pretrained on clean text; here the clean text is the corpus minus
/// nothing — the model learns which contexts host numbers, which is the
/// discriminative signal the filter needs).
pub fn train_filter(corpus: &[Sentence]) -> NumericSlotModel {
    NumericSlotModel::train(corpus.iter().map(|s| s.text.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_corpus::CorpusConfig;
    use dimkb::DimUnitKb;
    use dimlink::{LinkerConfig, UnitLinker};

    fn run() -> Algo1Output {
        let kb = DimUnitKb::shared();
        let corpus = dim_corpus::generate(&kb, &CorpusConfig { sentences: 250, seed: 3 });
        let annotator =
            Annotator::new(UnitLinker::new(kb, None, LinkerConfig::default()));
        let mlm = train_filter(&corpus);
        semi_automated_annotate(&annotator, &mlm, &corpus, Algo1Config::default())
    }

    #[test]
    fn filter_improves_precision() {
        let out = run();
        assert!(
            out.stage2_precision >= out.stage1_precision,
            "MLM filter must not hurt precision: {} -> {}",
            out.stage1_precision,
            out.stage2_precision
        );
        assert!(out.removed_by_filter > 0, "decoys should be filtered");
    }

    #[test]
    fn automated_precision_is_in_paper_range() {
        // The paper reports 82% accuracy for the automated portion; our
        // substrate should land in a comparable band (>70%).
        let out = run();
        assert!(
            out.stage2_precision > 0.70,
            "automated precision too low: {}",
            out.stage2_precision
        );
    }

    #[test]
    fn dataset_is_nonempty_with_gold() {
        let out = run();
        assert!(out.dataset.len() > 100);
        assert!(out.dataset.iter().all(|d| !d.gold.is_empty()));
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let kb = DimUnitKb::shared();
        let corpus = dim_corpus::generate(&kb, &CorpusConfig { sentences: 250, seed: 3 });
        let annotator = Annotator::new(UnitLinker::new(kb, None, LinkerConfig::default()));
        let mlm = train_filter(&corpus);
        let seq = semi_automated_annotate(&annotator, &mlm, &corpus, Algo1Config::default());
        let par = semi_automated_annotate(
            &annotator,
            &mlm,
            &corpus,
            Algo1Config { parallelism: dim_par::Parallelism::new(4), ..Default::default() },
        );
        assert_eq!(seq.dataset, par.dataset);
        assert_eq!(seq.stage1_precision, par.stage1_precision);
        assert_eq!(seq.stage2_precision, par.stage2_precision);
        assert_eq!(seq.removed_by_filter, par.removed_by_filter);
        assert_eq!(seq.corrected_by_review, par.corrected_by_review);
    }

    #[test]
    fn review_counts_are_reported() {
        let out = run();
        // Review exists precisely because automation is imperfect.
        assert!(out.corrected_by_review > 0);
    }
}
