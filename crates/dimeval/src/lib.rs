//! # dimeval — the DimEval benchmark (§IV of the paper)
//!
//! Seven tasks in three categories probe dimension perception:
//!
//! * **Basic Perception** — quantity extraction (Def. 2), quantity-kind
//!   match (Def. 3);
//! * **Dimension Perception** — comparable analysis (Def. 4), dimension
//!   prediction (Def. 5), dimension arithmetic (Def. 6);
//! * **Scale Perception** — magnitude comparison (Def. 7), unit conversion
//!   (Def. 8).
//!
//! Datasets are constructed exactly as §IV-C describes: Algorithm 1
//! (semi-automated annotating with a masked-LM filter) for extraction,
//! Algorithm 2 (bootstrapping retrieval over a knowledge graph, then
//! verbalization) for dimension prediction, and heuristic rule-based
//! generation with DimKS for the rest. Items carry templated
//! chain-of-thought rationales (§IV-D).

#![warn(missing_docs)]

pub mod algo1;
pub mod algo2;
mod benchmark;
pub mod cot;
pub mod gen;
pub mod metrics;
pub mod perturb;
mod task;

pub use benchmark::{evaluate, DimEval, DimEvalConfig, EvalReport};
pub use gen::{Generator, NUM_OPTIONS, OPTION_LETTERS};
pub use perturb::{detection_rates, mutate, Mutation, MutationClass, PerturbRow};
pub use metrics::{ChoiceScore, ExtractionScore, PrfCounts};
pub use task::{
    Category, ChoiceItem, DimEvalSolver, ExtractedQuantity, ExtractionItem, GoldExtraction,
    ItemMeta, TaskKind,
};
