//! Per-request deadline budgets.
//!
//! Every request carries a [`Deadline`] from the moment its connection is
//! accepted: the server default ([`crate::server::ServerConfig::default_deadline`])
//! unless the client narrows it with an `X-Deadline-Ms` header. The budget
//! clock starts when the *bytes* started waiting, not when a worker got
//! around to them — for the first request on a connection that is the accept
//! instant (so time spent in the bounded queue counts), and for subsequent
//! keep-alive requests it is the instant the request head started arriving.
//!
//! A request whose budget is exhausted before dispatch is **shed**: a
//! deterministic `503` with `Retry-After`, counted under `srv.deadline.*`,
//! and the connection stays open (the worker already owns it; the client's
//! retry lands immediately). Budgets also propagate into the micro-batcher,
//! which clamps its linger window to the tightest remaining budget in the
//! pending batch — a request never waits for batch-mates it cannot afford.
//!
//! [`Deadline`] is a plain `Copy` wrapper over `Option<Instant>`;
//! [`Deadline::unbounded`] is the identity element used by tests and
//! internal callers that predate deadline plumbing.

use std::time::{Duration, Instant};

/// Floor for a client-requested budget: anything below 1 ms is treated as
/// 1 ms rather than rejected, so `X-Deadline-Ms: 0` still gets a determinate
/// answer (usually an immediate shed) instead of a parse error.
pub const MIN_DEADLINE: Duration = Duration::from_millis(1);

/// An absolute point in time after which a request is not worth serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn unbounded() -> Deadline {
        Deadline { at: None }
    }

    /// A deadline `budget` after `start`.
    pub fn after(start: Instant, budget: Duration) -> Deadline {
        Deadline { at: start.checked_add(budget) }
    }

    /// The absolute expiry instant, if bounded.
    pub fn instant(self) -> Option<Instant> {
        self.at
    }

    /// Whether the deadline has passed as of `now`.
    pub fn expired_at(self, now: Instant) -> bool {
        self.at.is_some_and(|at| now >= at)
    }

    /// Whether the deadline has passed.
    pub fn expired(self) -> bool {
        self.expired_at(Instant::now())
    }

    /// Budget remaining as of `now` (zero once expired, `None` if unbounded).
    pub fn remaining_at(self, now: Instant) -> Option<Duration> {
        self.at.map(|at| at.saturating_duration_since(now))
    }
}

/// Outcome of reading the optional `X-Deadline-Ms` request header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderBudget {
    /// Header absent; use the server default.
    Default,
    /// Header present and valid; the clamped budget.
    Requested(Duration),
    /// Header present but not a positive integer; answer `400`.
    Invalid,
}

/// Parses `X-Deadline-Ms`, clamping a valid value into
/// `[MIN_DEADLINE, max]`. Clamping (rather than rejecting) out-of-range
/// values keeps the header best-effort: a client asking for more budget than
/// the server allows gets the server's ceiling, not an error.
pub fn parse_header_budget(value: Option<&str>, max: Duration) -> HeaderBudget {
    let Some(raw) = value else {
        return HeaderBudget::Default;
    };
    match raw.trim().parse::<u64>() {
        Ok(ms) => {
            let budget = Duration::from_millis(ms).clamp(MIN_DEADLINE, max);
            HeaderBudget::Requested(budget)
        }
        Err(_) => HeaderBudget::Invalid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let d = Deadline::unbounded();
        assert!(!d.expired());
        assert_eq!(d.instant(), None);
        assert_eq!(d.remaining_at(Instant::now()), None);
    }

    #[test]
    fn bounded_expires_exactly_at_the_instant() {
        let start = Instant::now();
        let d = Deadline::after(start, Duration::from_millis(10));
        assert!(!d.expired_at(start));
        assert!(!d.expired_at(start + Duration::from_millis(9)));
        assert!(d.expired_at(start + Duration::from_millis(10)));
        assert!(d.expired_at(start + Duration::from_secs(1)));
    }

    #[test]
    fn remaining_saturates_to_zero() {
        let start = Instant::now();
        let d = Deadline::after(start, Duration::from_millis(5));
        assert_eq!(d.remaining_at(start), Some(Duration::from_millis(5)));
        assert_eq!(d.remaining_at(start + Duration::from_secs(1)), Some(Duration::ZERO));
    }

    #[test]
    fn header_budget_absent_is_default() {
        assert_eq!(parse_header_budget(None, Duration::from_secs(5)), HeaderBudget::Default);
    }

    #[test]
    fn header_budget_is_clamped_both_ways() {
        let max = Duration::from_secs(5);
        assert_eq!(
            parse_header_budget(Some("250"), max),
            HeaderBudget::Requested(Duration::from_millis(250))
        );
        assert_eq!(parse_header_budget(Some("0"), max), HeaderBudget::Requested(MIN_DEADLINE));
        assert_eq!(parse_header_budget(Some("999999999"), max), HeaderBudget::Requested(max));
        assert_eq!(parse_header_budget(Some("  40 "), max), HeaderBudget::Requested(Duration::from_millis(40)));
    }

    #[test]
    fn header_budget_garbage_is_invalid() {
        let max = Duration::from_secs(5);
        for bad in ["", "-5", "soon", "1.5", "10ms", "0x20"] {
            assert_eq!(parse_header_budget(Some(bad), max), HeaderBudget::Invalid, "{bad:?}");
        }
    }
}
