//! A bounded MPMC queue with non-blocking producers and blocking consumers
//! — the backpressure point between the acceptor and the worker pool.
//!
//! The producer side never blocks: [`Bounded::push`] on a full queue
//! returns the item back immediately, which the server turns into a
//! deterministic `503` (and the `srv.rejected` counter). The consumer side
//! blocks on a condvar until an item arrives or the queue is closed;
//! [`Bounded::close`] lets already-queued items drain before consumers see
//! the end-of-stream, which is exactly the graceful-shutdown order.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

static QUEUE_DEPTH: dim_obs::Gauge = dim_obs::Gauge::new("srv.queue.depth");
static QUEUE_PUSHED: dim_obs::Counter = dim_obs::Counter::new("srv.queue.pushed");

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (clamped to at least 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Enqueues `item` without blocking; a full or closed queue refuses and
    /// returns the item so the caller can answer with backpressure.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        QUEUE_PUSHED.inc();
        QUEUE_DEPTH.set(inner.items.len() as u64);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is open and empty.
    /// Returns `None` only once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                QUEUE_DEPTH.set(inner.items.len() as u64);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = match self.ready.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Closes the queue: new pushes fail, queued items still drain, blocked
    /// consumers wake (and see `None` once the backlog is gone).
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Whether [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        for i in 0..4 {
            q.push(i).expect("within capacity");
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = Bounded::new(2);
        q.push(1).expect("ok");
        q.push(2).expect("ok");
        assert_eq!(q.push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.push(3).expect("space again");
    }

    #[test]
    fn close_drains_backlog_then_ends() {
        let q = Bounded::new(4);
        q.push("a").expect("ok");
        q.push("b").expect("ok");
        q.close();
        assert_eq!(q.push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays ended");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..20 {
            while q.push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|h| h.join().expect("consumer thread"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }
}
