//! `dimserve` — the DimKS HTTP server.
//!
//! ```text
//! cargo run --release --bin dimserve -- [--port N] [--workers N]
//!     [--queue N] [--threads N] [--max-conns N] [--deadline-ms N]
//!     [--max-deadline-ms N] [--header-budget-ms N]
//!     [--chaos-seed S] [--chaos-rate R] [--conn-chaos-rate R]
//!     [--obs-out PATH] [--snapshot PATH]
//!
//! With `--snapshot`, the KB is loaded from a `dimsnap emit` binary
//! snapshot (microsecond validation + lazy decode) instead of being built;
//! `POST /admin/reload` re-reads it without restarting the server.
//! ```
//!
//! Serves `POST /link|/annotate|/convert|/solve` and `GET
//! /healthz|/metrics` until stdin reaches EOF (`Ctrl-D`, or the parent
//! closing the pipe — `std` has no portable signal handling), then drains
//! gracefully and writes the final obs report.

use dim_serve::{AppConfig, ServerConfig};
use std::io::Read;
use std::time::Duration;

fn flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn parse_flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    flag(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let port: u16 = parse_flag("--port", 8080);
    let workers: usize = parse_flag("--workers", 2);
    let queue: usize = parse_flag("--queue", 64);
    let threads: usize = parse_flag("--threads", 1);
    let max_conns: usize = parse_flag("--max-conns", 256);
    let deadline_ms: u64 = parse_flag("--deadline-ms", 5000);
    let max_deadline_ms: u64 = parse_flag("--max-deadline-ms", 30_000);
    let header_budget_ms: u64 = parse_flag("--header-budget-ms", 2000);
    let chaos_seed: u64 = parse_flag("--chaos-seed", 7);
    let chaos_rate: f64 = parse_flag("--chaos-rate", 0.0);
    let conn_chaos_rate: f64 = parse_flag("--conn-chaos-rate", 0.0);
    let obs_out = flag("--obs-out").unwrap_or_else(|| "obs_report.json".to_string());
    let snapshot = flag("--snapshot");

    if chaos_rate > 0.0 {
        // Injected panics are expected and caught per-request; keep stderr
        // readable during a chaos soak.
        dim_chaos::silence_injected_panic_reports();
        dim_chaos::install(dim_chaos::FaultPlan::new(chaos_seed, chaos_rate));
        eprintln!("chaos: seed={chaos_seed} rate={chaos_rate}");
    }
    if conn_chaos_rate > 0.0 {
        dim_chaos::install_conn(dim_chaos::ConnPlan::new(chaos_seed, conn_chaos_rate));
        eprintln!("conn-chaos: seed={chaos_seed} rate={conn_chaos_rate}");
    }

    let config = ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        workers,
        queue_capacity: queue,
        max_connections: max_conns,
        default_deadline: Duration::from_millis(deadline_ms),
        max_deadline: Duration::from_millis(max_deadline_ms),
        header_read_budget: Duration::from_millis(header_budget_ms),
        read_timeout: Duration::from_millis(25),
        idle_timeout_ticks: 2400, // ~60 s of idle keep-alive
        app: AppConfig {
            parallelism: dim_par::Parallelism::new(threads),
            snapshot_path: snapshot,
            ..AppConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = match dim_serve::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dimserve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("dimserve listening on {}", server.addr());
    println!("(EOF on stdin triggers graceful drain)");

    // Block until the controlling terminal/pipe hangs up.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);

    let report = server.shutdown();
    if let Err(e) = std::fs::write(&obs_out, &report.obs_json) {
        eprintln!("dimserve: writing {obs_out} failed: {e}");
    }
    println!(
        "drained: requests={} connections={} rejected={} deadline_shed={} degraded={} open={} (obs -> {obs_out})",
        report.requests,
        report.connections,
        report.rejected,
        report.deadline_shed,
        report.degraded,
        report.open_connections
    );
}
