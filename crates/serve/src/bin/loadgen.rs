//! `loadgen` — deterministic closed-loop load generator for `dim-serve`.
//!
//! ```text
//! cargo run --release --bin loadgen -- [--clients N] [--requests N]
//!     [--seed S] [--workers N] [--threads N] [--queue N] [--out PATH]
//! ```
//!
//! Starts an in-process server on an ephemeral port and drives it with
//! `--clients` seeded closed-loop clients (each sends, waits for the
//! response, sends again). Each client draws uniformly from its own
//! payload pool — a fixed mix of ~50% `/link`, 25% `/annotate`, 15%
//! `/convert`, 7.5% `/solve`, 2.5% `/healthz` — built from
//! `dim_par::seed_for(seed, client)` so run N and run N+1 issue the exact
//! same requests.
//!
//! The report (`BENCH_serve.json` by default) separates the
//! **deterministic** block — request/status counts, an order-independent
//! response checksum, cache hit/miss counts — which must be byte-identical
//! run-to-run for a fixed config, from the **timing** block (throughput,
//! p50/p99/p999 latency) which varies with the machine. Payload pools are
//! client-disjoint and well under cache capacity, so hit/miss counts are
//! free of cross-client races and evictions.

use dim_serve::server::client::Conn;
use dim_serve::{cache, AppConfig, ServerConfig};
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn parse_flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    flag(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One request in a client's pool.
struct Payload {
    method: &'static str,
    target: &'static str,
    body: String,
}

/// Builds client `c`'s disjoint payload pool: 20 link + 10 annotate +
/// 6 convert + 3 solve + 1 healthz = 40 entries, so a uniform draw gives
/// the fixed mix. Client-disjointness comes from embedding `c` in every
/// body, which keeps cache hits strictly within one client.
fn build_pool(c: usize, rng: &mut rand::rngs::StdRng) -> Vec<Payload> {
    const MENTIONS: &[&str] = &["km", "cm", "mm", "kg", "mg", "ms", "mph", "米", "千米", "小时"];
    const CONVERSIONS: &[(&str, &str)] =
        &[("km", "m"), ("m", "cm"), ("cm", "mm"), ("kg", "g"), ("g", "mg"), ("h", "min")];
    let mut pool = Vec::with_capacity(40);
    for _ in 0..20 {
        let mention = MENTIONS[rng.gen_range(0..MENTIONS.len())]; // lint:allow(no_panic, gen_range(0..len) is in bounds for the non-empty const array)
        pool.push(Payload {
            method: "POST",
            target: "/link",
            body: format!(
                "{{\"mention\":{:?},\"context\":\"client {c} measured the distance\"}}",
                mention
            ),
        });
    }
    for _ in 0..10 {
        let v = rng.gen_range(1..500) as f64 / 10.0;
        let w = rng.gen_range(1..90);
        pool.push(Payload {
            method: "POST",
            target: "/annotate",
            body: format!(
                "{{\"text\":\"Runner {c} covered {v} kilometers carrying {w} kg of gear.\"}}"
            ),
        });
    }
    for _ in 0..6 {
        let (from, to) = CONVERSIONS[rng.gen_range(0..CONVERSIONS.len())]; // lint:allow(no_panic, gen_range(0..len) is in bounds for the non-empty const array)
        let v = rng.gen_range(1..1000) as f64 / 4.0 + c as f64 * 1000.0;
        pool.push(Payload {
            method: "POST",
            target: "/convert",
            body: format!("{{\"value\":{v},\"from\":{from:?},\"to\":{to:?}}}"),
        });
    }
    for _ in 0..3 {
        let (a, b, d) = (rng.gen_range(1..50), rng.gen_range(1..50), rng.gen_range(1..9));
        pool.push(Payload {
            method: "POST",
            target: "/solve",
            body: format!("{{\"equation\":\"x=({a}+{b})*{d}\"}}"),
        });
    }
    pool.push(Payload { method: "GET", target: "/healthz", body: String::new() });
    pool
}

/// What one client observed.
#[derive(Default)]
struct ClientStats {
    latencies_ns: Vec<u64>,
    by_class: [u64; 3], // 2xx / 4xx / 5xx
    checksum: u64,      // XOR of body hashes: order-independent
    errors: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn run_client(
    addr: std::net::SocketAddr,
    c: usize,
    seed: u64,
    requests: usize,
) -> ClientStats {
    let mut rng = rand::rngs::StdRng::seed_from_u64(dim_par::seed_for(seed, c as u64));
    let pool = build_pool(c, &mut rng);
    let mut stats = ClientStats::default();
    let Ok(mut conn) = Conn::connect(addr) else {
        stats.errors = requests as u64;
        return stats;
    };
    for _ in 0..requests {
        let p = &pool[rng.gen_range(0..pool.len())]; // lint:allow(no_panic, build_pool always returns 40 entries; gen_range(0..len) is in bounds)
        let t0 = Instant::now();
        match conn.request(p.method, p.target, &p.body) {
            Ok(resp) => {
                stats.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                let class = match resp.status {
                    200..=299 => 0,
                    400..=499 => 1,
                    _ => 2,
                };
                stats.by_class[class] += 1; // lint:allow(no_panic, class is 0, 1, or 2 from the match above; the array has 3 slots)
                stats.checksum ^= fnv1a(resp.body.as_bytes());
                if resp.close {
                    match Conn::connect(addr) {
                        Ok(fresh) => conn = fresh,
                        Err(_) => {
                            stats.errors += 1;
                            break;
                        }
                    }
                }
            }
            Err(_) => {
                stats.errors += 1;
                match Conn::connect(addr) {
                    Ok(fresh) => conn = fresh,
                    Err(_) => break,
                }
            }
        }
    }
    stats
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] // lint:allow(no_panic, rank is clamped to 1..=len and the slice is non-empty, so rank - 1 < len)
}

fn main() {
    let clients: usize = parse_flag("--clients", 4);
    let requests: usize = parse_flag("--requests", 200);
    let seed: u64 = parse_flag("--seed", 7);
    let workers: usize = parse_flag("--workers", 2);
    let threads: usize = parse_flag("--threads", 1);
    let queue: usize = parse_flag("--queue", 64);
    let out = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    let server = match dim_serve::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: queue,
        read_timeout: Duration::from_millis(25),
        idle_timeout_ticks: 2400,
        app: AppConfig {
            parallelism: dim_par::Parallelism::new(threads),
            ..AppConfig::default()
        },
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    eprintln!("loadgen: {clients} clients x {requests} requests against {addr}");

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| std::thread::spawn(move || run_client(addr, c, seed, requests)))
        .collect();
    let mut all = ClientStats::default();
    for h in handles {
        let Ok(stats) = h.join() else {
            eprintln!("loadgen: client thread panicked");
            continue;
        };
        all.latencies_ns.extend(stats.latencies_ns);
        for i in 0..3 {
            all.by_class[i] += stats.by_class[i]; // lint:allow(no_panic, i < 3 and both arrays are [u64; 3])
        }
        all.checksum ^= stats.checksum;
        all.errors += stats.errors;
    }
    let elapsed = t0.elapsed();
    let (hits, misses, evictions) = cache::counters();
    let report = server.shutdown();

    all.latencies_ns.sort_unstable();
    let total = all.latencies_ns.len() as u64;
    let throughput = total as f64 / elapsed.as_secs_f64();
    let hit_rate = if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"config\": {{\"clients\": {clients}, \"requests_per_client\": {requests}, \"seed\": {seed}, \"workers\": {workers}, \"threads\": {threads}, \"queue\": {queue}}},"
    );
    let _ = writeln!(json, "  \"deterministic\": {{");
    let _ = writeln!(json, "    \"requests\": {},", total + all.errors);
    let _ = writeln!(
        json,
        "    \"responses\": {{\"2xx\": {}, \"4xx\": {}, \"5xx\": {}, \"transport_errors\": {}}},",
        all.by_class[0], all.by_class[1], all.by_class[2], all.errors // lint:allow(no_panic, constant indices into the [u64; 3] class array)
    );
    let _ = writeln!(json, "    \"response_checksum\": \"{:#018x}\",", all.checksum);
    let _ = writeln!(
        json,
        "    \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": {evictions}, \"hit_rate\": {hit_rate:.4}}},"
    );
    let _ = writeln!(
        json,
        "    \"server\": {{\"rejected\": {}, \"degraded\": {}}}",
        report.rejected, report.degraded
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"timing\": {{");
    let _ = writeln!(json, "    \"elapsed_ms\": {},", elapsed.as_millis());
    let _ = writeln!(json, "    \"throughput_rps\": {throughput:.1},");
    let _ = writeln!(
        json,
        "    \"latency_ns\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        percentile(&all.latencies_ns, 0.50),
        percentile(&all.latencies_ns, 0.99),
        percentile(&all.latencies_ns, 0.999),
        all.latencies_ns.last().copied().unwrap_or(0)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("loadgen: writing {out} failed: {e}");
        std::process::exit(1);
    }
    // stderr gets the human summary; the JSON file is the artifact.
    eprintln!(
        "loadgen: {total} ok (+{} errors) in {:.2}s ({throughput:.0} req/s), cache hit-rate {:.1}%, checksum {:#018x} -> {out}",
        all.errors,
        elapsed.as_secs_f64(),
        hit_rate * 100.0,
        all.checksum
    );
}
