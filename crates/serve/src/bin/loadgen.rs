//! `loadgen` — deterministic closed-loop load generator for `dim-serve`.
//!
//! ```text
//! cargo run --release --bin loadgen -- [--clients N] [--requests N]
//!     [--seed S] [--workers N] [--threads N] [--queue N] [--max-conns N]
//!     [--deadline-ms N] [--cache-per-shard N] [--warmup N]
//!     [--retry-after-cap-ms N] [--out PATH] [--soak]
//! ```
//!
//! Starts an in-process server on an ephemeral port and drives it with the
//! seeded retrying clients from `dim_serve::load` (capped exponential
//! backoff, seeded jitter, `Retry-After` honored). `--soak` switches to the
//! overload profile: more clients than the admission layer will admit at
//! once, a tight default deadline, and ≥100k logical requests — the
//! configuration committed as `BENCH_serve.json`.
//!
//! The report separates the **deterministic** block (final outcomes +
//! response checksum + cache counts — byte-identical run-to-run), the
//! **load** block (attempts/retries/sheds — real but timing-dependent),
//! and the **timing** block (latency percentiles over steady-state
//! keep-alive samples, warmup and first-on-connection excluded).

use dim_serve::load::{LoadConfig, LoadReport};
use dim_serve::{cache, AppConfig, ServerConfig};
use std::fmt::Write as _;
use std::time::Duration;

fn flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn parse_flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    flag(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let soak = has_flag("--soak");
    // The soak profile: more clients than the gate admits, more admitted
    // connections than workers, a deadline tight enough that queued
    // connections shed, and ≥100k requests. Sized for a small machine —
    // on one core, piling on threads measures the kernel scheduler, not
    // the server (raise --clients/--workers on bigger hardware).
    let (d_clients, d_requests, d_workers, d_queue, d_conns, d_deadline) =
        if soak { (3, 33_600, 1, 2, 2, 200) } else { (4, 200, 2, 64, 256, 5000) };
    let clients: usize = parse_flag("--clients", d_clients);
    let requests: usize = parse_flag("--requests", d_requests);
    let seed: u64 = parse_flag("--seed", 7);
    let workers: usize = parse_flag("--workers", d_workers);
    let threads: usize = parse_flag("--threads", 1);
    let queue: usize = parse_flag("--queue", d_queue);
    let max_conns: usize = parse_flag("--max-conns", d_conns);
    let deadline_ms: u64 = parse_flag("--deadline-ms", d_deadline);
    let cache_per_shard: usize = parse_flag("--cache-per-shard", 1024);
    let warmup: usize = parse_flag("--warmup", 16);
    let retry_after_cap_ms: u64 = parse_flag("--retry-after-cap-ms", 25);
    let out = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    let server = match dim_serve::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: queue,
        max_connections: max_conns,
        default_deadline: Duration::from_millis(deadline_ms),
        idle_timeout_ticks: 2400,
        app: AppConfig {
            cache_per_shard,
            parallelism: dim_par::Parallelism::new(threads),
            ..AppConfig::default()
        },
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    eprintln!(
        "loadgen: {clients} clients x {requests} requests against {addr} \
         (workers={workers} queue={queue} max-conns={max_conns} deadline={deadline_ms}ms)"
    );

    let cache_before = cache::counters();
    let config = LoadConfig {
        clients,
        requests_per_client: requests,
        seed,
        warmup,
        retry_after_cap_ms,
        ..LoadConfig::default()
    };
    let all: LoadReport = dim_serve::load::run(addr, &config);
    let cache_after = cache::counters();
    let cache_delta = (
        cache_after.0 - cache_before.0,
        cache_after.1 - cache_before.1,
        cache_after.2 - cache_before.2,
    );
    let report = server.shutdown();

    let samples = all.latencies_ns.len() as u64;
    let throughput = all.logical_requests as f64 / all.elapsed.as_secs_f64();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"config\": {{\"clients\": {clients}, \"requests_per_client\": {requests}, \"seed\": {seed}, \"workers\": {workers}, \"threads\": {threads}, \"queue\": {queue}, \"max_connections\": {max_conns}, \"deadline_ms\": {deadline_ms}, \"cache_per_shard\": {cache_per_shard}, \"warmup\": {warmup}, \"soak\": {soak}}},"
    );
    let _ = writeln!(json, "  \"deterministic\": {},", all.deterministic_json(cache_delta));
    let _ = writeln!(json, "  \"load\": {{");
    let _ = writeln!(
        json,
        "    \"attempts\": {}, \"retries\": {}, \"sheds\": {}, \"transport_errors\": {}, \"gave_up\": {},",
        all.attempts, all.retries, all.sheds, all.transport_errors, all.gave_up
    );
    let _ = writeln!(
        json,
        "    \"server\": {{\"rejected\": {}, \"deadline_shed\": {}, \"conn_faults\": {}, \"degraded\": {}, \"open_connections_after_drain\": {}}}",
        report.rejected,
        report.deadline_shed,
        report.conn_faults,
        report.degraded,
        report.open_connections
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"timing\": {{");
    let _ = writeln!(json, "    \"elapsed_ms\": {},", all.elapsed.as_millis());
    let _ = writeln!(json, "    \"throughput_rps\": {throughput:.1},");
    let _ = writeln!(
        json,
        "    \"samples\": {samples}, \"excluded\": {{\"warmup\": {}, \"first_on_connection\": {}}},",
        all.excluded_warmup, all.excluded_first_conn
    );
    let _ = writeln!(
        json,
        "    \"latency_ns\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        all.percentile(0.50),
        all.percentile(0.99),
        all.percentile(0.999),
        all.latencies_ns.last().copied().unwrap_or(0)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("loadgen: writing {out} failed: {e}");
        std::process::exit(1);
    }
    // stderr gets the human summary; the JSON file is the artifact.
    eprintln!(
        "loadgen: {} logical requests ({} attempts, {} sheds, {} retries, {} gave up) in {:.2}s ({throughput:.0} req/s), p999 {}ns over {samples} samples, checksum {:#018x} -> {out}",
        all.logical_requests,
        all.attempts,
        all.sheds,
        all.retries,
        all.gave_up,
        all.elapsed.as_secs_f64(),
        all.percentile(0.999),
        all.response_checksum
    );
    if all.gave_up > 0 {
        eprintln!("loadgen: WARNING: {} requests gave up — deterministic block is broken", all.gave_up);
        std::process::exit(2);
    }
}
