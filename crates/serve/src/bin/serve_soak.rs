//! `serve_soak` — the deterministic overload/chaos soak gate behind
//! `make serve-soak` (wired into `make verify`).
//!
//! Four runs against fresh in-process servers, each overload-inducing
//! (clients > admission limit, tight deadlines) so the shed paths actually
//! fire, asserting the overload-resilience contract:
//!
//! 1. **clean** — retries drive every logical request to a final `2xx`;
//!    zero give-ups; zero caught panics; zero leaked connection permits.
//! 2. **clean again** — the deterministic block (final outcomes, response
//!    checksum, cache counts) is byte-identical to run 1.
//! 3. **conn-chaos rate 0** — an installed-but-zero-rate connection fault
//!    plan changes nothing: byte-identical to run 1.
//! 4. **conn-chaos rate 0.12** (stall + partial-write + abrupt-close) —
//!    faults fire, clients retry through them, and the server still ends
//!    with every logical request `2xx`, no panics, no leaks. (Cache counts
//!    are *not* compared here: a retried request that was already processed
//!    once hits the cache, so chaos legitimately shifts hit/miss tallies.)
//!
//! Exit status 0 only if every assertion holds; any violation prints the
//! offending run and exits 1.

use dim_serve::load::{run, LoadConfig, LoadReport};
use dim_serve::{cache, AppConfig, ServerConfig};
use std::time::Duration;

struct SoakOutcome {
    report: LoadReport,
    deterministic: String,
    panics_delta: u64,
    open_connections: usize,
}

fn soak_config() -> LoadConfig {
    LoadConfig {
        clients: 12,
        requests_per_client: 300,
        seed: 11,
        warmup: 8,
        backoff_base_ms: 1,
        backoff_cap_ms: 16,
        retry_after_cap_ms: 10,
        max_attempts: 500,
    }
}

fn panics_caught() -> u64 {
    dim_obs::snapshot().counter("srv.panics_caught").unwrap_or(0)
}

fn one_run(label: &str) -> SoakOutcome {
    let server = dim_serve::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 4,
        max_connections: 6,
        default_deadline: Duration::from_millis(100),
        idle_timeout_ticks: 2400,
        app: AppConfig {
            cache_per_shard: 1024,
            ..AppConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("serve_soak: bind failed: {e}");
        std::process::exit(1);
    });
    let addr = server.addr();
    let cache_before = cache::counters();
    let panics_before = panics_caught();
    let report = run(addr, &soak_config());
    let cache_after = cache::counters();
    let panics_after = panics_caught();
    let drain = server.shutdown();
    let cache_delta = (
        cache_after.0 - cache_before.0,
        cache_after.1 - cache_before.1,
        cache_after.2 - cache_before.2,
    );
    let deterministic = report.deterministic_json(cache_delta);
    eprintln!(
        "serve_soak[{label}]: {} logical, {} attempts, {} sheds, {} transport errors, \
         {} server sheds ({} deadline), {} conn faults, {} gave up, {:.2}s",
        report.logical_requests,
        report.attempts,
        report.sheds,
        report.transport_errors,
        drain.rejected,
        drain.deadline_shed,
        drain.conn_faults,
        report.gave_up,
        report.elapsed.as_secs_f64()
    );
    SoakOutcome {
        report,
        deterministic,
        panics_delta: panics_after - panics_before,
        open_connections: drain.open_connections,
    }
}

fn assert_healthy(label: &str, outcome: &SoakOutcome, failures: &mut u32) {
    let rep = &outcome.report;
    let total = rep.logical_requests;
    if rep.final_by_class != [total, 0, 0] {
        eprintln!(
            "serve_soak[{label}] FAIL: final outcomes {:?}, want [{total}, 0, 0]",
            rep.final_by_class
        );
        *failures += 1;
    }
    if rep.gave_up != 0 {
        eprintln!("serve_soak[{label}] FAIL: {} requests gave up", rep.gave_up);
        *failures += 1;
    }
    if outcome.panics_delta != 0 {
        eprintln!("serve_soak[{label}] FAIL: {} panics caught", outcome.panics_delta);
        *failures += 1;
    }
    if outcome.open_connections != 0 {
        eprintln!(
            "serve_soak[{label}] FAIL: {} leaked connection permits",
            outcome.open_connections
        );
        *failures += 1;
    }
}

fn main() {
    let mut failures = 0u32;
    dim_chaos::clear();

    let clean1 = one_run("clean-1");
    assert_healthy("clean-1", &clean1, &mut failures);

    let clean2 = one_run("clean-2");
    assert_healthy("clean-2", &clean2, &mut failures);
    if clean1.deterministic != clean2.deterministic {
        eprintln!(
            "serve_soak FAIL: deterministic blocks differ across identical runs\n--- run 1\n{}\n--- run 2\n{}",
            clean1.deterministic, clean2.deterministic
        );
        failures += 1;
    }

    // Rate 0 must be byte-identical to no plan at all.
    dim_chaos::install_conn(dim_chaos::ConnPlan::new(11, 0.0));
    let rate0 = one_run("conn-chaos-rate-0");
    assert_healthy("conn-chaos-rate-0", &rate0, &mut failures);
    dim_chaos::clear_conn();
    if rate0.deterministic != clean1.deterministic {
        eprintln!(
            "serve_soak FAIL: conn-chaos rate 0 changed the deterministic block\n--- clean\n{}\n--- rate 0\n{}",
            clean1.deterministic, rate0.deterministic
        );
        failures += 1;
    }

    // Positive rate: faults fire, clients retry through them, nothing
    // panics or leaks, and every logical request still resolves 2xx.
    dim_chaos::install_conn(dim_chaos::ConnPlan::new(11, 0.12));
    let chaos = one_run("conn-chaos-rate-0.12");
    dim_chaos::clear_conn();
    assert_healthy("conn-chaos-rate-0.12", &chaos, &mut failures);
    if chaos.report.response_checksum != clean1.report.response_checksum {
        eprintln!(
            "serve_soak FAIL: chaos changed final response bytes ({:#018x} vs {:#018x})",
            chaos.report.response_checksum, clean1.report.response_checksum
        );
        failures += 1;
    }

    if failures > 0 {
        eprintln!("serve_soak: {failures} failure(s)");
        std::process::exit(1);
    }
    eprintln!("serve_soak: OK (deterministic block stable, chaos survived, zero panics/leaks)");
}
