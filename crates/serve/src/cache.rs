//! A sharded, seed-free, deterministic LRU response cache.
//!
//! Keys are routed to a shard by an FNV-1a hash — a pure function of the
//! key bytes, so the shard a request lands on is identical on every run,
//! machine, and thread width. Each shard is an independent LRU under its
//! own mutex, so concurrent workers only contend when they touch the same
//! shard. Eviction is strict least-recently-used *within* a shard, which
//! keeps the global contents deterministic for any fixed per-shard
//! operation order (the property the cross-width cache tests pin).
//!
//! Hit/miss/eviction counts are reported through `dim-obs`
//! (`srv.cache.hits` / `srv.cache.misses` / `srv.cache.evictions`, plus the
//! `srv.cache.entries` gauge) and surface in the server's final report and
//! `GET /metrics`.

use std::collections::VecDeque;
use std::sync::Mutex;

static CACHE_HITS: dim_obs::Counter = dim_obs::Counter::new("srv.cache.hits");
static CACHE_MISSES: dim_obs::Counter = dim_obs::Counter::new("srv.cache.misses");
static CACHE_EVICTIONS: dim_obs::Counter = dim_obs::Counter::new("srv.cache.evictions");
static CACHE_ENTRIES: dim_obs::Gauge = dim_obs::Gauge::new("srv.cache.entries");

/// One shard: a queue ordered least- to most-recently-used. Capacities are
/// small (hundreds of entries), so the linear scans are cheaper than the
/// bookkeeping of an intrusive list.
#[derive(Default)]
struct Shard {
    entries: VecDeque<(String, String)>,
}

/// The sharded LRU cache.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl ShardedLru {
    /// A cache of `shards` independent LRUs, each holding at most
    /// `per_shard_capacity` entries (both clamped to at least 1).
    pub fn new(shards: usize, per_shard_capacity: usize) -> ShardedLru {
        let shards = shards.max(1);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: per_shard_capacity.max(1),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Maximum entries per shard.
    pub fn per_shard_capacity(&self) -> usize {
        self.per_shard_capacity
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).entries.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard index `key` routes to — a pure function of the key bytes.
    pub fn shard_of(&self, key: &str) -> usize {
        (fnv1a(key.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Looks `key` up, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: &str) -> Option<String> {
        let mut shard = lock(&self.shards[self.shard_of(key)]); // lint:allow(no_panic, shard_of is hash % shards.len(), always in bounds; shards is non-empty by construction)
        let pos = shard.entries.iter().position(|(k, _)| k == key);
        match pos {
            Some(i) => {
                let entry = shard.entries.remove(i)?;
                let value = entry.1.clone();
                shard.entries.push_back(entry);
                CACHE_HITS.inc();
                Some(value)
            }
            None => {
                CACHE_MISSES.inc();
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least-recently-
    /// used entry when it is at capacity. Returns the evicted key, if any.
    pub fn insert(&self, key: &str, value: String) -> Option<String> {
        let mut shard = lock(&self.shards[self.shard_of(key)]); // lint:allow(no_panic, shard_of is hash % shards.len(), always in bounds; shards is non-empty by construction)
        if let Some(i) = shard.entries.iter().position(|(k, _)| k == key) {
            shard.entries.remove(i);
        }
        shard.entries.push_back((key.to_string(), value));
        let evicted = if shard.entries.len() > self.per_shard_capacity {
            CACHE_EVICTIONS.inc();
            shard.entries.pop_front().map(|(k, _)| k)
        } else {
            None
        };
        drop(shard);
        CACHE_ENTRIES.set(self.len() as u64);
        evicted
    }

    /// Empties every shard. Used on `/admin/reload`: cached responses
    /// embed unit codes and scores from the KB they were computed against,
    /// so a KB swap invalidates them all.
    pub fn clear(&self) {
        for shard in &self.shards {
            lock(shard).entries.clear();
        }
        CACHE_ENTRIES.set(0);
    }

    /// The keys of one shard, least- to most-recently-used (test hook for
    /// the eviction-order contract).
    pub fn shard_keys(&self, shard: usize) -> Vec<String> {
        // lint:allow(no_panic, test hook; callers pass an index below shard_count, and a wrong index should fail loudly in tests)
        lock(&self.shards[shard]).entries.iter().map(|(k, _)| k.clone()).collect()
    }
}

/// Process-wide cache counter readings `(hits, misses, evictions)` — the
/// statics every [`ShardedLru`] in the process reports into (meaningful
/// when one cache exists, i.e. one server; loadgen and the drain report
/// read these).
pub fn counters() -> (u64, u64, u64) {
    (CACHE_HITS.get(), CACHE_MISSES.get(), CACHE_EVICTIONS.get())
}

/// Locks a shard, recovering from poisoning: the cache holds plain data, so
/// a panic in some other worker (e.g. an injected chaos panic while the
/// lock was held) leaves it consistent enough to keep serving.
fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    match shard.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// FNV-1a over the key bytes: stable across runs, platforms and thread
/// widths (`DefaultHasher` promises none of that).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_miss_then_hit_roundtrips() {
        let cache = ShardedLru::new(4, 8);
        assert_eq!(cache.get("k"), None);
        cache.insert("k", "v".to_string());
        assert_eq!(cache.get("k"), Some("v".to_string()));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let cache = ShardedLru::new(8, 4);
        for key in ["a", "b", "POST /link {\"mention\":\"km\"}", "米", ""] {
            let s = cache.shard_of(key);
            assert!(s < 8);
            assert_eq!(s, cache.shard_of(key), "same key must route identically");
        }
    }

    #[test]
    fn eviction_is_least_recently_used_per_shard() {
        // One shard makes the global order the shard order.
        let cache = ShardedLru::new(1, 3);
        for k in ["a", "b", "c"] {
            cache.insert(k, format!("v-{k}"));
        }
        // Touch "a" so "b" becomes the LRU entry.
        assert!(cache.get("a").is_some());
        let evicted = cache.insert("d", "v-d".to_string());
        assert_eq!(evicted, Some("b".to_string()));
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.shard_keys(0), vec!["c", "a", "d"]);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn reinserting_refreshes_instead_of_duplicating() {
        let cache = ShardedLru::new(1, 2);
        cache.insert("a", "1".to_string());
        cache.insert("b", "2".to_string());
        cache.insert("a", "3".to_string());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a"), Some("3".to_string()));
        // "b" is now LRU; a third key evicts it.
        assert_eq!(cache.insert("c", "4".to_string()), Some("b".to_string()));
    }

    #[test]
    fn hit_miss_counters_move_when_obs_enabled() {
        dim_obs::enable();
        let cache = ShardedLru::new(2, 4);
        let (hits0, misses0) = (CACHE_HITS.get(), CACHE_MISSES.get());
        assert_eq!(cache.get("absent"), None);
        cache.insert("present", "v".to_string());
        assert_eq!(cache.get("present"), Some("v".to_string()));
        // Deltas are ≥ because other tests in this process share the
        // statics; monotonicity makes the assertion race-free.
        assert!(CACHE_MISSES.get() > misses0);
        assert!(CACHE_HITS.get() > hits0);
    }

    #[test]
    fn capacity_accounting_across_shards() {
        let cache = ShardedLru::new(4, 2);
        for i in 0..64 {
            cache.insert(&format!("key-{i}"), i.to_string());
        }
        assert!(cache.len() <= 4 * 2, "len {} exceeds total capacity", cache.len());
        for s in 0..4 {
            assert!(cache.shard_keys(s).len() <= 2);
        }
    }
}
