//! The micro-batcher: coalesces concurrent requests for the same engine
//! call into one batch, so the serving layer reaches the same
//! `annotate_batch` / `par_map` fan-out paths the offline pipeline uses.
//!
//! Shape: the first worker to submit while no batch is forming becomes the
//! *leader*. It optionally lingers for followers (up to the configured
//! window, clamped by the tightest deadline among pending items), then
//! enters a **drain loop**: flush whatever is pending, run the processing
//! function once over the slice, hand each submitter its result, and repeat
//! until nothing new arrived while it was busy. The drain loop is what lets
//! a zero window still batch under load — followers that submit while the
//! leader is processing form the next batch with no added latency, so the
//! window is a throughput knob, not a latency floor.
//!
//! Because the processing functions are item-independent (`annotate_batch`
//! output per text equals `annotate`; `par_map` over link queries equals one
//! `link` each), *which* requests share a batch can never change any
//! response byte — batching only changes throughput.

use std::sync::mpsc;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static BATCH_FLUSHES: dim_obs::Counter = dim_obs::Counter::new("srv.batch.flushes");
static BATCH_ITEMS: dim_obs::Counter = dim_obs::Counter::new("srv.batch.items");
static BATCH_SIZE: dim_obs::Histogram = dim_obs::Histogram::with_unit("srv.batch.size", "items");

struct Pending<T, R> {
    items: Vec<(T, mpsc::Sender<R>)>,
    /// Tightest request deadline among pending items, if any carries one.
    /// Clamps the leader's linger so no submitter waits for batch-mates it
    /// cannot afford.
    min_deadline: Option<Instant>,
    leader_active: bool,
}

/// A micro-batcher over items `T` producing one `R` per item.
pub struct MicroBatcher<T, R> {
    state: Mutex<Pending<T, R>>,
    arrived: Condvar,
    /// Flush as soon as this many items are pending.
    max_batch: usize,
    /// How long a leader lingers for followers before the first flush.
    window: Duration,
}

impl<T: Send, R: Send> MicroBatcher<T, R> {
    /// A batcher flushing at `max_batch` items or after `window`, whichever
    /// comes first (`max_batch` clamped to at least 1).
    pub fn new(max_batch: usize, window: Duration) -> MicroBatcher<T, R> {
        MicroBatcher {
            state: Mutex::new(Pending {
                items: Vec::new(),
                min_deadline: None,
                leader_active: false,
            }),
            arrived: Condvar::new(),
            max_batch: max_batch.max(1),
            window,
        }
    }

    /// Submits one item with no deadline and blocks until its result is
    /// ready. See [`MicroBatcher::submit_deadline`].
    pub fn submit<F>(&self, item: T, process: F) -> Option<R>
    where
        F: Fn(Vec<T>) -> Vec<R>,
    {
        self.submit_deadline(item, None, process)
    }

    /// Submits one item carrying an optional absolute deadline and blocks
    /// until its result is ready. The deadline does not cancel processing —
    /// it only clamps how long a leader may linger while this item is
    /// pending. `process` must return exactly one result per input, in
    /// input order (a violation degrades to `None` for the affected
    /// submitters — it never panics a worker).
    pub fn submit_deadline<F>(&self, item: T, deadline: Option<Instant>, process: F) -> Option<R>
    where
        F: Fn(Vec<T>) -> Vec<R>,
    {
        let (tx, rx) = mpsc::channel();
        let lead = {
            let mut state = self.lock();
            state.items.push((item, tx));
            state.min_deadline = match (state.min_deadline, deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if state.leader_active {
                // A leader is already collecting; it will flush this item.
                self.arrived.notify_all();
                false
            } else {
                state.leader_active = true;
                true
            }
        };
        if lead {
            self.lead(&process);
        }
        rx.recv().ok()
    }

    /// Leader duty: linger once for followers, then drain-loop until no
    /// items are pending, and only then retire the leader role.
    fn lead<F>(&self, process: &F)
    where
        F: Fn(Vec<T>) -> Vec<R>,
    {
        let mut state = self.lock();
        if !self.window.is_zero() {
            state = self.linger(state);
        }
        loop {
            let batch = std::mem::take(&mut state.items);
            state.min_deadline = None;
            if batch.is_empty() {
                state.leader_active = false;
                return;
            }
            drop(state);
            self.flush(batch, process);
            state = self.lock();
        }
    }

    /// Waits for followers until the batch cap, the window, or the tightest
    /// pending deadline — whichever comes first.
    ///
    /// The loop is spurious-wakeup safe by construction: every pass
    /// recomputes the remaining budget from the clock and exits on a
    /// non-positive budget *before* waiting again. It deliberately ignores
    /// `WaitTimeoutResult` — trusting that flag, as the previous version
    /// did, let a wakeup that raced the deadline re-enter `wait_timeout`
    /// with a recomputed zero budget or mis-break early on a spurious
    /// wakeup reported as a timeout.
    fn linger<'a>(
        &'a self,
        mut state: MutexGuard<'a, Pending<T, R>>,
    ) -> MutexGuard<'a, Pending<T, R>> {
        let window_end = Instant::now() + self.window;
        loop {
            if state.items.len() >= self.max_batch {
                return state;
            }
            let end = match state.min_deadline {
                Some(d) => d.min(window_end),
                None => window_end,
            };
            let Some(left) = end.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
            else {
                return state;
            };
            state = match self.arrived.wait_timeout(state, left) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Runs `process` over one taken batch and distributes the results.
    fn flush<F>(&self, batch: Vec<(T, mpsc::Sender<R>)>, process: &F)
    where
        F: Fn(Vec<T>) -> Vec<R>,
    {
        BATCH_FLUSHES.inc();
        BATCH_ITEMS.add(batch.len() as u64);
        BATCH_SIZE.record(batch.len() as u64);

        let (items, senders): (Vec<T>, Vec<mpsc::Sender<R>>) = batch.into_iter().unzip();
        let results = process(items);
        // One result per sender, in order. A length mismatch (a broken
        // process fn) drops the extra senders, whose submitters observe a
        // disconnected channel and answer 500 — not a panic.
        for (result, sender) in results.into_iter().zip(senders) {
            let _ = sender.send(result); // receiver gone ⇒ submitter bailed; fine
        }
    }

    fn lock(&self) -> MutexGuard<'_, Pending<T, R>> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_submit_flushes_after_window() {
        let b = MicroBatcher::new(8, Duration::from_millis(1));
        let out = b.submit(21u64, |items| items.into_iter().map(|x| x * 2).collect());
        assert_eq!(out, Some(42));
    }

    #[test]
    fn concurrent_submits_coalesce() {
        let b = Arc::new(MicroBatcher::new(64, Duration::from_millis(40)));
        let flushes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let b = b.clone();
                let flushes = flushes.clone();
                std::thread::spawn(move || {
                    b.submit(i, move |items| {
                        flushes.fetch_add(1, Ordering::SeqCst);
                        items.into_iter().map(|x| x + 100).collect()
                    })
                })
            })
            .collect();
        let mut results: Vec<u64> =
            handles.into_iter().map(|h| h.join().expect("thread").expect("result")).collect();
        results.sort_unstable();
        assert_eq!(results, (100..108).collect::<Vec<_>>());
        // All 8 submitters raced into far fewer flushes than submissions
        // (exactly 1 when they all make the leader's window, which a loaded
        // CI box can miss — so assert coalescing, not perfection).
        assert!(flushes.load(Ordering::SeqCst) < 8, "no coalescing happened");
    }

    #[test]
    fn zero_window_still_coalesces_under_load() {
        // The drain loop — not the window — is what batches: with a zero
        // window and a slow process fn, followers that submit while the
        // leader is busy ride the next flush instead of each taking their
        // own.
        let b = Arc::new(MicroBatcher::new(64, Duration::ZERO));
        let flushes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let b = b.clone();
                let flushes = flushes.clone();
                std::thread::spawn(move || {
                    b.submit(i, move |items| {
                        flushes.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(10));
                        items.into_iter().map(|x| x + 100).collect()
                    })
                })
            })
            .collect();
        let mut results: Vec<u64> =
            handles.into_iter().map(|h| h.join().expect("thread").expect("result")).collect();
        results.sort_unstable();
        assert_eq!(results, (100..108).collect::<Vec<_>>());
        assert!(flushes.load(Ordering::SeqCst) < 8, "drain loop did not coalesce");
    }

    #[test]
    fn batch_cap_short_circuits_the_window() {
        let b = Arc::new(MicroBatcher::new(2, Duration::from_secs(30)));
        let started = Instant::now();
        let other = {
            let b = b.clone();
            std::thread::spawn(move || b.submit(1u32, |items| items))
        };
        let here = b.submit(2u32, |items| items);
        let joined = other.join().expect("thread");
        // A 30s window that flushed promptly proves the cap fired.
        assert!(started.elapsed() < Duration::from_secs(10));
        let mut got = vec![here.expect("result"), joined.expect("result")];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn expired_deadline_clamps_the_linger_window() {
        // Regression for the wait-loop restructure: an item whose deadline
        // already passed must flush immediately even under a huge window —
        // the old loop could only exit early via the batch cap or the
        // (mis)trusted timeout flag.
        let b: MicroBatcher<u8, u8> = MicroBatcher::new(64, Duration::from_secs(30));
        let started = Instant::now();
        let out = b.submit_deadline(9u8, Some(Instant::now()), |items| items);
        assert_eq!(out, Some(9));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "expired deadline failed to clamp the 30s window"
        );
    }

    #[test]
    fn tight_deadline_flushes_well_before_the_window() {
        let b: Arc<MicroBatcher<u8, u8>> = Arc::new(MicroBatcher::new(64, Duration::from_secs(30)));
        let started = Instant::now();
        let b2 = b.clone();
        let leader = std::thread::spawn(move || {
            b2.submit_deadline(1u8, Some(Instant::now() + Duration::from_millis(20)), |items| {
                items
            })
        });
        let follower = b.submit_deadline(2u8, None, |items| items);
        assert_eq!(leader.join().expect("thread"), Some(1));
        assert_eq!(follower, Some(2));
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "tight deadline failed to clamp the linger"
        );
    }

    #[test]
    fn broken_process_fn_degrades_to_none() {
        let b: MicroBatcher<u8, u8> = MicroBatcher::new(1, Duration::ZERO);
        let out = b.submit(7u8, |_| Vec::new());
        assert_eq!(out, None);
    }
}
