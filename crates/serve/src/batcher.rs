//! The micro-batcher: coalesces concurrent requests for the same engine
//! call into one batch, so the serving layer reaches the same
//! `annotate_batch` / `par_map` fan-out paths the offline pipeline uses.
//!
//! Shape: the first worker to submit while no batch is forming becomes the
//! *leader*. It waits up to the configured window (or until the batch cap
//! is reached) for followers, then takes the whole pending set, runs the
//! processing function once over the slice, and hands each submitter its
//! result through a channel. Followers just block on their channel. Because
//! the processing functions are item-independent (`annotate_batch` output
//! per text equals `annotate`; `par_map` over link queries equals one
//! `link` each), *which* requests share a batch can never change any
//! response byte — batching only changes throughput.

use std::sync::mpsc;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static BATCH_FLUSHES: dim_obs::Counter = dim_obs::Counter::new("srv.batch.flushes");
static BATCH_ITEMS: dim_obs::Counter = dim_obs::Counter::new("srv.batch.items");
static BATCH_SIZE: dim_obs::Histogram = dim_obs::Histogram::with_unit("srv.batch.size", "items");

struct Pending<T, R> {
    items: Vec<(T, mpsc::Sender<R>)>,
    leader_active: bool,
}

/// A micro-batcher over items `T` producing one `R` per item.
pub struct MicroBatcher<T, R> {
    state: Mutex<Pending<T, R>>,
    arrived: Condvar,
    /// Flush as soon as this many items are pending.
    max_batch: usize,
    /// How long a leader waits for followers before flushing.
    window: Duration,
}

impl<T: Send, R: Send> MicroBatcher<T, R> {
    /// A batcher flushing at `max_batch` items or after `window`, whichever
    /// comes first (`max_batch` clamped to at least 1).
    pub fn new(max_batch: usize, window: Duration) -> MicroBatcher<T, R> {
        MicroBatcher {
            state: Mutex::new(Pending { items: Vec::new(), leader_active: false }),
            arrived: Condvar::new(),
            max_batch: max_batch.max(1),
            window,
        }
    }

    /// Submits one item and blocks until its result is ready. `process`
    /// must return exactly one result per input, in input order (a
    /// violation degrades to `None` for the affected submitters — it never
    /// panics a worker).
    pub fn submit<F>(&self, item: T, process: F) -> Option<R>
    where
        F: Fn(Vec<T>) -> Vec<R>,
    {
        let (tx, rx) = mpsc::channel();
        let lead = {
            let mut state = self.lock();
            state.items.push((item, tx));
            if state.leader_active {
                // A leader is already collecting; it will flush this item.
                self.arrived.notify_all();
                false
            } else {
                state.leader_active = true;
                true
            }
        };
        if lead {
            self.lead(process);
        }
        rx.recv().ok()
    }

    /// Leader duty: wait out the window (or the batch cap), then flush.
    fn lead<F>(&self, process: F)
    where
        F: Fn(Vec<T>) -> Vec<R>,
    {
        let deadline = Instant::now() + self.window;
        let mut state = self.lock();
        while state.items.len() < self.max_batch {
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            let (guard, timeout) = match self.arrived.wait_timeout(state, left) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let pair = poisoned.into_inner();
                    (pair.0, pair.1)
                }
            };
            state = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let batch: Vec<(T, mpsc::Sender<R>)> = std::mem::take(&mut state.items);
        state.leader_active = false;
        drop(state);

        BATCH_FLUSHES.inc();
        BATCH_ITEMS.add(batch.len() as u64);
        BATCH_SIZE.record(batch.len() as u64);

        let (items, senders): (Vec<T>, Vec<mpsc::Sender<R>>) = batch.into_iter().unzip();
        let results = process(items);
        // One result per sender, in order. A length mismatch (a broken
        // process fn) drops the extra senders, whose submitters observe a
        // disconnected channel and answer 500 — not a panic.
        for (result, sender) in results.into_iter().zip(senders) {
            let _ = sender.send(result); // receiver gone ⇒ submitter bailed; fine
        }
    }

    fn lock(&self) -> MutexGuard<'_, Pending<T, R>> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_submit_flushes_after_window() {
        let b = MicroBatcher::new(8, Duration::from_millis(1));
        let out = b.submit(21u64, |items| items.into_iter().map(|x| x * 2).collect());
        assert_eq!(out, Some(42));
    }

    #[test]
    fn concurrent_submits_coalesce() {
        let b = Arc::new(MicroBatcher::new(64, Duration::from_millis(40)));
        let flushes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let b = b.clone();
                let flushes = flushes.clone();
                std::thread::spawn(move || {
                    b.submit(i, move |items| {
                        flushes.fetch_add(1, Ordering::SeqCst);
                        items.into_iter().map(|x| x + 100).collect()
                    })
                })
            })
            .collect();
        let mut results: Vec<u64> =
            handles.into_iter().map(|h| h.join().expect("thread").expect("result")).collect();
        results.sort_unstable();
        assert_eq!(results, (100..108).collect::<Vec<_>>());
        // All 8 submitters raced into far fewer flushes than submissions
        // (exactly 1 when they all make the leader's window, which a loaded
        // CI box can miss — so assert coalescing, not perfection).
        assert!(flushes.load(Ordering::SeqCst) < 8, "no coalescing happened");
    }

    #[test]
    fn batch_cap_short_circuits_the_window() {
        let b = Arc::new(MicroBatcher::new(2, Duration::from_secs(30)));
        let started = Instant::now();
        let other = {
            let b = b.clone();
            std::thread::spawn(move || b.submit(1u32, |items| items))
        };
        let here = b.submit(2u32, |items| items);
        let joined = other.join().expect("thread");
        // A 30s window that flushed promptly proves the cap fired.
        assert!(started.elapsed() < Duration::from_secs(10));
        let mut got = vec![here.expect("result"), joined.expect("result")];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn broken_process_fn_degrades_to_none() {
        let b: MicroBatcher<u8, u8> = MicroBatcher::new(1, Duration::ZERO);
        let out = b.submit(7u8, |_| Vec::new());
        assert_eq!(out, None);
    }
}
