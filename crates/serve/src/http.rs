//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The parser is *incremental*: [`parse`] inspects a byte buffer and either
//! returns a complete [`Request`] (plus how many bytes it consumed), asks
//! for more bytes ([`Parsed::Partial`]), or rejects the input with a typed
//! [`HttpError`] that maps onto a deterministic `4xx`/`5xx` status. It never
//! panics on any input — the workspace proptests feed it header soup,
//! multi-script UTF-8 and truncated/oversize requests — and it enforces
//! hard limits before buffering: request heads are capped at
//! [`MAX_HEAD_BYTES`] and bodies at [`MAX_BODY_BYTES`] (the same 64 KiB
//! record guard `dimkb::degrade` applies to batch inputs).
//!
//! Responses are written without a `Date` header so a fixed request script
//! yields byte-identical transcripts run to run — the property the
//! `results/quick/serve.txt` golden pins.

use std::fmt;
use std::io::{self, Write};

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Maximum request-target length.
pub const MAX_TARGET_BYTES: usize = 1024;
/// Maximum body size — the same cap `dimkb::degrade` enforces per record.
pub const MAX_BODY_BYTES: usize = dimkb::degrade::MAX_RECORD_BYTES;

/// Request methods the service understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
}

impl Method {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (path), e.g. `/link`.
    pub target: String,
    /// Header `(name, value)` pairs in wire order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (at most [`MAX_BODY_BYTES`]).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after the response.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, or a `400` error.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("body is not valid UTF-8".to_string()))
    }
}

/// Outcome of an incremental parse attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// A full request was parsed from the first `consumed` bytes.
    Complete {
        /// The request.
        request: Request,
        /// Bytes of the buffer the request occupied (head + body).
        consumed: usize,
    },
    /// The buffer holds a valid prefix; read more bytes and retry.
    Partial,
}

/// A typed request-rejection reason; [`HttpError::status`] maps each onto
/// the deterministic status code the server answers with.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpError {
    /// Malformed request line, header, or body (`400`).
    BadRequest(String),
    /// The target path exceeds [`MAX_TARGET_BYTES`] (`414`).
    TargetTooLong(usize),
    /// Declared body length exceeds [`MAX_BODY_BYTES`] (`413`).
    BodyTooLarge(usize),
    /// Request line + headers exceed [`MAX_HEAD_BYTES`] (`431`).
    HeadTooLarge,
    /// A syntactically valid method this server does not implement (`501`).
    UnsupportedMethod(String),
    /// `Transfer-Encoding` bodies are not implemented (`501`).
    UnsupportedTransferEncoding,
}

impl HttpError {
    /// The status code this rejection is answered with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::BodyTooLarge(_) => 413,
            HttpError::TargetTooLong(_) => 414,
            HttpError::HeadTooLarge => 431,
            HttpError::UnsupportedMethod(_) | HttpError::UnsupportedTransferEncoding => 501,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::TargetTooLong(n) => {
                write!(f, "target is {n} bytes (cap {MAX_TARGET_BYTES})")
            }
            HttpError::BodyTooLarge(n) => {
                write!(f, "declared body is {n} bytes (cap {MAX_BODY_BYTES})")
            }
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::UnsupportedMethod(m) => write!(f, "method {m:?} not implemented"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding bodies not implemented")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Incrementally parses one request from the front of `buf`.
///
/// Limits are enforced as early as the buffered bytes allow: an over-long
/// head or an oversize `Content-Length` declaration is rejected before the
/// server reads (or buffers) the offending bytes.
pub fn parse(buf: &[u8]) -> Result<Parsed, HttpError> {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(Parsed::Partial);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_len - 4]) // lint:allow(no_panic, head_len is a find_head_end offset: position + 4, so head_len - 4 <= buf.len())
        .map_err(|_| HttpError::BadRequest("head is not valid UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request head".to_string()))?;
    let (method, target) = parse_request_line(request_line)?;
    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("header line without colon: {line:?}")))?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::BadRequest(format!("invalid header name: {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let req = Request { method, target, headers, body: Vec::new() };
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let content_length = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("invalid content-length: {v:?}")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    if buf.len() < head_len + content_length {
        return Ok(Parsed::Partial);
    }
    let mut req = req;
    req.body = buf[head_len..head_len + content_length].to_vec(); // lint:allow(no_panic, the Partial check above guarantees buf.len() >= head_len + content_length)
    Ok(Parsed::Complete { request: req, consumed: head_len + content_length })
}

/// Byte offset one past the `\r\n\r\n` head terminator, if present within
/// the head cap (searching further would let a hostile peer grow the buffer
/// unboundedly before rejection).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let window = &buf[..buf.len().min(MAX_HEAD_BYTES)]; // lint:allow(no_panic, upper bound is min-clamped to buf.len())
    window.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn parse_request_line(line: &str) -> Result<(Method, String), HttpError> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if parts.next().is_some() {
        return Err(HttpError::BadRequest(format!("malformed request line: {line:?}")));
    }
    if method.is_empty() || target.is_empty() || version.is_empty() {
        return Err(HttpError::BadRequest(format!("malformed request line: {line:?}")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version: {version:?}")));
    }
    if target.len() > MAX_TARGET_BYTES {
        return Err(HttpError::TargetTooLong(target.len()));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!("target must be absolute: {target:?}")));
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other if other.bytes().all(is_token_byte) => {
            return Err(HttpError::UnsupportedMethod(other.to_string()));
        }
        other => {
            return Err(HttpError::BadRequest(format!("invalid method: {other:?}")));
        }
    };
    Ok((method, target.to_string()))
}

/// RFC 7230 `tchar` (the characters legal in methods and header names).
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// An HTTP response. The writer emits `Content-Type`, `Content-Length`,
/// `Connection`, an optional `Retry-After` on overload sheds, and nothing
/// else (no `Date`, no `Server`) — so responses are a pure function of the
/// request and the server's admission decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Whether the server will close the connection after this response.
    pub close: bool,
    /// Optional `Retry-After` header, in whole seconds. `None` (the default
    /// for every existing constructor) keeps the wire form byte-identical to
    /// the pre-overload-control protocol, so goldens only change when a
    /// response is explicitly a shed.
    pub retry_after: Option<u16>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            close: false,
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After: secs` header (overload sheds only).
    pub fn with_retry_after(mut self, secs: u16) -> Response {
        self.retry_after = Some(secs);
        self
    }

    /// The deterministic error-shaped response for a parse rejection.
    pub fn from_error(err: &HttpError) -> Response {
        let mut body = String::from("{\"error\":");
        crate::json::string(&mut body, &err.to_string());
        body.push('}');
        // Parse errors leave the stream in an unknown state; always close.
        Response {
            status: err.status(),
            content_type: "application/json",
            body,
            close: true,
            retry_after: None,
        }
    }

    /// Serializes the response to `w` (status line, the fixed headers plus
    /// `Retry-After` when set, blank line, body).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )?;
        if let Some(secs) = self.retry_after {
            write!(w, "Retry-After: {secs}\r\n")?;
        }
        write!(w, "\r\n{}", self.body)
    }

    /// The full wire form as a string (what transcripts and tests compare).
    pub fn render(&self) -> String {
        let mut out = Vec::new();
        // Writing to a Vec<u8> cannot fail; fall back to empty on the
        // impossible branch rather than unwrapping on the hot path.
        let _ = self.write_to(&mut out);
        String::from_utf8(out).unwrap_or_default()
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &[u8]) -> (Request, usize) {
        match parse(raw) {
            Ok(Parsed::Complete { request, consumed }) => (request, consumed),
            other => panic!("expected complete parse, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_without_body() {
        let (req, used) = complete(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert_eq!(used, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".len());
    }

    #[test]
    fn parses_post_with_body_and_reports_consumed() {
        let raw = b"POST /link HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdEXTRA";
        let (req, used) = complete(raw);
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"abcd");
        assert_eq!(used, raw.len() - 5, "trailing pipelined bytes are not consumed");
    }

    #[test]
    fn partial_until_head_and_body_complete() {
        assert_eq!(parse(b"POST /link HTTP/1.1\r\nContent-"), Ok(Parsed::Partial));
        assert_eq!(
            parse(b"POST /link HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Ok(Parsed::Partial)
        );
    }

    #[test]
    fn rejects_oversize_declared_body_before_reading_it() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = parse(raw.as_bytes()).expect_err("over cap");
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn rejects_runaway_head() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        while raw.len() < MAX_HEAD_BYTES + 10 {
            raw.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert_eq!(parse(&raw), Err(HttpError::HeadTooLarge));
    }

    #[test]
    fn rejects_malformed_lines_with_400() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
            b"POST /x HTTP/1.1\r\nBad Header Name: v\r\n\r\n",
        ] {
            let err = parse(raw).expect_err("malformed");
            assert_eq!(err.status(), 400, "{raw:?} -> {err:?}");
        }
    }

    #[test]
    fn unknown_but_wellformed_method_is_501() {
        let err = parse(b"BREW /coffee HTTP/1.1\r\n\r\n").expect_err("teapot protocol");
        assert_eq!(err, HttpError::UnsupportedMethod("BREW".to_string()));
        assert_eq!(err.status(), 501);
        let err = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .expect_err("chunked");
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn target_cap_is_414() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_TARGET_BYTES + 1));
        assert_eq!(parse(raw.as_bytes()).map_err(|e| e.status()), Err(414));
    }

    #[test]
    fn response_wire_form_is_deterministic() {
        let r = Response::json(200, "{\"ok\":true}".to_string());
        assert_eq!(
            r.render(),
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 11\r\n\
             Connection: keep-alive\r\n\r\n{\"ok\":true}"
        );
        let mut closing = r;
        closing.close = true;
        assert!(closing.render().contains("Connection: close"));
    }

    #[test]
    fn retry_after_header_is_emitted_only_when_set() {
        let shed = Response::json(503, "{\"error\":\"x\"}".to_string()).with_retry_after(1);
        let wire = shed.render();
        assert!(wire.contains("\r\nRetry-After: 1\r\n\r\n"), "{wire}");
        let plain = Response::json(200, "{}".to_string());
        assert!(!plain.render().contains("Retry-After"));
    }

    #[test]
    fn error_response_carries_status_and_closes() {
        let r = Response::from_error(&HttpError::BodyTooLarge(1 << 20));
        assert_eq!(r.status, 413);
        assert!(r.close);
        assert!(r.body.contains("1048576"));
    }
}
