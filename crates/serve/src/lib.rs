//! **dim-serve** — a from-scratch, zero-external-dependency HTTP/1.1
//! serving layer over DimKS, the dimension knowledge system of
//! *"Enhancing Quantitative Reasoning Skills of Large Language Models
//! through Dimension Perception"*.
//!
//! The offline pipeline answers "is the method right"; this crate answers
//! "can the method be *served*" — unit linking, sentence annotation,
//! dimensional conversion, and the §VI-D calculator behind a socket, with
//! the same determinism contract the rest of the workspace enforces:
//!
//! - **No external dependencies.** The HTTP/1.1 parser and response writer
//!   are hand-rolled over `std::net` ([`http`]).
//! - **Fixed resources.** A bounded MPMC queue ([`queue`]) feeds a fixed
//!   worker pool; a full queue is a deterministic `503`, never an unbounded
//!   backlog ([`server`]).
//! - **Batching without byte drift.** Concurrent `/link` and `/annotate`
//!   requests coalesce into the same `par_map`/`annotate_batch` calls the
//!   offline pipeline uses ([`batcher`]); item-independence makes the
//!   coalescing invisible in response bytes.
//! - **Deterministic caching.** A sharded LRU keyed on route + body, with
//!   FNV-1a shard routing that is a pure function of the key ([`cache`]).
//! - **Chaos on the request path.** Every `POST` consults the workspace
//!   fault-injection machinery; a faulted request degrades to a structured
//!   `503` and a quarantine entry — the process never dies ([`app`]).
//! - **Overload resilience.** Per-request deadline budgets ([`deadline`]),
//!   a bounded connection gate plus queue-depth watermarks ([`admission`]),
//!   and connection-level chaos faults prove the server sheds load as
//!   deterministic `503 + Retry-After` instead of hanging or panicking; the
//!   seeded retry client in [`load`] soaks it past 100k requests.
//! - **Graceful drain.** Shutdown stops accepting, drains queued and
//!   in-flight requests, and emits a final obs report
//!   ([`server::ServerHandle::shutdown`]).

#![warn(missing_docs)]

pub mod admission;
pub mod app;
pub mod batcher;
pub mod cache;
pub mod deadline;
pub mod http;
pub mod json;
pub mod load;
pub mod queue;
pub mod server;
pub mod smoke;

pub use admission::{ConnGate, ConnPermit, Watermarks};
pub use app::{App, AppConfig};
pub use batcher::MicroBatcher;
pub use cache::ShardedLru;
pub use deadline::Deadline;
pub use http::{Method, Parsed, Request, Response};
pub use queue::{Bounded, PushError};
pub use server::{client, start, DrainReport, ServerConfig, ServerHandle};
