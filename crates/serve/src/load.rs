//! The deterministic closed-loop load library behind the `loadgen` and
//! `serve_soak` binaries.
//!
//! Each client is seeded from `dim_par::seed_for(seed, client)` and draws
//! uniformly from its own **client-disjoint** payload pool (a fixed mix of
//! ~50% `/link`, 25% `/annotate`, 15% `/convert`, 7.5% `/solve`, 2.5%
//! `/healthz`), so run N and run N+1 issue the exact same logical requests.
//!
//! Clients are *retrying*: a `503` carrying `Retry-After` (an admission or
//! deadline shed) and any transport error (abrupt close, partial write) is
//! retried with capped exponential backoff and seeded jitter until the
//! request lands. Backoff jitter draws from a **separate** RNG stream than
//! payload selection — retry counts are timing-dependent, and sharing a
//! stream would let them perturb the deterministic request sequence.
//!
//! The report therefore splits three ways:
//! - **deterministic** — logical request count, final-outcome status
//!   classes, an order-independent response checksum: byte-identical
//!   run-to-run for a fixed config, because sheds never reach the app and
//!   every shed is retried to completion.
//! - **load** — attempts, retries, sheds, transport errors: real, recorded,
//!   and machine-varying (how often the server shed depends on timing).
//! - **timing** — latency percentiles over *steady-state keep-alive*
//!   samples only: a seeded warmup per client and every first request on a
//!   fresh connection are excluded (workers pin connections, so a queued
//!   connection's first request absorbs the whole queue wait — a setup
//!   artifact, not service latency) and the excluded counts are reported.

use crate::server::client::Conn;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Salt separating the backoff-jitter RNG stream from payload selection.
const JITTER_STREAM_SALT: u64 = 0x4A17_7E12_BAC0_FF5E;

/// Load-run configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Logical requests per client (retries not counted).
    pub requests_per_client: usize,
    /// Master seed; client `c` derives `dim_par::seed_for(seed, c)`.
    pub seed: u64,
    /// Per-client logical requests excluded from the timing block.
    pub warmup: usize,
    /// Exponential backoff base (first retry sleeps about this long).
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Ceiling applied to server `Retry-After` hints (which are whole
    /// seconds — honoring 1s literally would make soaks crawl).
    pub retry_after_cap_ms: u64,
    /// Attempts per logical request before giving up. Giving up breaks the
    /// deterministic block, so the default is high enough to be "never"
    /// for a live server.
    pub max_attempts: u32,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 4,
            requests_per_client: 200,
            seed: 7,
            warmup: 8,
            backoff_base_ms: 1,
            backoff_cap_ms: 64,
            retry_after_cap_ms: 25,
            max_attempts: 500,
        }
    }
}

/// One request in a client's pool.
pub struct Payload {
    /// HTTP method.
    pub method: &'static str,
    /// Request target.
    pub target: &'static str,
    /// Request body.
    pub body: String,
}

/// Builds client `c`'s disjoint payload pool: 20 link + 10 annotate +
/// 6 convert + 3 solve + 1 healthz = 40 entries, so a uniform draw gives
/// the fixed mix. Client-disjointness comes from embedding `c` in every
/// body, which keeps cache hits strictly within one client.
pub fn build_pool(c: usize, rng: &mut rand::rngs::StdRng) -> Vec<Payload> {
    const MENTIONS: &[&str] = &["km", "cm", "mm", "kg", "mg", "ms", "mph", "米", "千米", "小时"];
    const CONVERSIONS: &[(&str, &str)] =
        &[("km", "m"), ("m", "cm"), ("cm", "mm"), ("kg", "g"), ("g", "mg"), ("h", "min")];
    let mut pool = Vec::with_capacity(40);
    for _ in 0..20 {
        let mention = MENTIONS[rng.gen_range(0..MENTIONS.len())]; // lint:allow(no_panic, gen_range(0..len) is in bounds for the non-empty const array)
        pool.push(Payload {
            method: "POST",
            target: "/link",
            body: format!(
                "{{\"mention\":{:?},\"context\":\"client {c} measured the distance\"}}",
                mention
            ),
        });
    }
    for _ in 0..10 {
        let v = rng.gen_range(1..500) as f64 / 10.0;
        let w = rng.gen_range(1..90);
        pool.push(Payload {
            method: "POST",
            target: "/annotate",
            body: format!(
                "{{\"text\":\"Runner {c} covered {v} kilometers carrying {w} kg of gear.\"}}"
            ),
        });
    }
    for _ in 0..6 {
        let (from, to) = CONVERSIONS[rng.gen_range(0..CONVERSIONS.len())]; // lint:allow(no_panic, gen_range(0..len) is in bounds for the non-empty const array)
        let v = rng.gen_range(1..1000) as f64 / 4.0 + c as f64 * 1000.0;
        pool.push(Payload {
            method: "POST",
            target: "/convert",
            body: format!("{{\"value\":{v},\"from\":{from:?},\"to\":{to:?}}}"),
        });
    }
    for _ in 0..3 {
        let (a, b, d) = (rng.gen_range(1..50), rng.gen_range(1..50), rng.gen_range(1..9));
        pool.push(Payload {
            method: "POST",
            target: "/solve",
            body: format!("{{\"equation\":\"x=({a}+{b})*{d}\"}}"),
        });
    }
    pool.push(Payload { method: "GET", target: "/healthz", body: String::new() });
    pool
}

/// FNV-1a over bytes (the checksum primitive; XOR-folded across responses
/// so the total is order-independent).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// What one client observed (merged into [`LoadReport`]).
#[derive(Default)]
struct ClientReport {
    final_by_class: [u64; 3], // 2xx / 4xx / 5xx final outcomes
    checksum: u64,            // XOR of final-body hashes: order-independent
    attempts: u64,
    retries: u64,
    sheds: u64,
    transport_errors: u64,
    gave_up: u64,
    latencies_ns: Vec<u64>,
    excluded_warmup: u64,
    excluded_first_conn: u64,
}

/// The merged outcome of a load run.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Logical requests issued (`clients * requests_per_client`).
    pub logical_requests: u64,
    /// Final outcomes by status class (`[2xx, 4xx, 5xx]`).
    pub final_by_class: [u64; 3],
    /// Order-independent XOR/FNV-1a checksum over final response bodies.
    pub response_checksum: u64,
    /// Wire attempts, including retries.
    pub attempts: u64,
    /// Retried attempts (sheds + transport errors that were retried).
    pub retries: u64,
    /// `503 + Retry-After` sheds observed (admission or deadline).
    pub sheds: u64,
    /// Transport-level failures (refused/abrupt-closed/truncated).
    pub transport_errors: u64,
    /// Logical requests abandoned after `max_attempts` (0 on a healthy run;
    /// nonzero breaks the deterministic block by construction).
    pub gave_up: u64,
    /// Steady-state latency samples, sorted ascending.
    pub latencies_ns: Vec<u64>,
    /// Samples excluded as per-client warmup.
    pub excluded_warmup: u64,
    /// Samples excluded as first-request-on-a-fresh-connection.
    pub excluded_first_conn: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Nearest-rank percentile over the (sorted) steady-state samples.
    pub fn percentile(&self, q: f64) -> u64 {
        percentile(&self.latencies_ns, q)
    }

    /// Renders the deterministic block — the part of the report that must
    /// be byte-identical run-to-run for a fixed config. `cache` is the
    /// caller-measured `(hits, misses, evictions)` delta for the run
    /// (cache counters are process-global, so only the caller knows the
    /// baseline). Retry/shed tallies are deliberately *not* here: how often
    /// the server shed is timing-dependent; that the final outcomes and
    /// bytes match is the invariant.
    pub fn deterministic_json(&self, cache: (u64, u64, u64)) -> String {
        let (hits, misses, evictions) = cache;
        let hit_rate =
            if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 };
        format!(
            "{{\n    \"requests\": {},\n    \"responses\": {{\"2xx\": {}, \"4xx\": {}, \"5xx\": {}}},\n    \"response_checksum\": \"{:#018x}\",\n    \"cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"evictions\": {evictions}, \"hit_rate\": {hit_rate:.4}}}\n  }}",
            self.logical_requests,
            self.final_by_class[0], // lint:allow(no_panic, constant index into [u64; 3])
            self.final_by_class[1], // lint:allow(no_panic, constant index into [u64; 3])
            self.final_by_class[2], // lint:allow(no_panic, constant index into [u64; 3])
            self.response_checksum,
        )
    }
}

/// Nearest-rank percentile over a sorted slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] // lint:allow(no_panic, rank is clamped to 1..=len and the slice is non-empty, so rank - 1 < len)
}

/// Runs the full client fleet against `addr` and merges the reports.
pub fn run(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..config.clients)
        .map(|c| {
            let config = config.clone();
            std::thread::spawn(move || run_client(addr, c, &config))
        })
        .collect();
    let mut all = LoadReport::default();
    for h in handles {
        let Ok(rep) = h.join() else {
            // A panicked client thread loses its tally; record the hole.
            all.gave_up += config.requests_per_client as u64;
            continue;
        };
        for i in 0..3 {
            all.final_by_class[i] += rep.final_by_class[i]; // lint:allow(no_panic, i < 3 and both arrays are [u64; 3])
        }
        all.response_checksum ^= rep.checksum;
        all.attempts += rep.attempts;
        all.retries += rep.retries;
        all.sheds += rep.sheds;
        all.transport_errors += rep.transport_errors;
        all.gave_up += rep.gave_up;
        all.latencies_ns.extend(rep.latencies_ns);
        all.excluded_warmup += rep.excluded_warmup;
        all.excluded_first_conn += rep.excluded_first_conn;
    }
    all.logical_requests = (config.clients * config.requests_per_client) as u64;
    all.latencies_ns.sort_unstable();
    all.elapsed = t0.elapsed();
    all
}

/// Capped exponential backoff with seeded jitter, raised to any server
/// `Retry-After` hint (itself capped — the server speaks whole seconds).
fn backoff_ms(
    attempt: u32,
    retry_after: Option<u16>,
    jitter: &mut rand::rngs::StdRng,
    config: &LoadConfig,
) -> u64 {
    let shift = attempt.saturating_sub(1).min(16);
    let exp = config.backoff_base_ms.saturating_mul(1u64 << shift).min(config.backoff_cap_ms);
    let j = jitter.gen_range(0..=config.backoff_base_ms.max(1));
    let mut ms = exp + j;
    if let Some(secs) = retry_after {
        ms = ms.max((secs as u64).saturating_mul(1000).min(config.retry_after_cap_ms));
    }
    ms
}

fn run_client(addr: SocketAddr, c: usize, config: &LoadConfig) -> ClientReport {
    let mut rng =
        rand::rngs::StdRng::seed_from_u64(dim_par::seed_for(config.seed, c as u64));
    let pool = build_pool(c, &mut rng);
    // Jitter draws come from their own stream: retry counts vary run to
    // run, and sharing `rng` would shift every later payload draw.
    let mut jitter = rand::rngs::StdRng::seed_from_u64(dim_par::seed_for(
        config.seed ^ JITTER_STREAM_SALT,
        c as u64,
    ));
    let mut rep = ClientReport::default();
    let mut conn: Option<Conn> = None;
    let mut fresh_conn = true;
    for i in 0..config.requests_per_client {
        let p = &pool[rng.gen_range(0..pool.len())]; // lint:allow(no_panic, build_pool always returns 40 entries; gen_range(0..len) is in bounds)
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            rep.attempts += 1;
            if conn.is_none() {
                match Conn::connect(addr) {
                    Ok(fresh) => {
                        conn = Some(fresh);
                        fresh_conn = true;
                    }
                    Err(_) => {
                        rep.transport_errors += 1;
                        if attempt >= config.max_attempts {
                            rep.gave_up += 1;
                            break;
                        }
                        rep.retries += 1;
                        sleep_ms(backoff_ms(attempt, None, &mut jitter, config));
                        continue;
                    }
                }
            }
            let Some(live) = conn.as_mut() else { break };
            let first = fresh_conn;
            let t0 = Instant::now();
            match live.request(p.method, p.target, &p.body) {
                Ok(resp) => {
                    fresh_conn = false;
                    if resp.close {
                        conn = None;
                    }
                    if resp.status == 503 && resp.retry_after.is_some() {
                        // An overload shed (admission or deadline): retry.
                        rep.sheds += 1;
                        if attempt >= config.max_attempts {
                            rep.gave_up += 1;
                            rep.final_by_class[2] += 1; // lint:allow(no_panic, constant index into [u64; 3])
                            rep.checksum ^= fnv1a(resp.body.as_bytes());
                            break;
                        }
                        rep.retries += 1;
                        sleep_ms(backoff_ms(attempt, resp.retry_after, &mut jitter, config));
                        continue;
                    }
                    // Final outcome: only its own (last-attempt) latency
                    // counts, and only for steady-state keep-alive samples.
                    let ns = t0.elapsed().as_nanos() as u64;
                    if i < config.warmup {
                        rep.excluded_warmup += 1;
                    } else if first {
                        rep.excluded_first_conn += 1;
                    } else {
                        rep.latencies_ns.push(ns);
                    }
                    let class = match resp.status {
                        200..=299 => 0,
                        400..=499 => 1,
                        _ => 2,
                    };
                    rep.final_by_class[class] += 1; // lint:allow(no_panic, class is 0, 1, or 2 from the match above; the array has 3 slots)
                    rep.checksum ^= fnv1a(resp.body.as_bytes());
                    break;
                }
                Err(_) => {
                    // Abrupt close, truncated response, refused reconnect —
                    // drop the connection and retry the same payload.
                    conn = None;
                    rep.transport_errors += 1;
                    if attempt >= config.max_attempts {
                        rep.gave_up += 1;
                        break;
                    }
                    rep.retries += 1;
                    sleep_ms(backoff_ms(attempt, None, &mut jitter, config));
                }
            }
        }
    }
    rep
}

fn sleep_ms(ms: u64) {
    if ms > 0 {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_deterministic_and_client_disjoint() {
        let mut a = rand::rngs::StdRng::seed_from_u64(dim_par::seed_for(7, 0));
        let mut b = rand::rngs::StdRng::seed_from_u64(dim_par::seed_for(7, 0));
        let pa = build_pool(0, &mut a);
        let pb = build_pool(0, &mut b);
        assert_eq!(pa.len(), 40);
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!((x.method, x.target, &x.body), (y.method, y.target, &y.body));
        }
        let mut c1 = rand::rngs::StdRng::seed_from_u64(dim_par::seed_for(7, 1));
        let other = build_pool(1, &mut c1);
        for (x, y) in pa.iter().zip(&other) {
            if x.method == "POST" {
                assert_ne!(x.body, y.body, "pools must be client-disjoint");
            }
        }
    }

    #[test]
    fn backoff_grows_caps_and_honors_retry_after() {
        let config = LoadConfig {
            backoff_base_ms: 2,
            backoff_cap_ms: 16,
            retry_after_cap_ms: 40,
            ..LoadConfig::default()
        };
        let mut j = rand::rngs::StdRng::seed_from_u64(1);
        let early = backoff_ms(1, None, &mut j, &config);
        assert!(early <= 2 + 2, "first retry near the base: {early}");
        let late = backoff_ms(10, None, &mut j, &config);
        assert!((16..=18).contains(&late), "capped: {late}");
        let hinted = backoff_ms(1, Some(1), &mut j, &config);
        assert_eq!(hinted, 40, "Retry-After raised to its capped value");
        let huge_shift = backoff_ms(u32::MAX, None, &mut j, &config);
        assert!(huge_shift <= 18, "shift is clamped, no overflow");
    }

    #[test]
    fn jitter_stream_is_seeded_and_separate() {
        let config = LoadConfig::default();
        let mut j1 = rand::rngs::StdRng::seed_from_u64(dim_par::seed_for(
            config.seed ^ JITTER_STREAM_SALT,
            0,
        ));
        let mut j2 = rand::rngs::StdRng::seed_from_u64(dim_par::seed_for(
            config.seed ^ JITTER_STREAM_SALT,
            0,
        ));
        let a: Vec<u64> = (0..32).map(|i| backoff_ms(i, None, &mut j1, &config)).collect();
        let b: Vec<u64> = (0..32).map(|i| backoff_ms(i, None, &mut j2, &config)).collect();
        assert_eq!(a, b, "jitter must be seeded");
        // And the payload stream is untouched by jitter draws: same pool
        // regardless of how many backoffs happened.
        let mut rng = rand::rngs::StdRng::seed_from_u64(dim_par::seed_for(config.seed, 3));
        let pool_before = build_pool(3, &mut rng);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(dim_par::seed_for(config.seed, 3));
        let pool_after = build_pool(3, &mut rng2);
        assert_eq!(pool_before.len(), pool_after.len());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 0.999), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[42], 0.999), 42);
    }

    #[test]
    fn deterministic_json_is_a_pure_function_of_the_report() {
        let rep = LoadReport {
            logical_requests: 800,
            final_by_class: [798, 2, 0],
            response_checksum: 0xDEAD_BEEF_0000_0001,
            ..LoadReport::default()
        };
        let a = rep.deterministic_json((100, 700, 0));
        let b = rep.deterministic_json((100, 700, 0));
        assert_eq!(a, b);
        assert!(a.contains("\"requests\": 800"), "{a}");
        assert!(a.contains("\"2xx\": 798"), "{a}");
        assert!(a.contains("0xdeadbeef00000001"), "{a}");
        assert!(a.contains("\"hit_rate\": 0.1250"), "{a}");
    }
}
