//! Admission control ahead of the worker queue.
//!
//! Two gates sit between `accept()` and the bounded queue:
//!
//! 1. **Connection gate** ([`ConnGate`]) — a hard cap on simultaneously open
//!    connections. The acceptor takes a [`ConnPermit`] per connection; if
//!    none is available the connection is answered with a deterministic
//!    `503` + `Retry-After` and closed before it can occupy a worker.
//!    Permits are RAII: dropping one (worker done, chaos abrupt-close,
//!    panic unwind) releases the slot, so the gate cannot leak under any
//!    exit path.
//!
//! 2. **Queue watermarks** ([`Watermarks`]) — hysteresis over queue depth.
//!    At or above the high watermark the acceptor starts shedding new
//!    connections *early*, before the queue is actually full; it keeps
//!    shedding until depth falls to the low watermark. Without hysteresis a
//!    queue oscillating around capacity alternates accept/reject per
//!    connection, which converts overload into client-visible flapping.
//!    Only the acceptor thread consults the watermarks, so the state is a
//!    plain `bool`, not an atomic.
//!
//! Both sheds are counted (`srv.admission.*`) and both carry `Retry-After`,
//! which the loadgen's seeded backoff client honors.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static OPEN_CONNS: dim_obs::Gauge = dim_obs::Gauge::new("srv.conn.open");

/// Bounded count of simultaneously open connections.
pub struct ConnGate {
    open: AtomicUsize,
    limit: usize,
}

impl ConnGate {
    /// A gate admitting at most `limit` concurrent connections (clamped to
    /// at least 1 — a zero-limit server could never answer anything, not
    /// even its own shed responses).
    pub fn new(limit: usize) -> Arc<ConnGate> {
        Arc::new(ConnGate { open: AtomicUsize::new(0), limit: limit.max(1) })
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Connections currently admitted.
    pub fn open(&self) -> usize {
        self.open.load(Ordering::Acquire)
    }

    /// Tries to admit one connection. `None` means the gate is at its limit
    /// and the caller must shed.
    pub fn try_admit(self: &Arc<ConnGate>) -> Option<ConnPermit> {
        let mut current = self.open.load(Ordering::Relaxed); // lint:allow(relaxed_ordering, an optimistic first read; the CAS below is the synchronizing operation)
        loop {
            if current >= self.limit {
                return None;
            }
            match self.open.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed, // lint:allow(relaxed_ordering, the failure load only feeds the retry; no data is published on failure)
            ) {
                Ok(_) => {
                    OPEN_CONNS.set((current + 1) as u64);
                    return Some(ConnPermit { gate: Arc::clone(self) });
                }
                Err(seen) => current = seen,
            }
        }
    }
}

/// RAII admission slot; dropping it releases the connection's slot in the
/// gate regardless of how the connection ended.
pub struct ConnPermit {
    gate: Arc<ConnGate>,
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        let before = self.gate.open.fetch_sub(1, Ordering::AcqRel);
        OPEN_CONNS.set(before.saturating_sub(1) as u64);
    }
}

/// Queue-depth hysteresis: shed at `high`, recover at `low`.
#[derive(Debug)]
pub struct Watermarks {
    high: usize,
    low: usize,
    shedding: bool,
}

impl Watermarks {
    /// Watermarks with `low` clamped below `high` (equal marks would make
    /// the hysteresis band empty and reintroduce flapping).
    pub fn new(high: usize, low: usize) -> Watermarks {
        let high = high.max(1);
        Watermarks { high, low: low.min(high - 1), shedding: false }
    }

    /// The conventional defaults for a queue of `capacity`: start shedding
    /// when the queue is actually full, stop once it has drained halfway.
    /// (High == capacity keeps the observable accept/reject behavior of the
    /// pre-watermark server, which rejected only on `PushError::Full`.)
    pub fn for_capacity(capacity: usize) -> Watermarks {
        Watermarks::new(capacity, capacity / 2)
    }

    /// Updates the hysteresis state with the current queue depth and says
    /// whether a new connection should be shed.
    pub fn should_shed(&mut self, depth: usize) -> bool {
        if self.shedding {
            if depth <= self.low {
                self.shedding = false;
            }
        } else if depth >= self.high {
            self.shedding = true;
        }
        self.shedding
    }

    /// Whether the last update left the acceptor in shedding mode.
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_limit_and_permits_release() {
        let gate = ConnGate::new(2);
        let a = gate.try_admit().expect("slot 1");
        let _b = gate.try_admit().expect("slot 2");
        assert!(gate.try_admit().is_none(), "limit reached");
        assert_eq!(gate.open(), 2);
        drop(a);
        assert_eq!(gate.open(), 1);
        let _c = gate.try_admit().expect("slot freed by drop");
    }

    #[test]
    fn gate_zero_limit_clamps_to_one() {
        let gate = ConnGate::new(0);
        assert_eq!(gate.limit(), 1);
        let _p = gate.try_admit().expect("one slot");
        assert!(gate.try_admit().is_none());
    }

    #[test]
    fn gate_is_race_free_under_contention() {
        let gate = ConnGate::new(8);
        let admitted = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        if let Some(p) = gate.try_admit() {
                            admitted.fetch_add(1, Ordering::Relaxed);
                            assert!(gate.open() <= 8, "over-admitted");
                            drop(p);
                        }
                    }
                });
            }
        });
        assert_eq!(gate.open(), 0, "all permits returned");
        assert!(admitted.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn watermarks_hysteresis_sheds_high_recovers_low() {
        let mut wm = Watermarks::new(8, 4);
        assert!(!wm.should_shed(7));
        assert!(wm.should_shed(8), "hit high");
        assert!(wm.should_shed(6), "still shedding above low");
        assert!(wm.should_shed(5));
        assert!(!wm.should_shed(4), "recovered at low");
        assert!(!wm.should_shed(7), "not shedding again until high");
        assert!(wm.should_shed(9));
    }

    #[test]
    fn watermarks_degenerate_configs_are_clamped() {
        let mut wm = Watermarks::new(1, 5);
        assert!(wm.should_shed(1));
        assert!(!wm.should_shed(0), "low clamped below high");
        let mut eq = Watermarks::new(4, 4);
        assert!(eq.should_shed(4));
        assert!(eq.should_shed(4));
        assert!(!eq.should_shed(3), "low forced to high-1");
    }
}
