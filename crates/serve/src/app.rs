//! The service application: routing, request handlers, the response cache,
//! micro-batching, and the chaos hook on the request path.
//!
//! Endpoints (all bodies JSON):
//!
//! | route            | request                                   | response                      |
//! |------------------|-------------------------------------------|-------------------------------|
//! | `POST /link`     | `{"mention", "context"?}`                 | ranked candidate units        |
//! | `POST /annotate` | `{"text"}`                                | linked quantity mentions      |
//! | `POST /convert`  | `{"value", "from", "to"}`                 | converted value (dimension law)|
//! | `POST /solve`    | `{"equation"}`                            | calculator answer (§VI-D)     |
//! | `POST /verify`   | `{"equation", "quantities", "answer_unit"?}` | typed dimensional verdict  |
//! | `GET /healthz`   | —                                         | liveness                      |
//! | `GET /metrics`   | —                                         | `dim-obs` snapshot JSON       |
//!
//! Every `POST` consults [`dimkb::degrade::inject`] once under the
//! [`SITE_REQUEST`] site before doing work: with no fault plan (or rate 0)
//! that is one acquire atomic load and responses are byte-identical to a
//! chaos-free build; with an active plan a faulted request is answered with
//! a structured degraded `503` (and quarantined) instead of crashing a
//! worker — injected panics are caught by the worker's per-request
//! isolation and land in the same degraded path.

use crate::cache::ShardedLru;
use crate::deadline::Deadline;
use crate::http::{Method, Request, Response};
use crate::{batcher::MicroBatcher, json};
use dim_core::DimKs;
use dimkb::degrade::{QuarantineEntry, RecordError};
use dimlink::{LinkResult, QuantityMention};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

static REQUESTS: dim_obs::Counter = dim_obs::Counter::new("srv.requests");
static REQUEST_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("srv.request");
static RESP_2XX: dim_obs::Counter = dim_obs::Counter::new("srv.responses.2xx");
static RESP_4XX: dim_obs::Counter = dim_obs::Counter::new("srv.responses.4xx");
static RESP_5XX: dim_obs::Counter = dim_obs::Counter::new("srv.responses.5xx");
static DEGRADED: dim_obs::Counter = dim_obs::Counter::new("srv.degraded");
static QUARANTINED: dim_obs::Counter = dim_obs::Counter::new("srv.quarantined");
static RELOADS: dim_obs::Counter = dim_obs::Counter::new("srv.reloads");

/// Chaos/quarantine site for the request path (every `POST` consults it).
pub const SITE_REQUEST: &str = "srv.request";

/// Upper bound on retained quarantine entries; beyond it only the counter
/// moves (a chaos soak must not grow memory without bound).
const MAX_QUARANTINE_ENTRIES: usize = 1024;

/// Application configuration.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Cache shards.
    pub cache_shards: usize,
    /// LRU entries per shard.
    pub cache_per_shard: usize,
    /// Micro-batch flush size.
    pub batch_max: usize,
    /// Micro-batch collection window.
    pub batch_window: Duration,
    /// Fan-out width for batched engine calls.
    pub parallelism: dim_par::Parallelism,
    /// Load the KB from this `dimkb::snap` snapshot file instead of
    /// building it; `/admin/reload` without an explicit path re-reads it.
    pub snapshot_path: Option<String>,
}

impl Default for AppConfig {
    fn default() -> AppConfig {
        AppConfig {
            cache_shards: 8,
            cache_per_shard: 128,
            batch_max: 8,
            // Zero: the batcher's drain loop coalesces under load without a
            // linger, so the window is purely opt-in extra coalescing — a
            // positive default put a ~500µs floor under every cache miss.
            batch_window: Duration::ZERO,
            parallelism: dim_par::Parallelism::SEQUENTIAL,
            snapshot_path: None,
        }
    }
}

/// The assembled application: DimKS plus serving infrastructure.
pub struct App {
    ks: Mutex<Arc<DimKs>>,
    snapshot_path: Option<String>,
    cache: ShardedLru,
    link_batcher: MicroBatcher<(String, String), Vec<LinkResult>>,
    annotate_batcher: MicroBatcher<String, Vec<QuantityMention>>,
    parallelism: dim_par::Parallelism,
    seq: AtomicU64,
    handled: AtomicU64,
    quarantine: Mutex<Vec<QuarantineEntry>>,
}

impl App {
    /// Builds the app over the standard (lexical) DimKS, or over a
    /// snapshot-loaded KB when `config.snapshot_path` is set (falling back
    /// to the built KB, loudly, if the snapshot cannot be loaded).
    pub fn new(config: AppConfig) -> App {
        let ks = match config.snapshot_path.as_deref().map(Self::load_snapshot_ks) {
            Some(Ok(ks)) => ks,
            Some(Err(e)) => {
                eprintln!("dim-serve: snapshot load failed ({e}); building the KB instead");
                DimKs::standard()
            }
            None => DimKs::standard(),
        };
        App {
            ks: Mutex::new(Arc::new(ks)),
            snapshot_path: config.snapshot_path.clone(),
            cache: ShardedLru::new(config.cache_shards, config.cache_per_shard),
            link_batcher: MicroBatcher::new(config.batch_max, config.batch_window),
            annotate_batcher: MicroBatcher::new(config.batch_max, config.batch_window),
            parallelism: config.parallelism,
            seq: AtomicU64::new(0),
            handled: AtomicU64::new(0),
            quarantine: Mutex::new(Vec::new()),
        }
    }

    /// The response cache (test/report hook).
    pub fn cache(&self) -> &ShardedLru {
        &self.cache
    }

    /// The current knowledge system. Requests clone the `Arc` once, so an
    /// `/admin/reload` mid-flight never changes the KB under a handler.
    pub fn ks(&self) -> Arc<DimKs> {
        match self.ks.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn load_snapshot_ks(path: &str) -> Result<DimKs, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let kb = dimkb::SnapKb::load(bytes)
            .map_err(|e| format!("{path}: {e}"))?
            .into_kb()
            .map_err(|e| format!("{path}: {e}"))?;
        Ok(DimKs::from_kb(Arc::new(kb)))
    }

    /// `POST /admin/reload` — hot-swaps the knowledge system. With a
    /// `{"snapshot": path}` body the KB is decoded from that snapshot
    /// file; with an empty body the startup source is re-read (the
    /// configured snapshot, or a fresh standard build). On success the
    /// response cache is emptied — cached bodies embed unit codes and
    /// scores from the KB they were computed against.
    fn reload(&self, req: &Request) -> Response {
        let body = match req.body_utf8() {
            Ok(b) => b,
            Err(e) => return error_response(400, &e.to_string()),
        };
        let requested: Option<String> = if body.trim().is_empty() {
            None
        } else {
            match json::parse(body) {
                Ok(v) => match json::opt_str_field(&v, "snapshot") {
                    Ok(path) => path.map(str::to_string),
                    Err(e) => return error_response(400, &e),
                },
                Err(e) => return error_response(400, &format!("invalid JSON body: {e}")),
            }
        };
        let path = requested.or_else(|| self.snapshot_path.clone());
        let (ks, source) = match path.as_deref() {
            Some(p) => match Self::load_snapshot_ks(p) {
                Ok(ks) => (ks, "snapshot"),
                Err(e) => return error_response(422, &e),
            },
            None => (DimKs::standard(), "built"),
        };
        let units = ks.kb().units().len();
        let kinds = ks.kb().kinds().len();
        {
            let mut slot = match self.ks.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            *slot = Arc::new(ks);
        }
        self.cache.clear();
        RELOADS.inc();
        let mut out = String::from("{\"reloaded\":true,\"source\":");
        json::string(&mut out, source);
        out.push_str(&format!(",\"units\":{units},\"kinds\":{kinds}"));
        out.push('}');
        Response::json(200, out)
    }

    /// Requests handled so far (monotonic, includes degraded ones).
    pub fn requests_handled(&self) -> u64 {
        self.handled.load(Ordering::Relaxed) // lint:allow(relaxed_ordering, monotonic stat read; no data guarded by it)
    }

    /// Snapshot of retained quarantine entries.
    pub fn quarantine_entries(&self) -> Vec<QuarantineEntry> {
        self.lock_quarantine().clone()
    }

    /// Routes and executes one request. Infallible by construction: every
    /// failure mode is a structured response. (Panics are possible only
    /// through the engine or an injected fault, and the server worker wraps
    /// this call in per-request isolation — see [`App::degraded_response`].)
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_with_deadline(req, Deadline::unbounded())
    }

    /// [`App::handle`] with the request's deadline budget. The deadline is
    /// not re-checked here (the server sheds expired requests before
    /// dispatch); it propagates into the micro-batchers, clamping how long
    /// this request may linger waiting for batch-mates.
    pub fn handle_with_deadline(&self, req: &Request, deadline: Deadline) -> Response {
        let _span = REQUEST_SPAN.span();
        REQUESTS.inc();
        self.handled.fetch_add(1, Ordering::Relaxed); // lint:allow(relaxed_ordering, pure counter; atomicity alone gives a lossless total)
        let response = self.route(req, deadline);
        match response.status {
            200..=299 => RESP_2XX.inc(),
            400..=499 => RESP_4XX.inc(),
            _ => RESP_5XX.inc(),
        }
        response
    }

    /// The sequence number the next request will be stamped with — the
    /// index the chaos decision function sees.
    pub fn next_sequence(&self) -> u64 {
        self.seq.load(Ordering::Relaxed) // lint:allow(relaxed_ordering, advisory read of the stamp counter; no data guarded by it)
    }

    fn route(&self, req: &Request, deadline: Deadline) -> Response {
        match (req.method, req.target.as_str()) {
            (Method::Get, "/healthz") => Response::json(200, "{\"status\":\"ok\"}".to_string()),
            (Method::Get, "/metrics") => {
                let mut body = dim_obs::snapshot().to_json();
                // The obs writer pretty-prints with a trailing newline;
                // serve bodies are exact-length, so keep it as-is.
                if body.ends_with('\n') {
                    body.pop();
                }
                Response::json(200, body)
            }
            (Method::Post, "/admin/reload") => self.reload(req),
            (Method::Post, "/link" | "/annotate" | "/convert" | "/solve") => {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed); // lint:allow(relaxed_ordering, uniqueness comes from fetch_add atomicity; no ordering needed)
                // The chaos hook: rate 0 ⇒ one acquire load, no effect.
                if let Err(e) = dimkb::degrade::inject(SITE_REQUEST, seq as usize) {
                    return self.quarantined_response(seq, e);
                }
                self.dispatch_post(req, deadline)
            }
            // Same per-request chaos wiring as the other POST routes, in
            // its own arm so the established chaos transcripts (which
            // never call `/verify`) stay byte-identical.
            (Method::Post, "/verify") => {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed); // lint:allow(relaxed_ordering, uniqueness comes from fetch_add atomicity; no ordering needed)
                if let Err(e) = dimkb::degrade::inject(SITE_REQUEST, seq as usize) {
                    return self.quarantined_response(seq, e);
                }
                self.dispatch_post(req, deadline)
            }
            (Method::Post, _) => error_response(404, "no such endpoint"),
            (Method::Get, _) => error_response(404, "no such endpoint"),
        }
    }

    fn dispatch_post(&self, req: &Request, deadline: Deadline) -> Response {
        let body = match req.body_utf8() {
            Ok(b) => b,
            Err(e) => return error_response(400, &e.to_string()),
        };
        let key = cache_key(&req.target, body);
        if let Some(hit) = self.cache.get(&key) {
            return Response::json(200, hit);
        }
        let parsed = match json::parse(body) {
            Ok(v) => v,
            Err(e) => return error_response(400, &format!("invalid JSON body: {e}")),
        };
        let result = match req.target.as_str() {
            "/link" => self.link(&parsed, deadline),
            "/annotate" => self.annotate(&parsed, deadline),
            "/convert" => self.convert(&parsed),
            "/solve" => self.solve(&parsed),
            "/verify" => self.verify(&parsed),
            _ => Err((404, "no such endpoint".to_string())),
        };
        match result {
            Ok(body) => {
                self.cache.insert(&key, body.clone());
                Response::json(200, body)
            }
            Err((status, msg)) => error_response(status, &msg),
        }
    }

    /// `POST /link` — unit linking (Definition 1), micro-batched so
    /// concurrent queries share one `par_map` fan-out.
    fn link(&self, v: &serde::Value, deadline: Deadline) -> Result<String, (u16, String)> {
        let mention = json::str_field(v, "mention").map_err(|e| (400, e))?.to_string();
        let context =
            json::opt_str_field(v, "context").map_err(|e| (400, e))?.unwrap_or("").to_string();
        let par = self.parallelism;
        let ks = self.ks();
        let links = self
            .link_batcher
            .submit_deadline((mention.clone(), context), deadline.instant(), |batch| {
                dim_par::par_map(par, &batch, |(m, c)| ks.link(m, c))
            })
            .ok_or_else(|| (500, "batch processing failed".to_string()))?;
        let mut out = String::from("{\"mention\":");
        json::string(&mut out, &mention);
        out.push_str(",\"links\":[");
        for (i, l) in links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_link(&ks, &mut out, l);
        }
        out.push_str("]}");
        Ok(out)
    }

    /// `POST /annotate` — sentence annotation via the DimKS annotator,
    /// micro-batched into `annotate_batch`.
    fn annotate(&self, v: &serde::Value, deadline: Deadline) -> Result<String, (u16, String)> {
        let text = json::str_field(v, "text").map_err(|e| (400, e))?.to_string();
        let par = self.parallelism;
        let ks = self.ks();
        let mentions = self
            .annotate_batcher
            .submit_deadline(text.clone(), deadline.instant(), |batch| {
                ks.annotator().annotate_batch(&batch, par)
            })
            .ok_or_else(|| (500, "batch processing failed".to_string()))?;
        let mut out = String::from("{\"mentions\":[");
        for (i, m) in mentions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"value\":");
            json::number(&mut out, m.value);
            out.push_str(",\"unit\":");
            json::string(&mut out, &ks.kb().unit(m.best_unit()).code);
            out.push_str(",\"surface\":");
            json::string(&mut out, &m.unit_surface);
            out.push_str(&format!(",\"start\":{},\"end\":{}", m.start, m.end));
            out.push_str(&format!(",\"candidates\":{}", m.links.len()));
            out.push('}');
        }
        out.push_str("]}");
        Ok(out)
    }

    /// `POST /convert` — dimensional conversion through the KB, applying
    /// the dimension law (incomparable units are a structured `422`).
    fn convert(&self, v: &serde::Value) -> Result<String, (u16, String)> {
        let value = json::num_field(v, "value").map_err(|e| (400, e))?;
        let from = json::str_field(v, "from").map_err(|e| (400, e))?;
        let to = json::str_field(v, "to").map_err(|e| (400, e))?;
        let ks = self.ks();
        let from_id = resolve_unit(&ks, from).ok_or_else(|| {
            (422, format!("unknown unit {from:?}"))
        })?;
        let to_id =
            resolve_unit(&ks, to).ok_or_else(|| (422, format!("unknown unit {to:?}")))?;
        let kb = ks.kb();
        match kb.convert(value, from_id, to_id) {
            Ok(converted) => {
                let mut out = String::from("{\"value\":");
                json::number(&mut out, converted);
                out.push_str(",\"from\":");
                json::string(&mut out, &kb.unit(from_id).code);
                out.push_str(",\"to\":");
                json::string(&mut out, &kb.unit(to_id).code);
                out.push('}');
                Ok(out)
            }
            Err(e) => Err((422, e.to_string())),
        }
    }

    /// `POST /solve` — the §VI-D calculator over an MWP equation string.
    fn solve(&self, v: &serde::Value) -> Result<String, (u16, String)> {
        let equation = json::str_field(v, "equation").map_err(|e| (400, e))?;
        match dim_mwp::calculate(equation) {
            Ok(answer) => {
                let mut out = String::from("{\"answer\":");
                json::number(&mut out, answer);
                out.push('}');
                Ok(out)
            }
            Err(e) => Err((422, e.to_string())),
        }
    }

    /// `POST /verify` — dimensional verification of a solution equation
    /// against its quantities' units (the `dim-verify` two-law checker).
    /// Equation literals are bound to quantities by written value; unit
    /// surfaces resolve through the naming dictionary with the linker as
    /// fallback. The verdict is typed, never a bare bool: the dimension
    /// law reports the offending node and expected-vs-found vectors, the
    /// conversion law the node whose admissible scales are disjoint.
    fn verify(&self, v: &serde::Value) -> Result<String, (u16, String)> {
        let equation = json::str_field(v, "equation").map_err(|e| (400, e))?;
        let items = match json::field(v, "quantities") {
            Some(serde::Value::Arr(items)) => items,
            Some(_) => return Err((400, "field \"quantities\" must be an array".to_string())),
            None => return Err((400, "missing field \"quantities\"".to_string())),
        };
        let ks = self.ks();
        let kb = ks.kb();
        let mut quantities = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let value =
                json::num_field(item, "value").map_err(|e| (400, format!("quantity {i}: {e}")))?;
            let unit = json::opt_str_field(item, "unit")
                .map_err(|e| (400, format!("quantity {i}: {e}")))?
                .unwrap_or("");
            let (unit_code, is_percent) = if unit.is_empty() {
                (None, false)
            } else if unit == "%" {
                (None, true)
            } else {
                let id = resolve_unit(&ks, unit)
                    .ok_or_else(|| (422, format!("unresolvable unit {unit:?} in quantity {i}")))?;
                (Some(kb.unit(id).code.clone()), false)
            };
            quantities.push(dim_mwp::ProblemQuantity {
                value,
                unit_code,
                surface: unit.to_string(),
                is_percent,
            });
        }
        let (answer_dim, answer_scale) = match json::opt_str_field(v, "answer_unit")
            .map_err(|e| (400, e))?
        {
            None | Some("") => {
                (dim_verify::Ty::Dim(dimkb::DimVec::DIMENSIONLESS), dim_verify::Scales::one(1.0))
            }
            Some(surface) => {
                let id = resolve_unit(&ks, surface)
                    .ok_or_else(|| (422, format!("unresolvable answer unit {surface:?}")))?;
                let u = kb.unit(id);
                let scales = if u.conversion.is_affine() {
                    dim_verify::Scales::Free
                } else {
                    dim_verify::Scales::one(u.conversion.factor)
                };
                (dim_verify::Ty::Dim(u.dim), scales)
            }
        };
        let tree = dim_mwp::parse(equation).map_err(|e| (422, e.to_string()))?;
        let bound = dim_verify::bind_quantities(&tree, &quantities);
        let (dims, scales) = dim_verify::resolve_quantities(&quantities, kb);
        let report = dim_verify::check(&bound, &dims, Some(answer_dim));
        let scale_report = dim_verify::check_scales(&bound, &scales, &answer_scale);

        let accepted = report.is_consistent() && scale_report.is_consistent();
        let mut out = String::from("{\"accepted\":");
        out.push_str(if accepted { "true" } else { "false" });
        out.push_str(",\"dim\":");
        match report {
            dim_verify::VerifyReport::Consistent { dim } => {
                out.push_str("{\"consistent\":true,\"vector\":");
                let vector = match dim {
                    dim_verify::Ty::Any => "any".to_string(),
                    dim_verify::Ty::Dim(d) => d.vector_form(),
                };
                json::string(&mut out, &vector);
                out.push('}');
            }
            dim_verify::VerifyReport::Inconsistent { node, site, expected, found } => {
                out.push_str(&format!("{{\"consistent\":false,\"node\":{node},\"site\":"));
                json::string(&mut out, site.symbol());
                out.push_str(",\"expected\":");
                json::string(&mut out, &expected.vector_form());
                out.push_str(",\"found\":");
                json::string(&mut out, &found.vector_form());
                out.push('}');
            }
            dim_verify::VerifyReport::UnresolvableUnit { quantity } => {
                out.push_str(&format!(
                    "{{\"consistent\":false,\"unresolvable_quantity\":{quantity}}}"
                ));
            }
        }
        out.push_str(",\"scale\":");
        match scale_report {
            dim_verify::ScaleReport::Consistent => out.push_str("{\"consistent\":true}"),
            dim_verify::ScaleReport::Mismatch { node, site } => {
                out.push_str(&format!("{{\"consistent\":false,\"node\":{node},\"site\":"));
                json::string(&mut out, site.symbol());
                out.push('}');
            }
        }
        out.push('}');
        Ok(out)
    }

    /// The structured degraded `503` for a chaos-faulted request, recording
    /// the quarantine entry (bounded) and the `srv.degraded` counter.
    fn quarantined_response(&self, seq: u64, error: RecordError) -> Response {
        DEGRADED.inc();
        QUARANTINED.inc();
        {
            let mut q = self.lock_quarantine();
            if q.len() < MAX_QUARANTINE_ENTRIES {
                q.push(QuarantineEntry {
                    site: SITE_REQUEST.to_string(),
                    index: seq as usize,
                    error: error.to_string(),
                });
            }
        }
        let mut body = String::from("{\"degraded\":true,\"kind\":");
        json::string(&mut body, error.kind());
        body.push_str(",\"error\":");
        json::string(&mut body, &error.to_string());
        body.push('}');
        Response::json(503, body)
    }

    /// The degraded response for a request whose handler panicked (the
    /// worker's per-request `catch_unwind` calls this instead of dying;
    /// injected chaos panics land here).
    pub fn degraded_response(&self, message: String) -> Response {
        let seq = self.seq.load(Ordering::Relaxed).saturating_sub(1); // lint:allow(relaxed_ordering, best-effort attribution of a panicked request; exactness is not required)
        RESP_5XX.inc();
        self.quarantined_response(seq, RecordError::Panicked(message))
    }

    fn lock_quarantine(&self) -> std::sync::MutexGuard<'_, Vec<QuarantineEntry>> {
        match self.quarantine.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Resolves a unit surface form: exact naming-dictionary hit first, then
/// the linker's fuzzy ranking.
fn resolve_unit(ks: &DimKs, surface: &str) -> Option<dimkb::UnitId> {
    if let Some(&id) = ks.kb().lookup(surface).first() {
        return Some(id);
    }
    ks.annotator().linker().link(surface, "").first().map(|l| l.unit)
}

/// Renders one link candidate into the response body.
fn render_link(ks: &DimKs, out: &mut String, l: &LinkResult) {
    out.push_str("{\"code\":");
    json::string(out, &ks.kb().unit(l.unit).code);
    out.push_str(",\"score\":");
    json::number(out, l.score);
    out.push_str(",\"prior\":");
    json::number(out, l.prior);
    out.push_str(",\"mention_sim\":");
    json::number(out, l.mention_sim);
    out.push_str(",\"context_prob\":");
    json::number(out, l.context_prob);
    out.push('}')
}

/// The cache key for a `POST` request: route + raw body.
fn cache_key(target: &str, body: &str) -> String {
    format!("{target}\u{0}{body}")
}

/// A structured error response (`{"error": ...}`).
fn error_response(status: u16, message: &str) -> Response {
    let mut body = String::from("{\"error\":");
    json::string(&mut body, message);
    body.push('}');
    Response::json(status, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(target: &str, body: &str) -> Request {
        Request {
            method: Method::Post,
            target: target.to_string(),
            headers: vec![("content-length".to_string(), body.len().to_string())],
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(target: &str) -> Request {
        Request { method: Method::Get, target: target.to_string(), headers: vec![], body: vec![] }
    }

    fn app() -> App {
        App::new(AppConfig { batch_window: Duration::ZERO, ..AppConfig::default() })
    }

    #[test]
    fn healthz_is_static() {
        let app = app();
        let r = app.handle(&get("/healthz"));
        assert_eq!((r.status, r.body.as_str()), (200, "{\"status\":\"ok\"}"));
    }

    #[test]
    fn link_returns_ranked_candidates() {
        let app = app();
        let r = app.handle(&post("/link", "{\"mention\":\"km\",\"context\":\"driving\"}"));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"code\":\"KiloM\""), "{}", r.body);
    }

    #[test]
    fn annotate_finds_fig1_quantities() {
        let app = app();
        let r = app.handle(&post(
            "/annotate",
            "{\"text\":\"LeBron James's height is 2.06 meters and Stephen Curry's height is 188 cm.\"}",
        ));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"value\":2.06") && r.body.contains("\"unit\":\"M\""), "{}", r.body);
        assert!(r.body.contains("\"value\":188") && r.body.contains("\"unit\":\"CentiM\""));
    }

    #[test]
    fn convert_applies_dimension_law() {
        let app = app();
        let ok = app.handle(&post("/convert", "{\"value\":2.5,\"from\":\"m\",\"to\":\"cm\"}"));
        assert_eq!(ok.status, 200);
        assert!(ok.body.contains("\"value\":250"), "{}", ok.body);
        let bad = app.handle(&post("/convert", "{\"value\":1,\"from\":\"m\",\"to\":\"s\"}"));
        assert_eq!(bad.status, 422, "incomparable dimensions refuse: {}", bad.body);
        let unknown =
            app.handle(&post("/convert", "{\"value\":1,\"from\":\"zorblax\",\"to\":\"m\"}"));
        assert_eq!(unknown.status, 422);
    }

    #[test]
    fn solve_runs_the_calculator() {
        let app = app();
        let r = app.handle(&post("/solve", "{\"equation\":\"x=150*20%/5%-150\"}"));
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{\"answer\":450}");
        let bad = app.handle(&post("/solve", "{\"equation\":\"x=1+\"}"));
        assert_eq!(bad.status, 422);
    }

    #[test]
    fn verify_accepts_a_consistent_solution() {
        let app = app();
        let r = app.handle(&post(
            "/verify",
            "{\"equation\":\"x=100+50\",\"quantities\":[{\"value\":100,\"unit\":\"米\"},{\"value\":50,\"unit\":\"米\"}],\"answer_unit\":\"米\"}",
        ));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.starts_with("{\"accepted\":true"), "{}", r.body);
        assert!(r.body.contains("\"vector\":\"A0E0L1I0M0H0T0D0\""), "{}", r.body);
    }

    #[test]
    fn verify_flags_a_dimension_break_at_the_node() {
        let app = app();
        let r = app.handle(&post(
            "/verify",
            "{\"equation\":\"x=100+50\",\"quantities\":[{\"value\":100,\"unit\":\"米\"},{\"value\":50,\"unit\":\"千克\"}],\"answer_unit\":\"米\"}",
        ));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.starts_with("{\"accepted\":false"), "{}", r.body);
        assert!(r.body.contains("\"site\":\"+\""), "{}", r.body);
        assert!(r.body.contains("\"expected\"") && r.body.contains("\"found\""), "{}", r.body);
    }

    #[test]
    fn verify_flags_a_conversion_break_through_the_scale_law() {
        let app = app();
        // metres + centimetres: dimensionally clean, numerically wrong.
        let r = app.handle(&post(
            "/verify",
            "{\"equation\":\"x=100+50\",\"quantities\":[{\"value\":100,\"unit\":\"米\"},{\"value\":50,\"unit\":\"厘米\"}],\"answer_unit\":\"米\"}",
        ));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.starts_with("{\"accepted\":false"), "{}", r.body);
        assert!(r.body.contains("\"dim\":{\"consistent\":true"), "{}", r.body);
        assert!(r.body.contains("\"scale\":{\"consistent\":false"), "{}", r.body);

        // The same shape with an explicit conversion constant passes: the
        // constant is admitted in its unit-conversion reading. (Values
        // distinct from the constant, so literal binding is unambiguous.)
        let ok = app.handle(&post(
            "/verify",
            "{\"equation\":\"x=2+50/100\",\"quantities\":[{\"value\":2,\"unit\":\"米\"},{\"value\":50,\"unit\":\"厘米\"}],\"answer_unit\":\"米\"}",
        ));
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert!(ok.body.starts_with("{\"accepted\":true"), "{}", ok.body);
    }

    #[test]
    fn verify_rejects_unresolvable_units_and_bad_equations() {
        let app = app();
        let unknown = app.handle(&post(
            "/verify",
            "{\"equation\":\"x=1\",\"quantities\":[{\"value\":1,\"unit\":\"zorblax9000\"}]}",
        ));
        assert_eq!(unknown.status, 422, "{}", unknown.body);
        let bad_eq = app.handle(&post(
            "/verify",
            "{\"equation\":\"x=1+\",\"quantities\":[]}",
        ));
        assert_eq!(bad_eq.status, 422, "{}", bad_eq.body);
        let not_array = app.handle(&post("/verify", "{\"equation\":\"x=1\",\"quantities\":3}"));
        assert_eq!(not_array.status, 400, "{}", not_array.body);
    }

    #[test]
    fn malformed_bodies_are_400() {
        let app = app();
        for (target, body) in [
            ("/link", "{not json"),
            ("/link", "{\"context\":\"no mention\"}"),
            ("/link", "{\"mention\":42}"),
            ("/convert", "{\"value\":\"NaN-ish\",\"from\":\"m\",\"to\":\"cm\"}"),
            ("/solve", "{}"),
        ] {
            let r = app.handle(&post(target, body));
            assert_eq!(r.status, 400, "{target} {body} -> {}", r.body);
        }
        let mut req = post("/annotate", "{\"text\":\"x\"}");
        req.body = vec![0xFF, 0xFE];
        assert_eq!(app.handle(&req).status, 400);
    }

    #[test]
    fn unknown_routes_are_404() {
        let app = app();
        assert_eq!(app.handle(&get("/nope")).status, 404);
        assert_eq!(app.handle(&post("/nope", "{}")).status, 404);
    }

    #[test]
    fn repeated_request_is_served_from_cache() {
        let app = app();
        let req = post("/link", "{\"mention\":\"km\",\"context\":\"road\"}");
        let first = app.handle(&req);
        let cached = app.handle(&req);
        assert_eq!(first.body, cached.body, "cache must not change bytes");
        assert_eq!(app.cache().len(), 1);
    }

    #[test]
    fn metrics_endpoint_returns_snapshot_json() {
        let app = app();
        let r = app.handle(&get("/metrics"));
        assert_eq!(r.status, 200);
        assert!(r.body.starts_with('{') && r.body.contains("\"counters\""), "{}", r.body);
    }

    #[test]
    fn admin_reload_swaps_the_ks_and_clears_the_cache() {
        let app = app();
        let link = post("/link", "{\"mention\":\"km\",\"context\":\"road\"}");
        let before = app.handle(&link);
        assert_eq!(before.status, 200);
        assert_eq!(app.cache().len(), 1);
        let old_ks = app.ks();

        let r = app.handle(&post("/admin/reload", ""));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"reloaded\":true"), "{}", r.body);
        assert!(r.body.contains("\"source\":\"built\""), "{}", r.body);
        assert_eq!(app.cache().len(), 0, "reload must clear the cache");
        assert!(!Arc::ptr_eq(&old_ks, &app.ks()), "reload must swap the Arc");

        // The swapped-in KS answers identically.
        assert_eq!(app.handle(&link).body, before.body);
    }

    #[test]
    fn admin_reload_from_a_snapshot_file_serves_identically() {
        let dir = std::env::temp_dir().join("dim_serve_reload_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("kb.dimksnap");
        std::fs::write(&path, dimkb::DimUnitKb::shared().to_snapshot()).expect("write snapshot");

        let app = app();
        let link = post("/link", "{\"mention\":\"dyn/cm\",\"context\":\"surface tension\"}");
        let convert = post("/convert", "{\"value\":2.5,\"from\":\"km\",\"to\":\"m\"}");
        let (link_before, convert_before) = (app.handle(&link), app.handle(&convert));

        let body = format!("{{\"snapshot\":{:?}}}", path.to_string_lossy());
        let r = app.handle(&post("/admin/reload", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"source\":\"snapshot\""), "{}", r.body);
        assert!(r.body.contains("\"units\":"), "{}", r.body);

        assert_eq!(app.handle(&link).body, link_before.body);
        assert_eq!(app.handle(&convert).body, convert_before.body);
    }

    #[test]
    fn admin_reload_with_a_bad_snapshot_is_a_422_and_keeps_serving() {
        let dir = std::env::temp_dir().join("dim_serve_reload_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("corrupt.dimksnap");
        std::fs::write(&path, b"DIMKSNAPgarbage").expect("write corrupt file");

        let app = app();
        let old_ks = app.ks();
        let body = format!("{{\"snapshot\":{:?}}}", path.to_string_lossy());
        let r = app.handle(&post("/admin/reload", &body));
        assert_eq!(r.status, 422, "{}", r.body);
        assert!(Arc::ptr_eq(&old_ks, &app.ks()), "failed reload must keep the old KS");
        assert_eq!(app.handle(&get("/healthz")).status, 200);
    }

    #[test]
    fn snapshot_backed_app_answers_like_the_built_app() {
        let dir = std::env::temp_dir().join("dim_serve_reload_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("kb_startup.dimksnap");
        std::fs::write(&path, dimkb::DimUnitKb::shared().to_snapshot()).expect("write snapshot");

        let built = app();
        let snapped = App::new(AppConfig {
            batch_window: Duration::ZERO,
            snapshot_path: Some(path.to_string_lossy().into_owned()),
            ..AppConfig::default()
        });
        for req in [
            post("/link", "{\"mention\":\"mW\",\"context\":\"laser\"}"),
            post("/annotate", "{\"text\":\"a 12 km road and a 3 t truck\"}"),
            post("/convert", "{\"value\":1.0,\"from\":\"mi\",\"to\":\"km\"}"),
        ] {
            let (b, s) = (built.handle(&req), snapped.handle(&req));
            assert_eq!((b.status, b.body), (s.status, s.body), "{}", req.target);
        }
    }
}
