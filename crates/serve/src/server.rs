//! The server runtime: TCP acceptor, admission control, bounded connection
//! queue, fixed worker pool, per-request deadlines, panic isolation, and
//! graceful drain.
//!
//! Threading shape (fixed at startup, no growth under load):
//!
//! ```text
//! acceptor ──▶ ConnGate ──▶ Bounded<ConnTask> ──▶ worker 0..N ──▶ App::handle
//!    │            │              (capacity Q)          │
//!    │            └ gate full ⇒ 503 + Retry-After      ├── deadline expired ⇒ 503 shed
//!    └ depth ≥ high watermark ⇒ 503 + Retry-After      └── catch_unwind ⇒ degraded 503
//! ```
//!
//! Overload never blocks and never hangs: every shed is a fixed-byte `503`
//! carrying `Retry-After`, every shed path is counted, and connection slots
//! are RAII permits that release on any exit (including panic unwind and
//! chaos-injected aborts). Requests carry a [`Deadline`] from the accept
//! instant — one that expires while queued is shed at dispatch instead of
//! burning a worker on an answer the client has given up on.
//!
//! Graceful shutdown follows the queue's own drain order: stop accepting,
//! close the queue (workers finish the backlog), join everything, then emit
//! the final [`DrainReport`] with the obs snapshot.

use crate::admission::{ConnGate, ConnPermit, Watermarks};
use crate::app::{App, AppConfig};
use crate::deadline::{parse_header_budget, Deadline, HeaderBudget};
use crate::http::{self, Parsed, Response};
use crate::queue::{Bounded, PushError};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

static CONNECTIONS: dim_obs::Counter = dim_obs::Counter::new("srv.connections");
static REJECTED: dim_obs::Counter = dim_obs::Counter::new("srv.rejected");
static PANICS_CAUGHT: dim_obs::Counter = dim_obs::Counter::new("srv.panics_caught");
static GATE_SHED: dim_obs::Counter = dim_obs::Counter::new("srv.admission.gate_shed");
static WATERMARK_SHED: dim_obs::Counter = dim_obs::Counter::new("srv.admission.watermark_shed");
static DEADLINE_SHED: dim_obs::Counter = dim_obs::Counter::new("srv.deadline.shed");
static DEADLINE_SHED_QUEUE: dim_obs::Counter = dim_obs::Counter::new("srv.deadline.shed_queue");
static HEADER_TIMEOUTS: dim_obs::Counter = dim_obs::Counter::new("srv.header_timeouts");
static WRITE_FAILED: dim_obs::Counter = dim_obs::Counter::new("srv.write_failed");
static CONN_FAULT_STALL: dim_obs::Counter = dim_obs::Counter::new("srv.conn_fault.stall");
static CONN_FAULT_PARTIAL: dim_obs::Counter =
    dim_obs::Counter::new("srv.conn_fault.partial_write");
static CONN_FAULT_ABRUPT: dim_obs::Counter = dim_obs::Counter::new("srv.conn_fault.abrupt_close");

/// Chaos site for connection-level faults (one decision per accepted
/// connection, keyed by the acceptor's connection sequence number).
pub const SITE_CONN: &str = "srv.conn";

/// The fixed shed body for a request whose deadline expired before dispatch.
pub const DEADLINE_SHED_BODY: &str = "{\"error\":\"deadline exceeded\",\"shed\":true}";

/// `Retry-After` seconds on every overload shed (the smallest expressible
/// backoff; the loadgen client treats it as a floor, not a sleep mandate).
const RETRY_AFTER_SECS: u16 = 1;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Connection queue capacity (the backpressure bound).
    pub queue_capacity: usize,
    /// Hard cap on simultaneously open (admitted) connections.
    pub max_connections: usize,
    /// Queue-depth watermarks `(high, low)`; `None` derives
    /// [`Watermarks::for_capacity`] from `queue_capacity`.
    pub watermarks: Option<(usize, usize)>,
    /// Default per-request deadline budget when the client sends no
    /// `X-Deadline-Ms`.
    pub default_deadline: Duration,
    /// Ceiling for client-requested budgets (`X-Deadline-Ms` is clamped
    /// into `[1ms, max_deadline]`).
    pub max_deadline: Duration,
    /// Total wall-clock budget for reading one request head + body; a peer
    /// trickling bytes slower than this is answered `408` and closed
    /// (slow-loris hardening — per-byte progress resets the idle clock but
    /// not this one).
    pub header_read_budget: Duration,
    /// Socket read timeout — also the shutdown-check cadence.
    pub read_timeout: Duration,
    /// Consecutive idle read timeouts before an open connection is closed.
    pub idle_timeout_ticks: u32,
    /// Application configuration.
    pub app: AppConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 32,
            max_connections: 256,
            watermarks: None,
            default_deadline: Duration::from_secs(5),
            max_deadline: Duration::from_secs(30),
            header_read_budget: Duration::from_secs(2),
            read_timeout: Duration::from_millis(25),
            idle_timeout_ticks: 400,
            app: AppConfig::default(),
        }
    }
}

/// One admitted connection traveling from the acceptor to a worker. The
/// permit rides along so the gate slot releases exactly when the connection
/// is done, whatever "done" turns out to mean.
struct ConnTask {
    stream: TcpStream,
    permit: ConnPermit,
    accepted: Instant,
    seq: u64,
}

/// Per-server shed/fault tallies (obs counters are process-global, so
/// multi-server tests and the soak harness need per-handle numbers).
#[derive(Default)]
struct ServerStats {
    deadline_shed: AtomicU64,
    conn_faults: AtomicU64,
}

/// What the server did over its lifetime, emitted by a graceful shutdown.
#[derive(Debug)]
pub struct DrainReport {
    /// Requests routed through the app (including degraded ones).
    pub requests: u64,
    /// Connections accepted and queued.
    pub connections: u64,
    /// Connections refused at admission (gate, watermark, or full queue).
    pub rejected: u64,
    /// Requests shed because their deadline expired before dispatch.
    pub deadline_shed: u64,
    /// Connection-level chaos faults realized on this server.
    pub conn_faults: u64,
    /// Connections still holding a gate permit after the drain — always
    /// zero unless a permit leaked.
    pub open_connections: usize,
    /// Quarantined (chaos-degraded) requests.
    pub degraded: usize,
    /// The final `dim-obs` snapshot, rendered as JSON.
    pub obs_json: String,
}

/// A running server; dropping it without [`ServerHandle::shutdown`] aborts
/// the threads with the process.
pub struct ServerHandle {
    local_addr: SocketAddr,
    app: Arc<App>,
    queue: Arc<Bounded<ConnTask>>,
    gate: Arc<ConnGate>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<u64>>,
    workers: Vec<JoinHandle<()>>,
}

/// Per-connection serving parameters (the subset of [`ServerConfig`] each
/// worker needs, copied once at startup).
#[derive(Clone, Copy)]
struct ConnParams {
    read_timeout: Duration,
    idle_timeout_ticks: u32,
    default_deadline: Duration,
    max_deadline: Duration,
    header_read_budget: Duration,
}

/// Binds, spawns the acceptor and worker pool, and returns the handle.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    // The serving layer *is* an obs consumer: cache hit-rates, queue depth,
    // and the drain report all read the registry, so recording is on for
    // the life of the process.
    dim_obs::enable();
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let app = Arc::new(App::new(config.app.clone()));
    let queue = Arc::new(Bounded::new(config.queue_capacity));
    let gate = ConnGate::new(config.max_connections);
    let stats = Arc::new(ServerStats::default());
    let stop = Arc::new(AtomicBool::new(false));
    let watermarks = match config.watermarks {
        Some((high, low)) => Watermarks::new(high, low),
        None => Watermarks::for_capacity(config.queue_capacity),
    };

    let acceptor = {
        let queue = queue.clone();
        let gate = gate.clone();
        let stop = stop.clone();
        std::thread::spawn(move || accept_loop(&listener, &queue, &gate, watermarks, &stop))
    };

    let params = ConnParams {
        read_timeout: config.read_timeout,
        idle_timeout_ticks: config.idle_timeout_ticks,
        default_deadline: config.default_deadline,
        max_deadline: config.max_deadline,
        header_read_budget: config.header_read_budget,
    };
    let workers = (0..config.workers.max(1))
        .map(|_| {
            let app = app.clone();
            let queue = queue.clone();
            let stats = stats.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while let Some(task) = queue.pop() {
                    serve_connection(&app, task, &stats, &stop, params);
                }
            })
        })
        .collect();

    Ok(ServerHandle {
        local_addr,
        app,
        queue,
        gate,
        stats,
        stop,
        acceptor: Some(acceptor),
        workers,
    })
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The application (test/report hook).
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Connections currently holding a gate permit (test/report hook).
    pub fn open_connections(&self) -> usize {
        self.gate.open()
    }

    /// Graceful shutdown: stop accepting, drain queued connections and
    /// in-flight requests, join all threads, emit the final report.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a wake-up dial.
        let _ = TcpStream::connect(self.local_addr);
        let rejected = match self.acceptor.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => 0,
        };
        // New pushes now fail; workers drain the backlog, then see `None`.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        DrainReport {
            requests: self.app.requests_handled(),
            connections: CONNECTIONS.get(),
            rejected,
            deadline_shed: self.stats.deadline_shed.load(Ordering::Acquire),
            conn_faults: self.stats.conn_faults.load(Ordering::Acquire),
            open_connections: self.gate.open(),
            degraded: self.app.quarantine_entries().len(),
            obs_json: dim_obs::snapshot().to_json(),
        }
    }
}

/// Accepts until the stop flag is raised, shedding at the connection gate
/// and the queue watermarks. Returns the number of refused connections.
fn accept_loop(
    listener: &TcpListener,
    queue: &Bounded<ConnTask>,
    gate: &Arc<ConnGate>,
    mut watermarks: Watermarks,
    stop: &AtomicBool,
) -> u64 {
    let mut rejected = 0u64;
    let mut seq = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            // The wake-up dial (or a late client); refuse politely.
            reject(stream, "shutting down", None);
            break;
        }
        let Some(permit) = gate.try_admit() else {
            rejected += 1;
            REJECTED.inc();
            GATE_SHED.inc();
            reject(stream, "too many connections", Some(RETRY_AFTER_SECS));
            continue;
        };
        if watermarks.should_shed(queue.len()) {
            rejected += 1;
            REJECTED.inc();
            WATERMARK_SHED.inc();
            reject(stream, "queue full", Some(RETRY_AFTER_SECS));
            drop(permit);
            continue;
        }
        let task = ConnTask { stream, permit, accepted: Instant::now(), seq };
        seq += 1;
        match queue.push(task) {
            Ok(()) => CONNECTIONS.inc(),
            Err(PushError::Full(task)) | Err(PushError::Closed(task)) => {
                rejected += 1;
                REJECTED.inc();
                reject(task.stream, "queue full", Some(RETRY_AFTER_SECS));
            }
        }
    }
    rejected
}

/// The deterministic admission refusal: fixed bytes, connection closed.
///
/// The close is graceful on purpose: the peer's request bytes are still
/// unread in our receive buffer, and closing a socket with unread data
/// sends an RST that may discard the in-flight `503` before the client
/// reads it. So: respond, FIN our side, then drain the peer's bytes
/// (bounded by a short timeout) until it closes.
fn reject(mut stream: TcpStream, why: &str, retry_after: Option<u16>) {
    let mut body = String::from("{\"error\":");
    crate::json::string(&mut body, why);
    body.push('}');
    let mut resp = Response::json(503, body);
    resp.close = true;
    resp.retry_after = retry_after;
    if resp.write_to(&mut stream).is_err() {
        WRITE_FAILED.inc();
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// The deterministic shed for a request whose deadline expired before
/// dispatch. Keep-alive: the worker already owns the connection, so the
/// client's immediate retry is the cheapest possible next request.
fn deadline_shed_response() -> Response {
    Response::json(503, DEADLINE_SHED_BODY.to_string()).with_retry_after(RETRY_AFTER_SECS)
}

/// Serves one connection's keep-alive request loop until the peer closes,
/// an error forces a close, a budget runs out, or shutdown.
fn serve_connection(
    app: &App,
    task: ConnTask,
    stats: &ServerStats,
    stop: &AtomicBool,
    params: ConnParams,
) {
    let ConnTask { mut stream, permit, accepted, seq } = task;
    let _permit = permit; // held for the connection's whole lifetime
    let mut truncate_next_write = false;
    if let Some(fault) = dim_chaos::conn_fault_at(SITE_CONN, seq) {
        stats.conn_faults.fetch_add(1, Ordering::AcqRel);
        match fault {
            dim_chaos::ConnFault::AbruptClose => {
                // The peer's view: connection accepted, then dropped with
                // no bytes — the client must survive an unexpected EOF.
                CONN_FAULT_ABRUPT.inc();
                return;
            }
            dim_chaos::ConnFault::Stall => {
                CONN_FAULT_STALL.inc();
                let plan = dim_chaos::current_conn_plan();
                let ms = plan.map_or(1, |p| p.stall_ms(SITE_CONN, seq));
                std::thread::sleep(Duration::from_millis(ms));
            }
            dim_chaos::ConnFault::PartialWrite => {
                CONN_FAULT_PARTIAL.inc();
                truncate_next_write = true;
            }
        }
    }
    let _ = stream.set_read_timeout(Some(params.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut idle_ticks = 0u32;
    let mut first_request = true;
    // When the bytes of the currently-incomplete request started arriving;
    // `None` while the connection is idle between requests.
    let mut head_started: Option<Instant> = None;
    loop {
        // Parse-first so pipelined requests drain without extra reads.
        match http::parse(&buf) {
            Ok(Parsed::Complete { request, consumed }) => {
                buf.drain(..consumed);
                idle_ticks = 0;
                // The budget clock starts when the request's bytes started
                // waiting: the accept instant for a connection's first
                // request (queue time counts), the head-arrival instant
                // after that.
                let started = if first_request {
                    accepted
                } else {
                    head_started.unwrap_or_else(Instant::now)
                };
                head_started = if buf.is_empty() { None } else { Some(Instant::now()) };
                let budget = match parse_header_budget(
                    request.header("x-deadline-ms"),
                    params.max_deadline,
                ) {
                    HeaderBudget::Default => params.default_deadline,
                    HeaderBudget::Requested(d) => d,
                    HeaderBudget::Invalid => {
                        first_request = false;
                        let resp = Response::json(
                            400,
                            "{\"error\":\"invalid x-deadline-ms header\"}".to_string(),
                        );
                        if write_response(&mut stream, &resp, &mut truncate_next_write).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                let deadline = Deadline::after(started, budget);
                let mut response = if deadline.expired() {
                    DEADLINE_SHED.inc();
                    if first_request {
                        // Expired before a worker ever saw the connection:
                        // the time went to the admission queue.
                        DEADLINE_SHED_QUEUE.inc();
                    }
                    stats.deadline_shed.fetch_add(1, Ordering::AcqRel);
                    deadline_shed_response()
                } else {
                    match catch_unwind(AssertUnwindSafe(|| {
                        app.handle_with_deadline(&request, deadline)
                    })) {
                        Ok(response) => response,
                        Err(payload) => {
                            PANICS_CAUGHT.inc();
                            app.degraded_response(panic_message(payload))
                        }
                    }
                };
                first_request = false;
                let draining = stop.load(Ordering::SeqCst);
                if request.wants_close() || draining {
                    response.close = true;
                }
                if write_response(&mut stream, &response, &mut truncate_next_write).is_err()
                    || response.close
                {
                    return;
                }
                continue;
            }
            Ok(Parsed::Partial) => {}
            Err(e) => {
                let resp = Response::from_error(&e);
                let _ = write_response(&mut stream, &resp, &mut truncate_next_write);
                return;
            }
        }
        // Slow-loris guard: per-byte progress resets the idle clock below,
        // but the *total* time spent trickling one request head/body is
        // bounded — a peer can hold a worker for at most this budget.
        if head_started.is_some_and(|t| t.elapsed() >= params.header_read_budget) {
            HEADER_TIMEOUTS.inc();
            let resp = Response::json(
                408,
                "{\"error\":\"request header read budget exceeded\"}".to_string(),
            )
            .with_retry_after(RETRY_AFTER_SECS);
            let mut closing = resp;
            closing.close = true;
            let _ = write_response(&mut stream, &closing, &mut truncate_next_write);
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                idle_ticks = 0;
                if buf.is_empty() {
                    head_started = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]); // lint:allow(no_panic, read() returns n <= chunk.len())
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // In-flight requests (partial bytes buffered) get drained
                // even during shutdown; idle connections close.
                if stop.load(Ordering::SeqCst) && buf.is_empty() {
                    return;
                }
                idle_ticks += 1;
                if idle_ticks >= params.idle_timeout_ticks {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Writes one response, honoring a pending chaos partial-write (emit only
/// half the rendered bytes, then report failure so the connection closes).
/// Every failed write moves the `srv.write_failed` counter — a peer that
/// vanished mid-response is routine under overload, never a panic.
fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    truncate_next_write: &mut bool,
) -> std::io::Result<()> {
    if *truncate_next_write {
        *truncate_next_write = false;
        let wire = response.render();
        let half = wire.len() / 2;
        let _ = stream.write_all(&wire.as_bytes()[..half]); // lint:allow(no_panic, half <= wire.len() by construction)
        let _ = stream.flush();
        WRITE_FAILED.inc();
        return Err(std::io::Error::new(ErrorKind::WriteZero, "chaos partial write"));
    }
    let result = response.write_to(stream);
    if result.is_err() {
        WRITE_FAILED.inc();
    }
    result
}

/// Renders a caught panic payload (string payloads pass through, anything
/// else gets a fixed tag — the bytes stay deterministic for seeded chaos).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A minimal blocking HTTP/1.1 client for tests, the smoke transcript, and
/// the load generator — keep-alive capable, `Content-Length` bodies only
/// (which is all the server emits).
pub mod client {
    use super::*;

    /// One client connection.
    pub struct Conn {
        stream: TcpStream,
        buf: Vec<u8>,
    }

    /// A parsed response: status, body, and backoff hints.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ClientResponse {
        /// HTTP status code.
        pub status: u16,
        /// Response body bytes as UTF-8.
        pub body: String,
        /// Whether the server asked to close the connection.
        pub close: bool,
        /// Parsed `Retry-After` seconds, if the server sent one.
        pub retry_after: Option<u16>,
    }

    impl Conn {
        /// Connects to `addr`.
        pub fn connect(addr: SocketAddr) -> std::io::Result<Conn> {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Ok(Conn { stream, buf: Vec::new() })
        }

        /// Sends one request and reads the full response.
        pub fn request(
            &mut self,
            method: &str,
            target: &str,
            body: &str,
        ) -> std::io::Result<ClientResponse> {
            self.request_with_headers(method, target, body, &[])
        }

        /// Sends one request with extra headers and reads the full response.
        pub fn request_with_headers(
            &mut self,
            method: &str,
            target: &str,
            body: &str,
            extra_headers: &[(&str, &str)],
        ) -> std::io::Result<ClientResponse> {
            let mut head = format!("{method} {target} HTTP/1.1\r\nHost: dimserve\r\n");
            for (name, value) in extra_headers {
                head.push_str(&format!("{name}: {value}\r\n"));
            }
            head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
            self.stream.write_all(head.as_bytes())?;
            self.stream.write_all(body.as_bytes())?;
            self.read_response()
        }

        /// The raw stream — the hook tests use to write partial requests,
        /// trickle bytes, or half-close.
        pub fn stream(&mut self) -> &mut TcpStream {
            &mut self.stream
        }

        /// Reads one full response; pairs with raw writes via
        /// [`Conn::stream`].
        pub fn read_one(&mut self) -> std::io::Result<ClientResponse> {
            self.read_response()
        }

        fn read_response(&mut self) -> std::io::Result<ClientResponse> {
            let mut chunk = [0u8; 4096];
            loop {
                if let Some(resp) = parse_response(&mut self.buf)? {
                    return Ok(resp);
                }
                let n = self.stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ));
                }
                self.buf.extend_from_slice(&chunk[..n]); // lint:allow(no_panic, read() returns n <= chunk.len())
            }
        }
    }

    /// One-shot request on a fresh connection.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        target: &str,
        body: &str,
    ) -> std::io::Result<ClientResponse> {
        Conn::connect(addr)?.request(method, target, body)
    }

    /// Parses a buffered response if complete, consuming its bytes.
    fn parse_response(buf: &mut Vec<u8>) -> std::io::Result<Option<ClientResponse>> {
        let Some(head_end) = find_head_end(buf) else {
            return Ok(None);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned(); // lint:allow(no_panic, head_end is a windows(4) position, so head_end + 4 <= buf.len())
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_response("missing status code"))?;
        let mut content_length = 0usize;
        let mut close = false;
        let mut retry_after = None;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else { continue };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length =
                    value.parse().map_err(|_| bad_response("bad content-length"))?;
            } else if name == "connection" {
                close = value.eq_ignore_ascii_case("close");
            } else if name == "retry-after" {
                retry_after = value.parse().ok();
            }
        }
        let total = head_end + 4 + content_length;
        if buf.len() < total {
            return Ok(None);
        }
        let body = String::from_utf8_lossy(&buf[head_end + 4..total]).into_owned(); // lint:allow(no_panic, the length check above guarantees buf.len() >= total >= head_end + 4)
        buf.drain(..total);
        Ok(Some(ClientResponse { status, body, close, retry_after }))
    }

    fn find_head_end(buf: &[u8]) -> Option<usize> {
        buf.windows(4).position(|w| w == b"\r\n\r\n")
    }

    fn bad_response(why: &str) -> std::io::Error {
        std::io::Error::new(ErrorKind::InvalidData, why)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_server(workers: usize, queue: usize) -> ServerHandle {
        start(ServerConfig {
            workers,
            queue_capacity: queue,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral")
    }

    #[test]
    fn end_to_end_roundtrip_over_tcp() {
        let server = tiny_server(2, 8);
        let addr = server.addr();
        let ok = client::request(addr, "GET", "/healthz", "").expect("healthz");
        assert_eq!((ok.status, ok.body.as_str()), (200, "{\"status\":\"ok\"}"));
        let link = client::request(addr, "POST", "/link", "{\"mention\":\"km\"}").expect("link");
        assert_eq!(link.status, 200);
        assert!(link.body.contains("KiloM"), "{}", link.body);
        let report = server.shutdown();
        assert!(report.requests >= 1);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.open_connections, 0, "no leaked gate permits");
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        let server = tiny_server(1, 8);
        let mut conn = client::Conn::connect(server.addr()).expect("connect");
        for i in 0..5 {
            let body = format!("{{\"equation\":\"x=2*{i}\"}}");
            let resp = conn.request("POST", "/solve", &body).expect("solve");
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, format!("{{\"answer\":{}}}", 2 * i));
        }
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_gets_400_and_close() {
        let server = tiny_server(1, 4);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"NONSENSE\r\n\r\n").expect("write");
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.shutdown();
    }

    #[test]
    fn shutdown_reports_and_refuses_late_clients() {
        let server = tiny_server(1, 4);
        let addr = server.addr();
        client::request(addr, "GET", "/healthz", "").expect("warm");
        let report = server.shutdown();
        assert!(report.requests >= 1);
        assert!(report.obs_json.contains("\"counters\""));
        // The listener is gone (or refuses) after shutdown.
        assert!(client::request(addr, "GET", "/healthz", "").is_err());
    }

    #[test]
    fn connection_gate_sheds_excess_connections_with_retry_after() {
        let server = start(ServerConfig {
            workers: 1,
            queue_capacity: 16,
            max_connections: 1,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral");
        let addr = server.addr();
        // Occupy the single slot with a live keep-alive connection.
        let mut held = client::Conn::connect(addr).expect("connect");
        let ok = held.request("GET", "/healthz", "").expect("healthz");
        assert_eq!(ok.status, 200);
        // The next connection must be shed at the gate, deterministically.
        let shed = client::request(addr, "GET", "/healthz", "").expect("shed response");
        assert_eq!(shed.status, 503);
        assert_eq!(shed.body, "{\"error\":\"too many connections\"}");
        assert_eq!(shed.retry_after, Some(1));
        assert!(shed.close);
        // Releasing the slot restores admission.
        drop(held);
        let report = server.shutdown();
        assert!(report.rejected >= 1);
        assert_eq!(report.open_connections, 0);
    }

    #[test]
    fn expired_header_deadline_is_shed_keep_alive_with_retry_after() {
        let server = tiny_server(1, 8);
        let mut conn = client::Conn::connect(server.addr()).expect("connect");
        // Warm the connection so the next request's budget clock starts at
        // head arrival (not at accept, where queue time also counts).
        let warm = conn.request("GET", "/healthz", "").expect("warm");
        assert_eq!(warm.status, 200);
        // A 1ms budget consumed by a deliberate pause between the head
        // hitting the server and... no — the server computes the deadline
        // from head arrival, so force expiry with the smallest budget and a
        // stalled body: send the head, wait out the budget, then the body.
        let head = "POST /solve HTTP/1.1\r\nHost: x\r\nX-Deadline-Ms: 1\r\nContent-Length: 24\r\n\r\n";
        conn.stream().write_all(head.as_bytes()).expect("head");
        std::thread::sleep(Duration::from_millis(30));
        conn.stream().write_all(b"{\"equation\":\"x=21*2\"}   ").expect("body");
        let resp = conn.read_one().expect("shed response");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.body, DEADLINE_SHED_BODY);
        assert_eq!(resp.retry_after, Some(1));
        assert!(!resp.close, "deadline sheds keep the connection alive");
        // The same connection immediately serves the retry.
        let retry = conn.request("POST", "/solve", "{\"equation\":\"x=21*2\"}").expect("retry");
        assert_eq!((retry.status, retry.body.as_str()), (200, "{\"answer\":42}"));
        let report = server.shutdown();
        assert_eq!(report.deadline_shed, 1);
    }

    #[test]
    fn invalid_deadline_header_is_400_without_closing() {
        let server = tiny_server(1, 8);
        let mut conn = client::Conn::connect(server.addr()).expect("connect");
        let bad = conn
            .request_with_headers("GET", "/healthz", "", &[("X-Deadline-Ms", "soon")])
            .expect("response");
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("invalid x-deadline-ms"), "{}", bad.body);
        let ok = conn.request("GET", "/healthz", "").expect("still serving");
        assert_eq!(ok.status, 200);
        server.shutdown();
    }
}
