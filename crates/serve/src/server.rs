//! The server runtime: TCP acceptor, bounded connection queue, fixed worker
//! pool, per-request panic isolation, and graceful drain.
//!
//! Threading shape (fixed at startup, no growth under load):
//!
//! ```text
//! acceptor ──▶ Bounded<TcpStream> ──▶ worker 0..N  ──▶ App::handle
//!    │              (capacity Q)          │
//!    └── queue full ⇒ deterministic 503   └── catch_unwind ⇒ degraded 503
//! ```
//!
//! Backpressure is explicit: a full queue never blocks the acceptor — the
//! connection is answered with a fixed `503` body and the `srv.rejected`
//! counter moves. Graceful shutdown follows the queue's own drain order:
//! stop accepting, close the queue (workers finish the backlog), join
//! everything, then emit the final [`DrainReport`] with the obs snapshot.

use crate::app::{App, AppConfig};
use crate::http::{self, Parsed, Response};
use crate::queue::{Bounded, PushError};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

static CONNECTIONS: dim_obs::Counter = dim_obs::Counter::new("srv.connections");
static REJECTED: dim_obs::Counter = dim_obs::Counter::new("srv.rejected");
static PANICS_CAUGHT: dim_obs::Counter = dim_obs::Counter::new("srv.panics_caught");

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Connection queue capacity (the backpressure bound).
    pub queue_capacity: usize,
    /// Socket read timeout — also the shutdown-check cadence.
    pub read_timeout: Duration,
    /// Consecutive idle read timeouts before an open connection is closed.
    pub idle_timeout_ticks: u32,
    /// Application configuration.
    pub app: AppConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 32,
            read_timeout: Duration::from_millis(25),
            idle_timeout_ticks: 400,
            app: AppConfig::default(),
        }
    }
}

/// What the server did over its lifetime, emitted by a graceful shutdown.
#[derive(Debug)]
pub struct DrainReport {
    /// Requests routed through the app (including degraded ones).
    pub requests: u64,
    /// Connections accepted and queued.
    pub connections: u64,
    /// Connections refused with the backpressure `503`.
    pub rejected: u64,
    /// Quarantined (chaos-degraded) requests.
    pub degraded: usize,
    /// The final `dim-obs` snapshot, rendered as JSON.
    pub obs_json: String,
}

/// A running server; dropping it without [`ServerHandle::shutdown`] aborts
/// the threads with the process.
pub struct ServerHandle {
    local_addr: SocketAddr,
    app: Arc<App>,
    queue: Arc<Bounded<TcpStream>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<u64>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds, spawns the acceptor and worker pool, and returns the handle.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    // The serving layer *is* an obs consumer: cache hit-rates, queue depth,
    // and the drain report all read the registry, so recording is on for
    // the life of the process.
    dim_obs::enable();
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let app = Arc::new(App::new(config.app.clone()));
    let queue = Arc::new(Bounded::new(config.queue_capacity));
    let stop = Arc::new(AtomicBool::new(false));

    let acceptor = {
        let queue = queue.clone();
        let stop = stop.clone();
        std::thread::spawn(move || accept_loop(&listener, &queue, &stop))
    };

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let app = app.clone();
            let queue = queue.clone();
            let stop = stop.clone();
            let read_timeout = config.read_timeout;
            let idle_ticks = config.idle_timeout_ticks;
            std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    serve_connection(&app, stream, &stop, read_timeout, idle_ticks);
                }
            })
        })
        .collect();

    Ok(ServerHandle {
        local_addr,
        app,
        queue,
        stop,
        acceptor: Some(acceptor),
        workers,
    })
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The application (test/report hook).
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// Graceful shutdown: stop accepting, drain queued connections and
    /// in-flight requests, join all threads, emit the final report.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a wake-up dial.
        let _ = TcpStream::connect(self.local_addr);
        let rejected = match self.acceptor.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => 0,
        };
        // New pushes now fail; workers drain the backlog, then see `None`.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        DrainReport {
            requests: self.app.requests_handled(),
            connections: CONNECTIONS.get(),
            rejected,
            degraded: self.app.quarantine_entries().len(),
            obs_json: dim_obs::snapshot().to_json(),
        }
    }
}

/// Accepts until the stop flag is raised. Returns the number of refused
/// (backpressured) connections.
fn accept_loop(listener: &TcpListener, queue: &Bounded<TcpStream>, stop: &AtomicBool) -> u64 {
    let mut rejected = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            // The wake-up dial (or a late client); refuse politely.
            reject(stream, "shutting down");
            break;
        }
        match queue.push(stream) {
            Ok(()) => CONNECTIONS.inc(),
            Err(PushError::Full(stream)) | Err(PushError::Closed(stream)) => {
                rejected += 1;
                REJECTED.inc();
                reject(stream, "queue full");
            }
        }
    }
    rejected
}

/// The deterministic backpressure refusal: fixed bytes, connection closed.
fn reject(mut stream: TcpStream, why: &str) {
    let mut body = String::from("{\"error\":");
    crate::json::string(&mut body, why);
    body.push('}');
    let mut resp = Response::json(503, body);
    resp.close = true;
    let _ = resp.write_to(&mut stream);
}

/// Serves one connection's keep-alive request loop until the peer closes,
/// an error forces a close, the idle budget runs out, or shutdown.
fn serve_connection(
    app: &App,
    mut stream: TcpStream,
    stop: &AtomicBool,
    read_timeout: Duration,
    idle_timeout_ticks: u32,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut idle_ticks = 0u32;
    loop {
        // Parse-first so pipelined requests drain without extra reads.
        match http::parse(&buf) {
            Ok(Parsed::Complete { request, consumed }) => {
                buf.drain(..consumed);
                idle_ticks = 0;
                let mut response =
                    match catch_unwind(AssertUnwindSafe(|| app.handle(&request))) {
                        Ok(response) => response,
                        Err(payload) => {
                            PANICS_CAUGHT.inc();
                            app.degraded_response(panic_message(payload))
                        }
                    };
                let draining = stop.load(Ordering::SeqCst);
                if request.wants_close() || draining {
                    response.close = true;
                }
                if response.write_to(&mut stream).is_err() || response.close {
                    return;
                }
                continue;
            }
            Ok(Parsed::Partial) => {}
            Err(e) => {
                let _ = Response::from_error(&e).write_to(&mut stream);
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                idle_ticks = 0;
                buf.extend_from_slice(&chunk[..n]); // lint:allow(no_panic, read() returns n <= chunk.len())
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // In-flight requests (partial bytes buffered) get drained
                // even during shutdown; idle connections close.
                if stop.load(Ordering::SeqCst) && buf.is_empty() {
                    return;
                }
                idle_ticks += 1;
                if idle_ticks >= idle_timeout_ticks {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Renders a caught panic payload (string payloads pass through, anything
/// else gets a fixed tag — the bytes stay deterministic for seeded chaos).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A minimal blocking HTTP/1.1 client for tests, the smoke transcript, and
/// the load generator — keep-alive capable, `Content-Length` bodies only
/// (which is all the server emits).
pub mod client {
    use super::*;

    /// One client connection.
    pub struct Conn {
        stream: TcpStream,
        buf: Vec<u8>,
    }

    /// A parsed response: status and body.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ClientResponse {
        /// HTTP status code.
        pub status: u16,
        /// Response body bytes as UTF-8.
        pub body: String,
        /// Whether the server asked to close the connection.
        pub close: bool,
    }

    impl Conn {
        /// Connects to `addr`.
        pub fn connect(addr: SocketAddr) -> std::io::Result<Conn> {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Ok(Conn { stream, buf: Vec::new() })
        }

        /// Sends one request and reads the full response.
        pub fn request(
            &mut self,
            method: &str,
            target: &str,
            body: &str,
        ) -> std::io::Result<ClientResponse> {
            let head = format!(
                "{method} {target} HTTP/1.1\r\nHost: dimserve\r\nContent-Length: {}\r\n\r\n",
                body.len()
            );
            self.stream.write_all(head.as_bytes())?;
            self.stream.write_all(body.as_bytes())?;
            self.read_response()
        }

        fn read_response(&mut self) -> std::io::Result<ClientResponse> {
            let mut chunk = [0u8; 4096];
            loop {
                if let Some(resp) = parse_response(&mut self.buf)? {
                    return Ok(resp);
                }
                let n = self.stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ));
                }
                self.buf.extend_from_slice(&chunk[..n]); // lint:allow(no_panic, read() returns n <= chunk.len())
            }
        }
    }

    /// One-shot request on a fresh connection.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        target: &str,
        body: &str,
    ) -> std::io::Result<ClientResponse> {
        Conn::connect(addr)?.request(method, target, body)
    }

    /// Parses a buffered response if complete, consuming its bytes.
    fn parse_response(buf: &mut Vec<u8>) -> std::io::Result<Option<ClientResponse>> {
        let Some(head_end) = find_head_end(buf) else {
            return Ok(None);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned(); // lint:allow(no_panic, head_end is a windows(4) position, so head_end + 4 <= buf.len())
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_response("missing status code"))?;
        let mut content_length = 0usize;
        let mut close = false;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else { continue };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length =
                    value.parse().map_err(|_| bad_response("bad content-length"))?;
            } else if name == "connection" {
                close = value.eq_ignore_ascii_case("close");
            }
        }
        let total = head_end + 4 + content_length;
        if buf.len() < total {
            return Ok(None);
        }
        let body = String::from_utf8_lossy(&buf[head_end + 4..total]).into_owned(); // lint:allow(no_panic, the length check above guarantees buf.len() >= total >= head_end + 4)
        buf.drain(..total);
        Ok(Some(ClientResponse { status, body, close }))
    }

    fn find_head_end(buf: &[u8]) -> Option<usize> {
        buf.windows(4).position(|w| w == b"\r\n\r\n")
    }

    fn bad_response(why: &str) -> std::io::Error {
        std::io::Error::new(ErrorKind::InvalidData, why)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_server(workers: usize, queue: usize) -> ServerHandle {
        start(ServerConfig {
            workers,
            queue_capacity: queue,
            app: AppConfig { batch_window: Duration::ZERO, ..AppConfig::default() },
            ..ServerConfig::default()
        })
        .expect("bind ephemeral")
    }

    #[test]
    fn end_to_end_roundtrip_over_tcp() {
        let server = tiny_server(2, 8);
        let addr = server.addr();
        let ok = client::request(addr, "GET", "/healthz", "").expect("healthz");
        assert_eq!((ok.status, ok.body.as_str()), (200, "{\"status\":\"ok\"}"));
        let link = client::request(addr, "POST", "/link", "{\"mention\":\"km\"}").expect("link");
        assert_eq!(link.status, 200);
        assert!(link.body.contains("KiloM"), "{}", link.body);
        let report = server.shutdown();
        assert!(report.requests >= 1);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        let server = tiny_server(1, 8);
        let mut conn = client::Conn::connect(server.addr()).expect("connect");
        for i in 0..5 {
            let body = format!("{{\"equation\":\"x=2*{i}\"}}");
            let resp = conn.request("POST", "/solve", &body).expect("solve");
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, format!("{{\"answer\":{}}}", 2 * i));
        }
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_gets_400_and_close() {
        let server = tiny_server(1, 4);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"NONSENSE\r\n\r\n").expect("write");
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.shutdown();
    }

    #[test]
    fn shutdown_reports_and_refuses_late_clients() {
        let server = tiny_server(1, 4);
        let addr = server.addr();
        client::request(addr, "GET", "/healthz", "").expect("warm");
        let report = server.shutdown();
        assert!(report.requests >= 1);
        assert!(report.obs_json.contains("\"counters\""));
        // The listener is gone (or refuses) after shutdown.
        assert!(client::request(addr, "GET", "/healthz", "").is_err());
    }
}
