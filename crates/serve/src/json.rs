//! Minimal deterministic JSON building and field extraction.
//!
//! Response bodies are assembled by hand (same discipline as
//! `dim_obs::Snapshot::to_json`): fields appear in the order the handler
//! writes them, floats use Rust's shortest-roundtrip `{}` formatting, and
//! equal inputs therefore always produce byte-identical bodies. Request
//! bodies are parsed through the vendored `serde_json` into the compat
//! [`serde::Value`] tree and fields are extracted by name.

use serde::Value;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` (integers without a trailing `.0` would change
/// meaning here, so plain `{}` — shortest roundtrip — is used; non-finite
/// values have no JSON form and render as `null`).
pub fn number(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// An object field lookup over a parsed [`Value`].
pub fn field<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
    match v {
        Value::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

/// A required string field.
pub fn str_field<'v>(v: &'v Value, name: &str) -> Result<&'v str, String> {
    match field(v, name) {
        Some(Value::Str(s)) => Ok(s),
        Some(_) => Err(format!("field {name:?} must be a string")),
        None => Err(format!("missing field {name:?}")),
    }
}

/// An optional string field (absent ⇒ `None`, wrong type ⇒ error).
pub fn opt_str_field<'v>(v: &'v Value, name: &str) -> Result<Option<&'v str>, String> {
    match field(v, name) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(_) => Err(format!("field {name:?} must be a string")),
    }
}

/// A required numeric field.
pub fn num_field(v: &Value, name: &str) -> Result<f64, String> {
    match field(v, name) {
        Some(Value::Num(n)) => Ok(*n),
        Some(_) => Err(format!("field {name:?} must be a number")),
        None => Err(format!("missing field {name:?}")),
    }
}

/// Parses a request body into the compat [`Value`] tree.
pub fn parse(body: &str) -> Result<Value, String> {
    serde_json::parse_value(body).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping_covers_controls() {
        let mut out = String::new();
        string(&mut out, "a\"b\\c\nd\u{1}米");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001米\"");
    }

    #[test]
    fn numbers_render_shortest_roundtrip() {
        let mut out = String::new();
        number(&mut out, 2.06);
        out.push(',');
        number(&mut out, 188.0);
        out.push(',');
        number(&mut out, f64::NAN);
        assert_eq!(out, "2.06,188,null");
    }

    #[test]
    fn field_extraction() {
        let v = parse("{\"mention\": \"km\", \"value\": 2.5}").expect("valid json");
        assert_eq!(str_field(&v, "mention"), Ok("km"));
        assert_eq!(num_field(&v, "value"), Ok(2.5));
        assert!(str_field(&v, "missing").is_err());
        assert!(num_field(&v, "mention").is_err());
        assert_eq!(opt_str_field(&v, "context"), Ok(None));
        assert!(opt_str_field(&v, "value").is_err());
        assert!(parse("{not json").is_err());
    }
}
