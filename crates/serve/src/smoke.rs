//! The serve smoke transcript: a fixed request script against an in-process
//! server on an ephemeral port, rendered to a byte-stable transcript that
//! `make serve-smoke` compares against `results/quick/serve.txt`.
//!
//! Determinism contract: every line is a pure function of the request
//! script and the engine — no ports, timestamps, latencies, or obs-registry
//! contents (the `/metrics` probe records only its status). The same
//! transcript must come out at any worker count and dim-par width.

use crate::server::{client, start, ServerConfig};
use std::fmt::Write as _;

/// The fixed request script (method, target, body).
pub const SCRIPT: &[(&str, &str, &str)] = &[
    ("GET", "/healthz", ""),
    (
        "POST",
        "/annotate",
        "{\"text\":\"LeBron James's height is 2.06 meters and Stephen Curry's height is 188 cm.\"}",
    ),
    ("POST", "/link", "{\"mention\":\"km\",\"context\":\"the road is long\"}"),
    ("POST", "/link", "{\"mention\":\"米\",\"context\":\"身高\"}"),
    ("POST", "/convert", "{\"value\":2.5,\"from\":\"km\",\"to\":\"m\"}"),
    ("POST", "/convert", "{\"value\":1,\"from\":\"m\",\"to\":\"s\"}"),
    ("POST", "/solve", "{\"equation\":\"x=150*20%/5%-150\"}"),
    ("POST", "/solve", "{\"equation\":\"x=((3+5)*2-6)/2\"}"),
    (
        "POST",
        "/verify",
        "{\"equation\":\"x=100+50\",\"quantities\":[{\"value\":100,\"unit\":\"米\"},{\"value\":50,\"unit\":\"米\"}],\"answer_unit\":\"米\"}",
    ),
    (
        "POST",
        "/verify",
        "{\"equation\":\"x=100+50\",\"quantities\":[{\"value\":100,\"unit\":\"米\"},{\"value\":50,\"unit\":\"千克\"}]}",
    ),
    (
        "POST",
        "/verify",
        "{\"equation\":\"x=3*2\",\"quantities\":[{\"value\":3,\"unit\":\"zorblax\"},{\"value\":2}]}",
    ),
    ("POST", "/link", "{\"mention\":\"km\",\"context\":\"the road is long\"}"),
    ("POST", "/nowhere", "{}"),
    ("POST", "/link", "{not json"),
    ("GET", "/metrics", ""),
];

/// Runs [`SCRIPT`] against a fresh in-process server and renders the
/// transcript. `workers` exercises the pool without changing a byte.
pub fn transcript(workers: usize) -> std::io::Result<String> {
    let server = start(ServerConfig { workers, ..ServerConfig::default() })?;
    let addr = server.addr();
    let mut out = String::new();
    let _ = writeln!(out, "# dim-serve smoke transcript");
    let mut conn = client::Conn::connect(addr)?;
    for (method, target, body) in SCRIPT {
        let resp = conn.request(method, target, body)?;
        let _ = writeln!(out, "### {method} {target}");
        if !body.is_empty() {
            let _ = writeln!(out, "> {body}");
        }
        if *target == "/metrics" {
            // The obs registry accumulates across the process; only the
            // status is stable.
            let _ = writeln!(out, "< {}", resp.status);
        } else {
            let _ = writeln!(out, "< {} {}", resp.status, resp.body);
        }
        if resp.close {
            conn = client::Conn::connect(addr)?;
        }
    }
    // Cache contents are part of the contract: one entry per distinct
    // successful POST body; the repeated /link was served from the LRU.
    let cache_entries = server.app().cache().len();
    let report = server.shutdown();
    let _ = writeln!(out, "### drain");
    let _ = writeln!(
        out,
        "requests={} rejected={} degraded={} cache_entries={cache_entries}",
        report.requests, report.rejected, report.degraded
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_is_identical_across_worker_counts() {
        let one = transcript(1).expect("workers=1");
        let four = transcript(4).expect("workers=4");
        assert_eq!(one, four, "worker count changed transcript bytes");
        assert!(one.contains("### drain"));
    }
}
