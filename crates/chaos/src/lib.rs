//! # dim-chaos
//!
//! Deterministic, seed-driven fault injection for the dimension-perception
//! pipeline. A [`FaultPlan`] decides, purely from `(seed, site, index)`,
//! whether a given record at a given *site* (a named injection point such as
//! `"link.annotate"` or `"mwp.gen.math23k"`) is faulted and with which
//! [`FaultKind`]. The decision function is a SplitMix64-style finalizer — the
//! same discipline as `dim_par::seed_for` — so a plan produces the *same*
//! faults at every thread width and on every run.
//!
//! The injector follows the `dim-obs` global-toggle contract:
//!
//! * **off by default** — nothing is injected unless [`install`] is called
//!   with a positive rate and a non-empty kind set;
//! * **one acquire atomic load per site when disabled** — [`fault_at`]
//!   returns immediately after a single `AtomicBool` load;
//! * zero dependencies, `std` only.
//!
//! Faults are consulted **only** by the degraded-mode (`try_*`) entry points;
//! the classic batch paths never call [`fault_at`], so installing a plan
//! cannot perturb golden outputs of the classic pipeline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The kinds of fault the injector can produce at a site.
///
/// The data-corruption kinds are *honest*: the degraded-mode sites realize
/// them by feeding [`MALFORMED_EXPR`] / [`CORRUPT_UNIT`] through the real
/// `dimkb` parser and lookup paths, so the resulting errors travel the same
/// code as genuine bad records would.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic inside the work item (caught by the panic-isolated `par_map`).
    Panic,
    /// A unit expression that fails `dimkb::expr` parsing.
    MalformedExpr,
    /// A KB lookup against a unit code that does not exist.
    CorruptKb,
    /// An input record larger than the degraded-mode size cap.
    Oversize,
}

impl FaultKind {
    /// All kinds, in the fixed order used for deterministic kind selection.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Panic,
        FaultKind::MalformedExpr,
        FaultKind::CorruptKb,
        FaultKind::Oversize,
    ];

    /// Stable lowercase name, used in plan banners and manifests.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::MalformedExpr => "malformed-expr",
            FaultKind::CorruptKb => "corrupt-kb",
            FaultKind::Oversize => "oversize",
        }
    }

    fn bit(self) -> u64 {
        match self {
            FaultKind::Panic => 1,
            FaultKind::MalformedExpr => 2,
            FaultKind::CorruptKb => 4,
            FaultKind::Oversize => 8,
        }
    }
}

/// A set of [`FaultKind`]s, stored as a bitmask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultKinds(u64);

impl FaultKinds {
    /// The empty set (a plan with no kinds never fires).
    pub const NONE: FaultKinds = FaultKinds(0);
    /// Every fault kind.
    pub const ALL: FaultKinds = FaultKinds(0b1111);

    /// A set containing exactly `kind`.
    pub fn only(kind: FaultKind) -> FaultKinds {
        FaultKinds(kind.bit())
    }

    /// This set plus `kind`.
    pub fn with(self, kind: FaultKind) -> FaultKinds {
        FaultKinds(self.0 | kind.bit())
    }

    /// Whether `kind` is in the set.
    pub fn contains(self, kind: FaultKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Members in the fixed [`FaultKind::ALL`] order.
    pub fn members(self) -> Vec<FaultKind> {
        FaultKind::ALL
            .into_iter()
            .filter(|k| self.contains(*k))
            .collect()
    }

    /// `panic|malformed-expr|...` rendering for plan banners.
    pub fn render(self) -> String {
        let names: Vec<&str> = self.members().iter().map(|k| k.name()).collect();
        if names.is_empty() {
            "none".to_string()
        } else {
            names.join("|")
        }
    }
}

/// A fault-injection plan: which fraction of records fault, which kinds are
/// allowed, and the seed that makes every decision reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; decisions are a pure function of `(seed, site, index)`.
    pub seed: u64,
    /// Fault probability per record in `[0, 1]`. Rate `0.0` never fires.
    pub rate: f64,
    /// Which fault kinds may be injected.
    pub kinds: FaultKinds,
}

impl FaultPlan {
    /// A plan injecting every kind at `rate` under `seed`.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            kinds: FaultKinds::ALL,
        }
    }

    /// Whether this plan can ever fire.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0 && !self.kinds.is_empty()
    }

    /// The pure decision function: does `site[index]` fault, and how?
    ///
    /// `h = mix(seed, fnv1a(site), index)` is a SplitMix64 finalizer over the
    /// three inputs; its top 53 bits form a uniform draw in `[0, 1)` that is
    /// compared against `rate`, and a second finalizer round picks the kind.
    /// Two calls with the same inputs always agree — across runs, thread
    /// widths, and machines.
    pub fn decide(&self, site: &str, index: u64) -> Option<FaultKind> {
        if !self.is_active() {
            return None;
        }
        let h = mix(self.seed, fnv1a(site.as_bytes()), index);
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= self.rate {
            return None;
        }
        let members = self.kinds.members();
        let pick = mix(h, 0x9E37_79B9_7F4A_7C15, index) as usize % members.len();
        // lint:allow(no_panic, pick < members.len() by the modulo above; members is non-empty because is_active() checked kinds)
        Some(members[pick])
    }
}

/// Canned unit expression that fails `dimkb::expr` tokenization/parsing.
/// Degraded-mode sites feed this through the *real* parser so the injected
/// error is a genuine `KbError::ExprParse`.
pub const MALFORMED_EXPR: &str = "((km^^⁻/ · )) %%";

/// Canned unit code that exists in no knowledge base; looking it up drives
/// the real `KbError::UnknownUnit` path.
pub const CORRUPT_UNIT: &str = "__CHAOS_CORRUPT_UNIT__";

/// Prefix of every injected panic message; the quiet panic hook installed by
/// [`silence_injected_panic_reports`] matches on this.
pub const INJECTED_PANIC_PREFIX: &str = "chaos: injected panic";

// Global plan storage. `ENABLED` is the single atomic load on the disabled
// fast path; the plan fields are only read after it observes `true`.
// `install` publishes the fields with a release store of `ENABLED`, and
// every `ENABLED` load is acquire, so a reader that sees `true` also sees
// the plan fields that were stored before it (found by dim-lint's
// relaxed-ordering audit: the loads used to be relaxed, which let a racing
// reader observe `enabled` with a stale seed/rate).
static ENABLED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);
static RATE_BITS: AtomicU64 = AtomicU64::new(0);
static KINDS: AtomicU64 = AtomicU64::new(0);

/// Installs `plan` globally. A plan that can never fire (rate 0 or empty
/// kinds) leaves the injector disabled, so `--chaos-rate 0` is
/// indistinguishable from no plan at all.
pub fn install(plan: FaultPlan) {
    // The release store of ENABLED below orders these field stores for
    // every acquire reader; the stores themselves need no ordering.
    SEED.store(plan.seed, Ordering::Relaxed); // lint:allow(relaxed_ordering, published by the release store of ENABLED below)
    RATE_BITS.store(plan.rate.to_bits(), Ordering::Relaxed); // lint:allow(relaxed_ordering, published by the release store of ENABLED below)
    KINDS.store(plan.kinds.0, Ordering::Relaxed); // lint:allow(relaxed_ordering, published by the release store of ENABLED below)
    ENABLED.store(plan.is_active(), Ordering::Release);
}

/// Disables injection (the default state). Also clears the connection-level
/// plan, so `clear()` restores the fully chaos-free world — test harnesses
/// rely on one call resetting everything.
pub fn clear() {
    ENABLED.store(false, Ordering::Release);
    CONN_ENABLED.store(false, Ordering::Release);
}

/// Whether a fault plan is installed and active. Acquire pairs with the
/// release store in [`install`]: a `true` here guarantees the plan fields
/// are visible.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// The installed plan, if the injector is enabled.
pub fn current_plan() -> Option<FaultPlan> {
    if !enabled() {
        return None;
    }
    // The acquire load in `enabled()` ordered these; plain relaxed reads
    // of independently-atomic fields are all that's left.
    Some(FaultPlan {
        seed: SEED.load(Ordering::Relaxed), // lint:allow(relaxed_ordering, ordered by the acquire load of ENABLED in enabled())
        rate: f64::from_bits(RATE_BITS.load(Ordering::Relaxed)), // lint:allow(relaxed_ordering, ordered by the acquire load of ENABLED in enabled())
        kinds: FaultKinds(KINDS.load(Ordering::Relaxed)), // lint:allow(relaxed_ordering, ordered by the acquire load of ENABLED in enabled())
    })
}

/// The per-site injection check. Disabled: exactly one acquire atomic load
/// (free on x86, one fence-free ldar on aarch64). Enabled: delegates to
/// [`FaultPlan::decide`].
#[inline]
pub fn fault_at(site: &str, index: u64) -> Option<FaultKind> {
    if !ENABLED.load(Ordering::Acquire) {
        return None;
    }
    current_plan().and_then(|plan| plan.decide(site, index))
}

/// Installs a panic hook that suppresses the default stderr report for
/// panics whose payload starts with [`INJECTED_PANIC_PREFIX`], delegating
/// everything else to the previous hook. Injected panics are *expected* and
/// caught by the panic-isolated `par_map`; without this, a chaos sweep fills
/// stderr with noise from worker threads. Idempotent per process.
pub fn silence_injected_panic_reports() {
    use std::sync::Once;
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.as_str()));
            if msg.is_some_and(|m| m.starts_with(INJECTED_PANIC_PREFIX)) {
                return;
            }
            prev(info);
        }));
    });
}

// ===================== connection-level faults =====================

/// Transport-level fault kinds, injected by the serving layer per
/// *connection* rather than per record. They are deliberately a separate
/// taxonomy from [`FaultKind`]: adding members to [`FaultKind::ALL`] would
/// shift the kind-selection stream of every existing record-fault plan and
/// silently rewrite the chaos goldens, whereas connection faults get their
/// own plan, their own globals, and their own decision stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConnFault {
    /// A bounded pause before the connection is served (a slow worker /
    /// congested network in miniature).
    Stall,
    /// The first response is cut off mid-write and the connection closed —
    /// the client observes a truncated frame.
    PartialWrite,
    /// The connection is closed before a single byte is read or written.
    AbruptClose,
}

impl ConnFault {
    /// All kinds, in the fixed order used for deterministic kind selection.
    pub const ALL: [ConnFault; 3] =
        [ConnFault::Stall, ConnFault::PartialWrite, ConnFault::AbruptClose];

    /// Stable lowercase name, used in plan banners and soak reports.
    pub fn name(self) -> &'static str {
        match self {
            ConnFault::Stall => "stall",
            ConnFault::PartialWrite => "partial-write",
            ConnFault::AbruptClose => "abrupt-close",
        }
    }

    fn bit(self) -> u64 {
        match self {
            ConnFault::Stall => 1,
            ConnFault::PartialWrite => 2,
            ConnFault::AbruptClose => 4,
        }
    }
}

/// A set of [`ConnFault`]s, stored as a bitmask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnFaultKinds(u64);

impl ConnFaultKinds {
    /// The empty set (a plan with no kinds never fires).
    pub const NONE: ConnFaultKinds = ConnFaultKinds(0);
    /// Every connection fault kind.
    pub const ALL: ConnFaultKinds = ConnFaultKinds(0b111);

    /// A set containing exactly `kind`.
    pub fn only(kind: ConnFault) -> ConnFaultKinds {
        ConnFaultKinds(kind.bit())
    }

    /// This set plus `kind`.
    pub fn with(self, kind: ConnFault) -> ConnFaultKinds {
        ConnFaultKinds(self.0 | kind.bit())
    }

    /// Whether `kind` is in the set.
    pub fn contains(self, kind: ConnFault) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Members in the fixed [`ConnFault::ALL`] order.
    pub fn members(self) -> Vec<ConnFault> {
        ConnFault::ALL.into_iter().filter(|k| self.contains(*k)).collect()
    }

    /// `stall|partial-write|...` rendering for plan banners.
    pub fn render(self) -> String {
        let names: Vec<&str> = self.members().iter().map(|k| k.name()).collect();
        if names.is_empty() {
            "none".to_string()
        } else {
            names.join("|")
        }
    }
}

/// A connection-fault plan: which fraction of connections fault, which
/// kinds are allowed, and the seed that makes every decision reproducible.
/// Decisions are a pure function of `(seed, site, index)` exactly like
/// [`FaultPlan::decide`], but salted differently so a shared seed does not
/// correlate the record and connection streams.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConnPlan {
    /// Master seed; decisions are a pure function of `(seed, site, index)`.
    pub seed: u64,
    /// Fault probability per connection in `[0, 1]`. Rate `0.0` never fires.
    pub rate: f64,
    /// Which connection fault kinds may be injected.
    pub kinds: ConnFaultKinds,
}

impl ConnPlan {
    /// A plan injecting every connection fault kind at `rate` under `seed`.
    pub fn new(seed: u64, rate: f64) -> ConnPlan {
        ConnPlan { seed, rate, kinds: ConnFaultKinds::ALL }
    }

    /// Whether this plan can ever fire.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0 && !self.kinds.is_empty()
    }

    /// The pure decision function: does connection `site[index]` fault,
    /// and how? Same finalizer discipline as [`FaultPlan::decide`].
    pub fn decide(&self, site: &str, index: u64) -> Option<ConnFault> {
        if !self.is_active() {
            return None;
        }
        let h = mix(self.seed ^ CONN_STREAM_SALT, fnv1a(site.as_bytes()), index);
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= self.rate {
            return None;
        }
        let members = self.kinds.members();
        let pick = mix(h, 0x9E37_79B9_7F4A_7C15, index) as usize % members.len();
        // lint:allow(no_panic, pick < members.len() by the modulo above; members is non-empty because is_active() checked kinds)
        Some(members[pick])
    }

    /// The deterministic stall duration for a [`ConnFault::Stall`] decision
    /// at `site[index]`, in milliseconds — bounded to `1..=8` so a chaos
    /// soak slows down but never wedges.
    pub fn stall_ms(&self, site: &str, index: u64) -> u64 {
        1 + (mix(self.seed ^ CONN_STREAM_SALT, fnv1a(site.as_bytes()), index.rotate_left(17)) % 8)
    }
}

// Connection-plan globals: same publish discipline as the record plan —
// `CONN_ENABLED` is the single acquire load on the disabled fast path, and
// `install_conn` publishes the fields with its release store.
static CONN_ENABLED: AtomicBool = AtomicBool::new(false);
static CONN_SEED: AtomicU64 = AtomicU64::new(0);
static CONN_RATE_BITS: AtomicU64 = AtomicU64::new(0);
static CONN_KINDS: AtomicU64 = AtomicU64::new(0);

/// Stream salt separating connection-fault draws from record-fault draws
/// under a shared seed.
const CONN_STREAM_SALT: u64 = 0x5EED_C044_FA17_0001;

/// Installs `plan` as the global connection-fault plan. A plan that can
/// never fire leaves the connection injector disabled, so a rate-0 plan is
/// indistinguishable from no plan at all.
pub fn install_conn(plan: ConnPlan) {
    CONN_SEED.store(plan.seed, Ordering::Relaxed); // lint:allow(relaxed_ordering, published by the release store of CONN_ENABLED below)
    CONN_RATE_BITS.store(plan.rate.to_bits(), Ordering::Relaxed); // lint:allow(relaxed_ordering, published by the release store of CONN_ENABLED below)
    CONN_KINDS.store(plan.kinds.0, Ordering::Relaxed); // lint:allow(relaxed_ordering, published by the release store of CONN_ENABLED below)
    CONN_ENABLED.store(plan.is_active(), Ordering::Release);
}

/// Disables connection-fault injection (the default state).
pub fn clear_conn() {
    CONN_ENABLED.store(false, Ordering::Release);
}

/// Whether a connection-fault plan is installed and active.
pub fn conn_enabled() -> bool {
    CONN_ENABLED.load(Ordering::Acquire)
}

/// The installed connection plan, if the injector is enabled.
pub fn current_conn_plan() -> Option<ConnPlan> {
    if !conn_enabled() {
        return None;
    }
    Some(ConnPlan {
        seed: CONN_SEED.load(Ordering::Relaxed), // lint:allow(relaxed_ordering, ordered by the acquire load of CONN_ENABLED in conn_enabled())
        rate: f64::from_bits(CONN_RATE_BITS.load(Ordering::Relaxed)), // lint:allow(relaxed_ordering, ordered by the acquire load of CONN_ENABLED in conn_enabled())
        kinds: ConnFaultKinds(CONN_KINDS.load(Ordering::Relaxed)), // lint:allow(relaxed_ordering, ordered by the acquire load of CONN_ENABLED in conn_enabled())
    })
}

/// The per-connection injection check. Disabled: exactly one acquire
/// atomic load. Enabled: delegates to [`ConnPlan::decide`].
#[inline]
pub fn conn_fault_at(site: &str, index: u64) -> Option<ConnFault> {
    if !CONN_ENABLED.load(Ordering::Acquire) {
        return None;
    }
    current_conn_plan().and_then(|plan| plan.decide(site, index))
}

/// FNV-1a over the site name: cheap, stable, and good enough to separate the
/// handful of site streams (the SplitMix64 finalizer does the real mixing).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64-style finalizer over the three decision inputs — the same
/// discipline `dim_par::seed_for` uses for per-item RNG streams.
fn mix(seed: u64, site_hash: u64, index: u64) -> u64 {
    let mut z = seed
        ^ site_hash.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Tests mutate the global plan; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_by_default_and_after_clear() {
        let _g = locked();
        clear();
        assert!(!enabled());
        assert_eq!(fault_at("link.annotate", 0), None);
        install(FaultPlan::new(7, 0.5));
        assert!(enabled());
        clear();
        assert!(!enabled());
        assert_eq!(fault_at("link.annotate", 0), None);
    }

    #[test]
    fn rate_zero_plan_never_fires() {
        let _g = locked();
        install(FaultPlan::new(7, 0.0));
        assert!(!enabled());
        for i in 0..1000 {
            assert_eq!(fault_at("mwp.gen", i), None);
        }
        clear();
    }

    #[test]
    fn empty_kind_set_never_fires() {
        let _g = locked();
        install(FaultPlan {
            seed: 7,
            rate: 1.0,
            kinds: FaultKinds::NONE,
        });
        assert!(!enabled());
        assert_eq!(fault_at("mwp.gen", 3), None);
        clear();
    }

    #[test]
    fn rate_one_always_fires() {
        let plan = FaultPlan::new(42, 1.0);
        for i in 0..200 {
            assert!(plan.decide("dimeval.task", i).is_some());
        }
    }

    #[test]
    fn decisions_are_deterministic_and_site_separated() {
        let plan = FaultPlan::new(0xC4A05, 0.25);
        let a: Vec<_> = (0..500).map(|i| plan.decide("link.annotate", i)).collect();
        let b: Vec<_> = (0..500).map(|i| plan.decide("link.annotate", i)).collect();
        assert_eq!(a, b, "same inputs must give same decisions");
        let c: Vec<_> = (0..500).map(|i| plan.decide("mwp.gen", i)).collect();
        assert_ne!(a, c, "different sites must get different fault streams");
    }

    #[test]
    fn observed_rate_tracks_requested_rate() {
        let plan = FaultPlan::new(9, 0.2);
        let n = 10_000u64;
        let hits = (0..n).filter(|&i| plan.decide("s", i).is_some()).count();
        let observed = hits as f64 / n as f64;
        assert!(
            (observed - 0.2).abs() < 0.02,
            "observed rate {observed} too far from 0.2"
        );
    }

    #[test]
    fn kind_filtering_respects_the_set() {
        let plan = FaultPlan {
            seed: 11,
            rate: 1.0,
            kinds: FaultKinds::only(FaultKind::Panic).with(FaultKind::Oversize),
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let k = plan.decide("s", i).expect("rate 1.0 always fires");
            assert!(matches!(k, FaultKind::Panic | FaultKind::Oversize));
            seen.insert(k);
        }
        assert_eq!(seen.len(), 2, "both allowed kinds should appear");
    }

    #[test]
    fn kinds_render_in_fixed_order() {
        assert_eq!(FaultKinds::ALL.render(), "panic|malformed-expr|corrupt-kb|oversize");
        assert_eq!(FaultKinds::NONE.render(), "none");
        assert_eq!(FaultKinds::only(FaultKind::CorruptKb).render(), "corrupt-kb");
    }

    #[test]
    fn conn_plan_disabled_by_default_and_independent_of_record_plan() {
        let _g = locked();
        clear();
        assert!(!conn_enabled());
        assert_eq!(conn_fault_at("srv.conn", 0), None);
        // Installing a record plan must not enable connection faults.
        install(FaultPlan::new(7, 0.5));
        assert!(!conn_enabled());
        assert_eq!(conn_fault_at("srv.conn", 0), None);
        // And vice versa: a conn plan leaves the record injector alone.
        clear();
        install_conn(ConnPlan::new(7, 0.5));
        assert!(conn_enabled());
        assert!(!enabled());
        assert_eq!(fault_at("srv.request", 0), None);
        clear();
        assert!(!conn_enabled(), "clear() resets both plans");
    }

    #[test]
    fn conn_rate_zero_plan_never_fires() {
        let _g = locked();
        install_conn(ConnPlan::new(9, 0.0));
        assert!(!conn_enabled());
        for i in 0..1000 {
            assert_eq!(conn_fault_at("srv.conn", i), None);
        }
        clear_conn();
    }

    #[test]
    fn conn_decisions_are_deterministic_and_decorrelated_from_record_stream() {
        let conn = ConnPlan::new(0xC4A05, 0.25);
        let rec = FaultPlan::new(0xC4A05, 0.25);
        let a: Vec<_> = (0..500).map(|i| conn.decide("srv.conn", i)).collect();
        let b: Vec<_> = (0..500).map(|i| conn.decide("srv.conn", i)).collect();
        assert_eq!(a, b, "same inputs must give same decisions");
        let fired: Vec<u64> = (0..500).filter(|&i| conn.decide("srv.conn", i).is_some()).collect();
        let rec_fired: Vec<u64> = (0..500).filter(|&i| rec.decide("srv.conn", i).is_some()).collect();
        assert_ne!(fired, rec_fired, "shared seed must not correlate the two streams");
        assert!(!fired.is_empty(), "rate 0.25 over 500 connections must fire");
    }

    #[test]
    fn conn_kind_filtering_and_rate_one() {
        let plan = ConnPlan {
            seed: 11,
            rate: 1.0,
            kinds: ConnFaultKinds::only(ConnFault::Stall).with(ConnFault::AbruptClose),
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let k = plan.decide("srv.conn", i).expect("rate 1.0 always fires");
            assert!(matches!(k, ConnFault::Stall | ConnFault::AbruptClose));
            seen.insert(k);
        }
        assert_eq!(seen.len(), 2, "both allowed kinds should appear");
    }

    #[test]
    fn conn_stall_is_bounded_and_deterministic() {
        let plan = ConnPlan::new(3, 1.0);
        for i in 0..200 {
            let ms = plan.stall_ms("srv.conn", i);
            assert!((1..=8).contains(&ms), "stall {ms}ms out of bounds");
            assert_eq!(ms, plan.stall_ms("srv.conn", i));
        }
    }

    #[test]
    fn conn_kinds_render_in_fixed_order() {
        assert_eq!(ConnFaultKinds::ALL.render(), "stall|partial-write|abrupt-close");
        assert_eq!(ConnFaultKinds::NONE.render(), "none");
        assert_eq!(ConnFaultKinds::only(ConnFault::PartialWrite).render(), "partial-write");
    }

    #[test]
    fn conn_current_plan_round_trips() {
        let _g = locked();
        let plan = ConnPlan {
            seed: 321,
            rate: 0.0625,
            kinds: ConnFaultKinds::only(ConnFault::AbruptClose),
        };
        install_conn(plan);
        assert_eq!(current_conn_plan(), Some(plan));
        clear_conn();
        assert_eq!(current_conn_plan(), None);
    }

    #[test]
    fn current_plan_round_trips() {
        let _g = locked();
        let plan = FaultPlan {
            seed: 123,
            rate: 0.125,
            kinds: FaultKinds::only(FaultKind::MalformedExpr),
        };
        install(plan);
        assert_eq!(current_plan(), Some(plan));
        clear();
        assert_eq!(current_plan(), None);
    }
}
