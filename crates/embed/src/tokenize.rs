//! Bilingual tokenization shared across the framework.
//!
//! Latin-script text is split on non-alphanumeric boundaries and lowercased;
//! CJK text is split into single characters (the standard character-level
//! fallback when no segmenter is available). Digits are kept as contiguous
//! number tokens so quantity values survive tokenization.

/// A token with its byte span in the original text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The normalized token text (lowercased for Latin script).
    pub text: String,
    /// Byte offset of the token start in the input.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
    /// Token class.
    pub kind: TokenKind,
}

/// Classification of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A Latin-script word.
    Word,
    /// A single CJK character.
    Cjk,
    /// A run of ASCII digits, possibly with one decimal point.
    Number,
    /// Punctuation or symbols.
    Symbol,
}

/// True for characters in the main CJK blocks.
pub fn is_cjk(c: char) -> bool {
    matches!(c,
        '\u{4E00}'..='\u{9FFF}'   // CJK Unified Ideographs
        | '\u{3400}'..='\u{4DBF}' // Extension A
        | '\u{F900}'..='\u{FAFF}' // Compatibility Ideographs
    )
}

/// Tokenizes bilingual text into [`Token`]s with spans.
///
/// ```
/// use dim_embed::tokenize::{tokenize, TokenKind};
///
/// let toks = tokenize("LeBron身高2.06米");
/// let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(texts, vec!["lebron", "身", "高", "2.06", "米"]);
/// assert_eq!(toks[3].kind, TokenKind::Number);
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        if c.is_whitespace() {
            continue;
        }
        if is_cjk(c) {
            tokens.push(Token {
                text: c.to_string(),
                start,
                end: start + c.len_utf8(),
                kind: TokenKind::Cjk,
            });
        } else if c.is_ascii_digit() {
            let mut end = start + c.len_utf8();
            let mut text_buf = c.to_string();
            let mut seen_dot = false;
            while let Some(&(i, nc)) = chars.peek() {
                if nc.is_ascii_digit() || (nc == '.' && !seen_dot) {
                    if nc == '.' {
                        // Only treat as decimal point when followed by a digit.
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            Some(&(_, d)) if d.is_ascii_digit() => seen_dot = true,
                            _ => break,
                        }
                    }
                    text_buf.push(nc);
                    end = i + nc.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(Token { text: text_buf, start, end, kind: TokenKind::Number });
        } else if c.is_alphabetic() {
            let mut end = start + c.len_utf8();
            let mut text_buf: String = c.to_lowercase().collect();
            while let Some(&(i, nc)) = chars.peek() {
                if nc.is_alphabetic() && !is_cjk(nc) {
                    text_buf.extend(nc.to_lowercase());
                    end = i + nc.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(Token { text: text_buf, start, end, kind: TokenKind::Word });
        } else {
            tokens.push(Token {
                text: c.to_string(),
                start,
                end: start + c.len_utf8(),
                kind: TokenKind::Symbol,
            });
        }
    }
    tokens
}

/// Convenience: just the token texts.
pub fn words(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.text).collect()
}

/// Writes the *context words* of `text` — the [`TokenKind::Word`] and
/// [`TokenKind::Cjk`] token texts, in order, exactly as [`tokenize`] would
/// produce them — into a caller-provided arena instead of one `String` per
/// token. `arena` holds the lowercased word texts concatenated; `spans`
/// holds each word's byte range *within the arena*. Both buffers are
/// cleared first, so a hot loop reuses their allocations across calls.
///
/// This is the allocation-free view the unit linker's `Pr(u|c)` term runs
/// on; the equivalence with `tokenize` filtering is pinned by a test below
/// and by the linker's differential proptests.
pub fn context_words_into(text: &str, arena: &mut String, spans: &mut Vec<(usize, usize)>) {
    arena.clear();
    spans.clear();
    let mut chars = text.char_indices().peekable();
    while let Some((_, c)) = chars.next() {
        if c.is_whitespace() {
            continue;
        }
        if is_cjk(c) {
            let start = arena.len();
            arena.push(c);
            spans.push((start, arena.len()));
        } else if c.is_ascii_digit() {
            // Consume the number run (with one decimal point) exactly like
            // `tokenize`, but emit nothing: numbers are not context words.
            let mut seen_dot = false;
            while let Some(&(_, nc)) = chars.peek() {
                if nc.is_ascii_digit() {
                    chars.next();
                } else if nc == '.' && !seen_dot {
                    let mut ahead = chars.clone();
                    ahead.next();
                    match ahead.peek() {
                        Some(&(_, d)) if d.is_ascii_digit() => {
                            seen_dot = true;
                            chars.next();
                        }
                        _ => break,
                    }
                } else {
                    break;
                }
            }
        } else if c.is_alphabetic() {
            let start = arena.len();
            arena.extend(c.to_lowercase());
            while let Some(&(_, nc)) = chars.peek() {
                if nc.is_alphabetic() && !is_cjk(nc) {
                    arena.extend(nc.to_lowercase());
                    chars.next();
                } else {
                    break;
                }
            }
            spans.push((start, arena.len()));
        }
        // Symbols: single tokens in `tokenize`, never context words — skip.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_mixed_script() {
        let toks = words("小王有150千克农药 weighing 150 kg");
        assert!(toks.contains(&"千".to_string()));
        assert!(toks.contains(&"weighing".to_string()));
        assert!(toks.contains(&"150".to_string()));
    }

    #[test]
    fn decimal_numbers_stay_whole() {
        let toks = tokenize("2.06 meters and 3. dots");
        assert_eq!(toks[0].text, "2.06");
        assert_eq!(toks[0].kind, TokenKind::Number);
        // "3." keeps the 3 and emits the dot separately.
        let three = toks.iter().find(|t| t.text == "3").unwrap();
        assert_eq!(three.kind, TokenKind::Number);
    }

    #[test]
    fn spans_are_byte_accurate() {
        let text = "高2米";
        let toks = tokenize(text);
        for t in &toks {
            if t.kind != TokenKind::Word {
                assert_eq!(&text[t.start..t.end], t.text);
            }
        }
    }

    #[test]
    fn lowercases_latin() {
        assert_eq!(words("KM and Km"), vec!["km", "and", "km"]);
    }

    #[test]
    fn symbols_are_single_tokens() {
        let toks = tokenize("m/s");
        let kinds: Vec<TokenKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(kinds, vec![TokenKind::Word, TokenKind::Symbol, TokenKind::Word]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn context_words_match_tokenize_filtering() {
        let mut arena = String::new();
        let mut spans = Vec::new();
        for text in [
            "LeBron身高2.06米",
            "小王有150千克农药 weighing 150 kg",
            "it weighs 5. Then more.",
            "m/s and KM² plus 3.14159 radians",
            "",
            "   ",
            "١٢٣ Straße weiß 3万米", // non-ASCII digits/letters, CJK multiplier
        ] {
            let expected: Vec<String> = tokenize(text)
                .into_iter()
                .filter(|t| matches!(t.kind, TokenKind::Word | TokenKind::Cjk))
                .map(|t| t.text)
                .collect();
            context_words_into(text, &mut arena, &mut spans);
            let got: Vec<&str> = spans.iter().map(|&(s, e)| &arena[s..e]).collect();
            assert_eq!(got, expected, "text = {text:?}");
        }
    }
}
