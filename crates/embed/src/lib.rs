//! # dim-embed — distributional word embeddings (Word2Vec substitution)
//!
//! The paper's unit linking module (§III-B) computes `Pr(u|c)` from cosine
//! similarities between context words and stored unit keywords using
//! Word2Vec. Pretrained Word2Vec is a gated artifact, so this crate trains
//! real distributional embeddings from scratch: PPMI co-occurrence
//! statistics factorized by randomized subspace iteration. It also provides
//! the bilingual tokenizer shared across the framework.

#![warn(missing_docs)]

mod model;
pub mod tokenize;

pub use model::{cosine, EmbedConfig, EmbeddingModel, Vocab};
