//! PPMI-factorization word embeddings.
//!
//! The paper disambiguates unit mentions with Word2Vec cosine similarity
//! (§III-B). Pretrained Word2Vec vectors are a gated artifact, so this
//! module trains real distributional embeddings from scratch: window
//! co-occurrence counts → positive pointwise mutual information → a low-rank
//! factorization by randomized subspace (power) iteration. Levy & Goldberg
//! showed this family is equivalent to skip-gram with negative sampling up
//! to hyperparameters, so the cosine geometry the linker needs is preserved.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A string-interning vocabulary.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    words: Vec<String>,
    index: HashMap<String, u32>,
}

impl Vocab {
    /// Interns a word, returning its id.
    pub fn intern(&mut self, word: &str) -> u32 {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = self.words.len() as u32;
        self.words.push(word.to_string());
        self.index.insert(word.to_string(), id);
        id
    }

    /// Looks up a word's id.
    pub fn get(&self, word: &str) -> Option<u32> {
        self.index.get(word).copied()
    }

    /// The word for an id.
    pub fn word(&self, id: u32) -> &str {
        &self.words[id as usize]
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Configuration for embedding training.
#[derive(Debug, Clone, Copy)]
pub struct EmbedConfig {
    /// Context window radius.
    pub window: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Power-iteration rounds.
    pub iterations: usize,
    /// RNG seed for the random projection.
    pub seed: u64,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        EmbedConfig { window: 4, dim: 32, iterations: 4, seed: 17 }
    }
}

/// A trained embedding model: vocabulary plus unit-normalized vectors.
#[derive(Debug, Clone)]
pub struct EmbeddingModel {
    vocab: Vocab,
    dim: usize,
    /// Row-major `len × dim`, each row L2-normalized (zero rows allowed).
    vectors: Vec<f32>,
}

impl EmbeddingModel {
    /// Trains embeddings from tokenized sentences.
    pub fn train(sentences: &[Vec<String>], config: EmbedConfig) -> Self {
        let mut vocab = Vocab::default();
        let ids: Vec<Vec<u32>> = sentences
            .iter()
            .map(|s| s.iter().map(|w| vocab.intern(w)).collect())
            .collect();
        let n = vocab.len();
        if n == 0 {
            return EmbeddingModel { vocab, dim: config.dim, vectors: Vec::new() };
        }

        // Window co-occurrence counts (symmetric).
        let mut cooc: HashMap<(u32, u32), f64> = HashMap::new();
        let mut word_count = vec![0f64; n];
        let mut total = 0f64;
        for sent in &ids {
            for (i, &a) in sent.iter().enumerate() {
                word_count[a as usize] += 1.0;
                let hi = (i + config.window + 1).min(sent.len());
                for &b in &sent[i + 1..hi] {
                    *cooc.entry((a.min(b), a.max(b))).or_insert(0.0) += 1.0;
                    total += 2.0;
                }
            }
        }
        let corpus_words: f64 = word_count.iter().sum();
        if total == 0.0 || corpus_words == 0.0 {
            return EmbeddingModel { vocab, dim: config.dim, vectors: vec![0.0; n * config.dim] };
        }

        // PPMI rows: max(0, log(p(a,b) / (p(a) p(b)))).
        let mut rows: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
        for (&(a, b), &c) in &cooc {
            let pab = c * 2.0 / total;
            let pa = word_count[a as usize] / corpus_words;
            let pb = word_count[b as usize] / corpus_words;
            let pmi = (pab / (pa * pb)).ln();
            if pmi > 0.0 {
                rows[a as usize].push((b, pmi as f32));
                if a != b {
                    rows[b as usize].push((a, pmi as f32));
                }
            }
        }
        // HashMap iteration order is unspecified; sort rows so float
        // accumulation (and therefore training) is bit-deterministic.
        for row in &mut rows {
            row.sort_unstable_by_key(|&(j, _)| j);
        }

        // Randomized subspace iteration for the top-dim left singular
        // subspace of the PPMI matrix M (symmetric, so eigen-subspace).
        let d = config.dim.min(n);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut e: Vec<f32> = (0..n * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        orthonormalize(&mut e, n, d);
        for _ in 0..config.iterations {
            let tmp = spmm(&rows, &e, n, d);
            e = tmp;
            orthonormalize(&mut e, n, d);
        }
        // Scale rows by sqrt of eigenvalue proxy (norm of M·e per row block)
        // then L2-normalize each word vector for cosine use.
        let m_e = spmm(&rows, &e, n, d);
        let mut vectors = m_e;
        for row in vectors.chunks_mut(d) {
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-9 {
                for x in row {
                    *x /= norm;
                }
            }
        }
        let mut padded = vectors;
        if d < config.dim {
            // Pad to requested dim with zeros for a stable layout.
            let mut full = vec![0.0f32; n * config.dim];
            for i in 0..n {
                full[i * config.dim..i * config.dim + d]
                    .copy_from_slice(&padded[i * d..(i + 1) * d]);
            }
            padded = full;
        }
        EmbeddingModel { vocab, dim: config.dim, vectors: padded }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The vector for a word, if in vocabulary.
    pub fn vector(&self, word: &str) -> Option<&[f32]> {
        let id = self.vocab.get(word)?;
        let start = id as usize * self.dim;
        Some(&self.vectors[start..start + self.dim])
    }

    /// Cosine similarity between two words; 0 when either is OOV or has a
    /// zero vector.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        match (self.vector(a), self.vector(b)) {
            (Some(va), Some(vb)) => cosine(va, vb),
            _ => 0.0,
        }
    }

    /// Mean-of-vectors embedding for a phrase; `None` if every word is OOV.
    pub fn phrase(&self, words: &[String]) -> Option<Vec<f32>> {
        let mut acc = vec![0.0f32; self.dim];
        let mut hits = 0;
        for w in words {
            if let Some(v) = self.vector(w) {
                for (a, x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                hits += 1;
            }
        }
        if hits == 0 {
            return None;
        }
        let norm: f32 = acc.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-9 {
            for x in &mut acc {
                *x /= norm;
            }
        }
        Some(acc)
    }

    /// The `k` nearest vocabulary words to `word` by cosine.
    pub fn nearest(&self, word: &str, k: usize) -> Vec<(String, f32)> {
        let Some(v) = self.vector(word) else { return Vec::new() };
        let v = v.to_vec();
        let mut scored: Vec<(String, f32)> = (0..self.vocab.len())
            .filter(|&i| self.vocab.word(i as u32) != word)
            .map(|i| {
                let row = &self.vectors[i * self.dim..(i + 1) * self.dim];
                (self.vocab.word(i as u32).to_string(), cosine(&v, row))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

/// Cosine similarity of two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na <= 1e-12 || nb <= 1e-12 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Sparse (rows) × dense (n×d) multiply.
fn spmm(rows: &[Vec<(u32, f32)>], e: &[f32], n: usize, d: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * d];
    for (i, row) in rows.iter().enumerate() {
        let dst = &mut out[i * d..(i + 1) * d];
        for &(j, w) in row {
            let src = &e[j as usize * d..(j as usize + 1) * d];
            for (o, s) in dst.iter_mut().zip(src) {
                *o += w * s;
            }
        }
    }
    out
}

/// Modified Gram-Schmidt on the d columns of a row-major n×d matrix.
fn orthonormalize(e: &mut [f32], n: usize, d: usize) {
    for c in 0..d {
        for prev in 0..c {
            let mut dot = 0.0f32;
            for r in 0..n {
                dot += e[r * d + c] * e[r * d + prev];
            }
            for r in 0..n {
                e[r * d + c] -= dot * e[r * d + prev];
            }
        }
        let mut norm = 0.0f32;
        for r in 0..n {
            norm += e[r * d + c] * e[r * d + c];
        }
        let norm = norm.sqrt();
        if norm > 1e-9 {
            for r in 0..n {
                e[r * d + c] /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_corpus() -> Vec<Vec<String>> {
        // Two topical clusters: lengths and temperatures.
        let length = ["road", "distance", "kilometre", "long", "travel"];
        let temp = ["weather", "hot", "celsius", "temperature", "degree"];
        let mut sents = Vec::new();
        for i in 0..60 {
            let rot = |words: &[&str], k: usize| -> Vec<String> {
                words.iter().cycle().skip(k).take(4).map(|s| s.to_string()).collect()
            };
            sents.push(rot(&length, i % 5));
            sents.push(rot(&temp, i % 5));
        }
        sents
    }

    #[test]
    fn same_cluster_words_are_closer() {
        let model = EmbeddingModel::train(&toy_corpus(), EmbedConfig::default());
        let within = model.similarity("kilometre", "distance");
        let across = model.similarity("kilometre", "celsius");
        assert!(
            within > across,
            "within-cluster {within} should beat cross-cluster {across}"
        );
    }

    #[test]
    fn vectors_are_unit_norm() {
        let model = EmbeddingModel::train(&toy_corpus(), EmbedConfig::default());
        let v = model.vector("road").unwrap();
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-3, "norm {norm}");
    }

    #[test]
    fn oov_similarity_is_zero() {
        let model = EmbeddingModel::train(&toy_corpus(), EmbedConfig::default());
        assert_eq!(model.similarity("kilometre", "zebra"), 0.0);
    }

    #[test]
    fn phrase_embedding_averages() {
        let model = EmbeddingModel::train(&toy_corpus(), EmbedConfig::default());
        let phrase =
            model.phrase(&["road".to_string(), "travel".to_string()]).expect("in vocab");
        let sim = cosine(&phrase, model.vector("distance").unwrap());
        assert!(sim > 0.0);
        assert!(model.phrase(&["zzz".to_string()]).is_none());
    }

    #[test]
    fn nearest_returns_sorted_neighbours() {
        let model = EmbeddingModel::train(&toy_corpus(), EmbedConfig::default());
        let nn = model.nearest("hot", 3);
        assert_eq!(nn.len(), 3);
        for w in nn.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let a = EmbeddingModel::train(&toy_corpus(), EmbedConfig::default());
        let b = EmbeddingModel::train(&toy_corpus(), EmbedConfig::default());
        assert_eq!(a.vector("road"), b.vector("road"));
    }

    #[test]
    fn empty_corpus_is_fine() {
        let model = EmbeddingModel::train(&[], EmbedConfig::default());
        assert!(model.vocab().is_empty());
        assert!(model.vector("x").is_none());
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }
}
