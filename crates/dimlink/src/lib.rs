//! # dimlink — the unit linking module of DimKS
//!
//! Implements §III-B of the paper: candidate generation via Levenshtein
//! similarity over the naming dictionary, a frequency prior `Pr(u)`, and
//! context disambiguation `Pr(u|c)` via embedding cosine similarity against
//! stored unit keywords. Together with `dimkb` this forms the paper's
//! dimensional knowledge system (DimKS).
//!
//! The crate also ships the DimKS *text annotator* used by Algorithm 1:
//! a bilingual number scanner (ASCII decimals, Chinese numerals, mixed
//! 万/亿 forms) plus longest-match unit-mention extraction.
//!
//! The annotate/link hot path is allocation-free per sentence: candidate
//! keys are interned symbols (see `dimkb::intern`), working buffers live in
//! a per-worker [`ScratchSpace`], and the original String-based algorithm
//! survives in [`reference`] as a differential-testing oracle.

#![warn(missing_docs)]

pub mod annotate;
pub mod lev;
pub mod linker;
pub mod numparse;
pub mod reference;
pub mod scratch;

pub use annotate::{decoy_token_at, Annotator, QuantityMention};
pub use linker::{LinkResult, LinkerConfig, UnitLinker};
pub use numparse::{parse_chinese_numeral, scan_numbers, NumberMatch};
pub use scratch::ScratchSpace;
