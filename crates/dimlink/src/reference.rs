//! The retired String-based link implementation, kept verbatim as a
//! differential oracle.
//!
//! [`ReferenceLinker`] is the unit linker exactly as it was before the
//! interned hot path landed: owned-`String` candidate keys bucketed in a
//! `HashMap`, a fresh `Vec<String>` of context words per query, and
//! allocating normalization. It exists so property tests can assert that
//! [`crate::linker::UnitLinker`] is *result-equivalent* on arbitrary input —
//! any divergence is a bug in the optimized path, not a judgment call.
//!
//! Nothing outside tests should construct one; it is deliberately slow.
//! This module is excluded from the `hot-alloc` lint scope for the same
//! reason.

use crate::lev;
use crate::linker::{LinkResult, LinkerConfig};
use dim_embed::tokenize::{tokenize, TokenKind};
use dim_embed::EmbeddingModel;
use dimkb::{DimUnitKb, UnitId};
use std::collections::HashMap;
use std::sync::Arc;

/// 64-bit occupancy mask over hashed char values (the retired local copy;
/// the live one is `dimkb::intern::char_signature`).
fn char_signature(s: &str) -> u64 {
    let mut mask = 0u64;
    for c in s.chars() {
        mask |= 1u64 << (((c as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 58);
    }
    mask
}

/// The pre-interning unit linker: same scoring model, allocation-heavy
/// data layout. See the module docs for why it survives.
pub struct ReferenceLinker {
    kb: Arc<DimUnitKb>,
    embeddings: Option<EmbeddingModel>,
    config: LinkerConfig,
    /// Naming-dictionary keys bucketed by char length, each with a
    /// [`char_signature`] for the Levenshtein lower-bound pre-filter.
    keys_by_len: HashMap<usize, Vec<(String, u64)>>,
}

impl ReferenceLinker {
    /// Builds the reference linker over a KB (no memo — every query is a
    /// full recompute, which is exactly what an oracle should be).
    pub fn new(kb: Arc<DimUnitKb>, embeddings: Option<EmbeddingModel>, config: LinkerConfig) -> Self {
        let mut keys_by_len: HashMap<usize, Vec<(String, u64)>> = HashMap::new();
        for (key, _) in kb.naming_dictionary() {
            keys_by_len
                .entry(key.chars().count())
                .or_default()
                .push((key.to_string(), char_signature(key)));
        }
        // Deterministic candidate order regardless of hash-map iteration.
        for bucket in keys_by_len.values_mut() {
            bucket.sort_unstable();
        }
        ReferenceLinker { kb, embeddings, config, keys_by_len }
    }

    /// Links a mention within a context — the original algorithm, verbatim.
    pub fn link(&self, mention: &str, context: &str) -> Vec<LinkResult> {
        let mention_norm = dimkb::normalize(mention);
        if mention_norm.is_empty() {
            return Vec::new();
        }
        let mut cand: HashMap<UnitId, f64> = HashMap::new();
        for &id in self.kb.lookup(mention) {
            cand.insert(id, 1.0);
        }
        if cand.is_empty() {
            let m_len = mention_norm.chars().count();
            let m_sig = char_signature(&mention_norm);
            let radius = (m_len as f64 * (1.0 - self.config.mention_threshold)).ceil() as usize;
            let lo = m_len.saturating_sub(radius);
            let hi = m_len + radius;
            for len in lo..=hi {
                let Some(keys) = self.keys_by_len.get(&len) else { continue };
                let max_len = m_len.max(len) as f64;
                for (key, k_sig) in keys {
                    let dist_lb = (m_sig & !k_sig)
                        .count_ones()
                        .max((k_sig & !m_sig).count_ones());
                    if 1.0 - f64::from(dist_lb) / max_len < self.config.mention_threshold {
                        continue;
                    }
                    let sim = lev::similarity(&mention_norm, key);
                    if sim >= self.config.mention_threshold {
                        for &id in self.kb.lookup(key) {
                            let e = cand.entry(id).or_insert(0.0);
                            if sim > *e {
                                *e = sim;
                            }
                        }
                    }
                }
            }
        }
        if cand.is_empty() {
            return Vec::new();
        }

        let context_words: Vec<String> = tokenize(context)
            .into_iter()
            .filter(|t| matches!(t.kind, TokenKind::Word | TokenKind::Cjk))
            .map(|t| t.text)
            .collect();

        let mut results: Vec<LinkResult> = cand
            .into_iter()
            .map(|(id, mention_sim)| {
                let unit = self.kb.unit(id);
                let prior = unit.frequency;
                let context_prob = self
                    .context_probability(&context_words, &unit.keywords)
                    .max(self.config.context_floor);
                let score = mention_sim
                    * if self.config.use_prior { prior } else { 1.0 }
                    * if self.config.use_context { context_prob } else { 1.0 };
                LinkResult { unit: id, score, prior, mention_sim, context_prob }
            })
            .collect();
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.unit.cmp(&b.unit))
        });
        results.truncate(self.config.top_k);
        results
    }

    fn context_probability(&self, context_words: &[String], keywords: &[String]) -> f64 {
        if context_words.is_empty() || keywords.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for cw in context_words {
            let mut best: f64 = 0.0;
            for kw in keywords {
                let sim = if cw == kw {
                    1.0
                } else if let Some(model) = &self.embeddings {
                    f64::from(model.similarity(cw, kw)).max(0.0)
                } else {
                    0.0
                };
                if sim > best {
                    best = sim;
                }
            }
            total += best;
        }
        total / context_words.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::UnitLinker;
    use crate::scratch::ScratchSpace;

    #[test]
    fn reference_matches_optimized_on_fixed_cases() {
        let kb = DimUnitKb::shared();
        let config = LinkerConfig::default();
        let reference = ReferenceLinker::new(kb.clone(), None, config);
        let optimized = UnitLinker::new(kb, None, config);
        let mut scratch = ScratchSpace::new();
        for (mention, context) in [
            ("km", "the road is long"),
            ("KM", "the road is long"),
            ("kilometr", "distance travelled on the road"),
            ("千克", "这袋大米的重量"),
            ("平方厘米", "这块木板的面积"),
            ("dyn/cm", "surface tension of the liquid"),
            ("m", ""),
            ("mW", "laser power output"),
            ("MW", "power plant output"),
            ("qqqqzzzzqqqqzzzz", "context"),
            ("", ""),
            ("  spaced   out  ", "padding"),
            ("degree", "the angle of rotation"),
        ] {
            let want = reference.link(mention, context);
            assert_eq!(want, optimized.link(mention, context), "link({mention:?})");
            assert_eq!(
                want,
                optimized.link_with(mention, context, &mut scratch),
                "link_with({mention:?})"
            );
        }
    }
}
