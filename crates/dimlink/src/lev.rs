//! Levenshtein distance and the normalized string similarity used as
//! `Pr(u|m)` in unit linking (§III-B1 of the paper).

/// Levenshtein edit distance between two strings (by `char`).
pub fn distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b_len = b.chars().count();
    let mut prev = Vec::new();
    let mut cur = Vec::new();
    distance_with(&a, b, b_len, &mut prev, &mut cur)
}

/// [`distance`] over pre-split `a` chars and caller-owned DP rows, so hot
/// loops (the linker's fuzzy candidate scan) run the O(|a|·|b|) DP with
/// zero allocation per call. `b_len` must be `b.chars().count()` — callers
/// in the linker already know it from the length-bucketed index.
pub fn distance_with(
    a: &[char],
    b: &str,
    b_len: usize,
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> usize {
    debug_assert_eq!(b_len, b.chars().count());
    if a.is_empty() {
        return b_len;
    }
    if b_len == 0 {
        return a.len();
    }
    // DP rows have fixed length b_len + 1; every index below is j or
    // j + 1 with j < b_len, or the constant 0 / b_len endpoints.
    prev.clear();
    prev.extend(0..=b_len);
    cur.clear();
    cur.resize(b_len + 1, 0);
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1; // lint:allow(no_panic, rows are b_len + 1 long, never empty)
        for (j, cb) in b.chars().enumerate() {
            let cost = usize::from(ca != cb);
            // lint:allow(no_panic, j < b_len from enumerate over b's chars, so j + 1 <= b_len < row length)
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(prev, cur);
    }
    prev[b_len] // lint:allow(no_panic, rows are b_len + 1 long)
}

/// Normalized similarity in `[0, 1]`: `1 − dist / max(|a|, |b|)`.
/// Equal strings score 1; completely different strings score 0.
pub fn similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b_len = b.chars().count();
    let mut prev = Vec::new();
    let mut cur = Vec::new();
    similarity_with(&a, b, b_len, &mut prev, &mut cur)
}

/// [`similarity`] with caller-owned scratch (see [`distance_with`]).
pub fn similarity_with(
    a: &[char],
    b: &str,
    b_len: usize,
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> f64 {
    let max_len = a.len().max(b_len);
    if max_len == 0 {
        return 1.0;
    }
    1.0 - distance_with(a, b, b_len, prev, cur) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(distance("kitten", "sitting"), 3);
        assert_eq!(distance("", "abc"), 3);
        assert_eq!(distance("abc", ""), 3);
        assert_eq!(distance("same", "same"), 0);
    }

    #[test]
    fn unicode_is_by_char_not_byte() {
        assert_eq!(distance("千米", "厘米"), 1);
        assert_eq!(distance("米", "米"), 0);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("abc", "abc"), 1.0);
        assert_eq!(similarity("abc", "xyz"), 0.0);
        let s = similarity("meter", "metre");
        assert!(s > 0.5 && s < 1.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        for (a, b) in [("km/h", "kmh"), ("dyn/cm", "dyne/cm"), ("斤", "公斤")] {
            assert!((similarity(a, b) - similarity(b, a)).abs() < 1e-12);
        }
    }
}
