//! The DimKS text annotator: finds quantities (value + unit) in raw text
//! and links the unit mention into `DimUnitKB`.
//!
//! This is the `DimKS annotator D` of Algorithm 1: a heuristic, high-recall
//! pass — numbers are scanned (including inside device codes), the text
//! right after each number is matched against the naming dictionary
//! (longest match first, falling back to fuzzy linking), and successful
//! links become quantity mentions. Precision is then recovered by the
//! masked-LM filter and manual review stages of Algorithm 1 (see
//! `dimeval::algo1`).
//!
//! The hot path streams: candidate surfaces are slices of the input (CJK
//! prefixes) or built in a reused scratch buffer (multiword Latin phrases),
//! the context window is a borrowed slice, and all per-sentence buffers
//! live in a per-worker [`ScratchSpace`] (see
//! [`Annotator::annotate_with`] / [`Annotator::annotate_batch`]).

use crate::linker::{LinkResult, UnitLinker};
use crate::numparse::{scan_numbers_into, NumberMatch};
use crate::scratch::ScratchSpace;
use dim_embed::tokenize::is_cjk;
use dimkb::degrade::{self, BudgetExceeded, Degraded, ErrorBudget, RecordError};

// Observability (no-ops unless `dim_obs::enable()` was called).
static ANNOTATE_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("link.annotate");
static ANNOTATE_TEXTS: dim_obs::Counter = dim_obs::Counter::new("link.annotate.texts");
static ANNOTATE_MENTIONS: dim_obs::Counter = dim_obs::Counter::new("link.mentions");

/// A quantity mention found and linked in text.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantityMention {
    /// Byte span of the whole quantity (value + unit).
    pub start: usize,
    /// One past the end.
    pub end: usize,
    /// Parsed numeric value.
    pub value: f64,
    /// Byte span of the value.
    pub value_span: (usize, usize),
    /// The unit surface form as written.
    pub unit_surface: String,
    /// Byte span of the unit.
    pub unit_span: (usize, usize),
    /// Ranked candidate links (best first, never empty).
    pub links: Vec<LinkResult>,
}

impl QuantityMention {
    /// The best-linked unit.
    pub fn best_unit(&self) -> dimkb::UnitId {
        // lint:allow(no_panic, links is documented never-empty for annotator output; try_best_unit is the fallible variant)
        self.links[0].unit
    }

    /// Error-shaped [`Self::best_unit`]: the annotator never emits a mention
    /// with empty links, but hand-built or deserialized mentions may violate
    /// that — degraded-mode consumers use this instead of indexing.
    pub fn try_best_unit(&self) -> Result<dimkb::UnitId, RecordError> {
        self.links
            .first()
            .map(|l| l.unit)
            .ok_or_else(|| {
                // lint:allow(hot_alloc, error construction on the empty-links path, not the per-sentence loop)
                RecordError::Link("mention has no candidate links".to_string())
            })
    }
}

/// Chaos/quarantine site name for batch annotation.
pub const SITE_ANNOTATE: &str = "link.annotate";

/// Returns the code-like token a mention's value is embedded in, if any.
///
/// This is the decoy guard for `corpus::noise`-style tokens (`LPUI-1T`,
/// `v2.5`, `Covid-19`): a quantity whose value is immediately preceded by an
/// ASCII letter, or by a `-` that itself follows an alphanumeric, is part of
/// an identifier — linking its trailing letters to a unit (the paper's
/// `1T` → tesla failure, §IV-C1) and then converting would be garbage. The
/// classic [`Annotator::annotate`] deliberately keeps such mentions (the
/// paper's Algorithm 1 removes them with the MLM filter);
/// [`Annotator::try_annotate_batch`] quarantines the record instead so the
/// mention can never reach a unit conversion.
pub fn decoy_token_at(text: &str, m: &QuantityMention) -> Option<String> {
    let value_start = m.value_span.0;
    // Spans come from the annotator's own extraction over this same text,
    // so every slice boundary below is a valid char boundary.
    let before = text[..value_start].chars().next_back()?; // lint:allow(no_panic, value_span is a char-boundary byte offset into this text)
    let embedded = before.is_ascii_alphabetic()
        || (before == '-'
            // lint:allow(no_panic, before is the ASCII char '-' so value_start >= 1 and value_start - 1 is a boundary)
            && text[..value_start - 1]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric()));
    if !embedded {
        return None;
    }
    // Expand to the whole surrounding token for the quarantine report.
    let is_tok = |c: char| c.is_ascii_alphanumeric() || c == '-' || c == '.';
    let start = text[..value_start] // lint:allow(no_panic, value_start is a char-boundary offset, checked above)
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_tok(c))
        .last()
        .map(|(i, _)| i)
        .unwrap_or(value_start);
    let end = text[value_start..] // lint:allow(no_panic, value_start is a char-boundary offset, checked above)
        .find(|c| !is_tok(c))
        .map(|i| value_start + i)
        .unwrap_or(text.len());
    // lint:allow(no_panic, start/end come from char_indices/find over this text, so both are char boundaries with start <= end)
    Some(text[start..end].trim_end_matches(['.', '-']).to_string()) // lint:allow(hot_alloc, quarantine report construction, not the per-sentence hot loop)
}

/// The annotator: a [`UnitLinker`] plus mention-extraction heuristics.
pub struct Annotator {
    linker: UnitLinker,
    /// Maximum CJK characters tried for a unit mention.
    max_cjk_chars: usize,
    /// Maximum extra Latin words tried for multiword names.
    max_extra_words: usize,
}

impl Annotator {
    /// Wraps a linker.
    pub fn new(linker: UnitLinker) -> Self {
        Annotator { linker, max_cjk_chars: 4, max_extra_words: 2 }
    }

    /// Access to the underlying linker.
    pub fn linker(&self) -> &UnitLinker {
        &self.linker
    }

    /// Annotates text, returning all linked quantity mentions.
    ///
    /// Convenience wrapper over [`Self::annotate_with`] with a throwaway
    /// scratch space; batch callers should hold a [`ScratchSpace`] per
    /// worker instead so buffers and the link memo persist across texts.
    pub fn annotate(&self, text: &str) -> Vec<QuantityMention> {
        let mut scratch = ScratchSpace::new();
        self.annotate_with(text, &mut scratch)
    }

    /// [`Self::annotate`] against a caller-owned [`ScratchSpace`]: the
    /// number-scanner buffer, candidate builders, Levenshtein rows, and link
    /// memo are all reused across calls. Output is identical to `annotate`
    /// for the same text — the scratch is working memory, never state.
    pub fn annotate_with(&self, text: &str, scratch: &mut ScratchSpace) -> Vec<QuantityMention> {
        let _span = ANNOTATE_SPAN.span();
        ANNOTATE_TEXTS.inc();
        let mut out = Vec::new();
        // Take the match buffer out so `scratch` stays free for the trial
        // loop below (NumberMatch is Copy; the buffer goes back after).
        let mut nums = std::mem::take(&mut scratch.nums);
        scan_numbers_into(text, &mut nums);
        for &num in &nums {
            if let Some(m) = self.try_unit_after(text, num, scratch) {
                out.push(m);
            }
        }
        scratch.nums = nums;
        ANNOTATE_MENTIONS.add(out.len() as u64);
        out
    }

    /// Annotates a batch of texts, fanning the per-text work out across
    /// `par` threads with one [`ScratchSpace`] per worker. Output order
    /// matches input order and each element is exactly what
    /// [`Self::annotate`] would return — annotation reads only shared
    /// immutable state (KB, linker config) and scratch buffers are cleared
    /// per use, so neither the fan-out nor buffer reuse can change results.
    pub fn annotate_batch<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
        par: dim_par::Parallelism,
    ) -> Vec<Vec<QuantityMention>> {
        dim_par::par_map_scratch(par, texts, ScratchSpace::new, |_, text, scratch| {
            self.annotate_with(text.as_ref(), scratch)
        })
    }

    /// Degraded-mode [`Self::annotate_batch`]: each text is annotated in
    /// panic isolation, oversized records and records containing decoy
    /// tokens (see [`decoy_token_at`]) are quarantined instead of linked,
    /// and the failure fraction is checked against `budget`. With no faults
    /// every slot equals the classic `annotate` output for that text.
    pub fn try_annotate_batch<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
        par: dim_par::Parallelism,
        budget: ErrorBudget,
    ) -> Result<Degraded<Vec<QuantityMention>>, BudgetExceeded> {
        let slots =
            dim_par::try_par_map_scratch(par, texts, ScratchSpace::new, |i, text, scratch| {
                let text = text.as_ref();
                degrade::inject(SITE_ANNOTATE, i)?;
                degrade::guard_len(text.len())?;
                let mentions = self.annotate_with(text, scratch);
                if let Some(token) = mentions.iter().find_map(|m| decoy_token_at(text, m)) {
                    return Err(RecordError::Decoy(token));
                }
                Ok(mentions)
            });
        let slots = slots.into_iter().map(|slot| match slot {
            Ok(inner) => inner,
            Err(p) => Err(RecordError::Panicked(p.message)),
        });
        degrade::collect_degraded(SITE_ANNOTATE, slots, budget)
    }

    /// Attempts to read a unit mention right after a number.
    ///
    /// Candidate surfaces are tried longest-first against the naming
    /// dictionary (via the KB's interned [`dimkb::intern::LinkIndex`]), with
    /// a final fuzzy-link fallback on the shortest candidate — the same
    /// trial order as the original allocating implementation, but every
    /// candidate is a slice of `text` or a reused scratch buffer.
    fn try_unit_after(
        &self,
        text: &str,
        num: NumberMatch,
        scratch: &mut ScratchSpace,
    ) -> Option<QuantityMention> {
        let mut unit_start = num.end;
        // Allow a single space (ASCII or ideographic) between value and unit.
        let rest = &text[unit_start..]; // lint:allow(no_panic, num.end is a char-boundary offset produced by numparse over this text)
        if let Some(c) = rest.chars().next() {
            if c == ' ' || c == '\u{3000}' {
                unit_start += c.len_utf8();
            }
        }
        let rest = &text[unit_start..]; // lint:allow(no_panic, unit_start advanced by a whole char's len_utf8, still a boundary)
        let first = rest.chars().next()?;

        let idx = self.linker.kb().link_index();
        let context = context_window(text, num.start, 60);

        if is_cjk(first) {
            // Longest CJK prefix first: 平方厘米 before 厘米 before 米.
            // `cjk_ends[k]` is the byte length of the (k+1)-char prefix.
            scratch.cjk_ends.clear();
            let mut end = 0;
            for c in rest.chars().take(self.max_cjk_chars) {
                end += c.len_utf8();
                scratch.cjk_ends.push(end);
            }
            for i in (0..scratch.cjk_ends.len()).rev() {
                let cand = &rest[..scratch.cjk_ends[i]]; // lint:allow(no_panic, cjk_ends holds char-boundary prefix lengths of rest, i < len)
                if !idx.lookup(cand, &mut scratch.link.bufs.key).is_empty() {
                    let links = self.linker.link_in(cand, context, &mut scratch.link);
                    if !links.is_empty() {
                        return Some(mention(num, unit_start, cand, links, text));
                    }
                }
            }
            // Fall back to fuzzy linking of the single-char prefix.
            let cand = &rest[..scratch.cjk_ends[0]]; // lint:allow(no_panic, first is CJK so cjk_ends has at least one entry)
            let links = self.linker.link_in(cand, context, &mut scratch.link);
            if links.is_empty() {
                return None;
            }
            Some(mention(num, unit_start, cand, links, text))
        } else if first.is_ascii_alphabetic() || "°µΩ%‰′″".contains(first) {
            // A symbol run like `km/h`, `m²`, `°C`, `dyn/cm`, then
            // optionally extended by following words ("square metres").
            let run_end = rest
                .char_indices()
                .find(|&(_, c)| {
                    !(c.is_ascii_alphanumeric()
                        || "°µΩ%‰/·*^²³⁻¹-′″.".contains(c))
                })
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let run = rest[..run_end].trim_end_matches(['.', '-']); // lint:allow(no_panic, run_end is a char_indices index or rest.len(), both boundaries)
            if run.is_empty() {
                return None;
            }
            // Multiword extensions, longest first, built in the reused
            // phrase buffer. `max_extra_words` is 2; the fixed-size word
            // window keeps this loop allocation-free.
            let tail = &rest[run.len()..]; // lint:allow(no_panic, run is a trimmed prefix of rest, so run.len() is a boundary within rest)
            let mut words = [""; 4];
            let mut n_words = 0;
            for w in tail.split_whitespace().take(self.max_extra_words.min(4)) {
                words[n_words] = w; // lint:allow(no_panic, n_words < 4 by the take() bound above)
                n_words += 1;
            }
            for n in (1..=n_words).rev() {
                scratch.phrase.clear();
                scratch.phrase.push_str(run);
                for w in &words[..n] { // lint:allow(no_panic, n <= n_words <= 4)
                    scratch.phrase.push(' ');
                    scratch.phrase.push_str(w.trim_end_matches(['.', ',', ';', '!', '?']));
                }
                if !idx.lookup(&scratch.phrase, &mut scratch.link.bufs.key).is_empty() {
                    let links = self.linker.link_in(&scratch.phrase, context, &mut scratch.link);
                    if !links.is_empty() {
                        return Some(mention(num, unit_start, &scratch.phrase, links, text));
                    }
                }
            }
            // The bare run: exact trial first, then the fuzzy fallback.
            if !idx.lookup(run, &mut scratch.link.bufs.key).is_empty() {
                let links = self.linker.link_in(run, context, &mut scratch.link);
                if !links.is_empty() {
                    return Some(mention(num, unit_start, run, links, text));
                }
            }
            let links = self.linker.link_in(run, context, &mut scratch.link);
            if links.is_empty() {
                return None;
            }
            Some(mention(num, unit_start, run, links, text))
        } else {
            None // no unit-shaped text follows
        }
    }
}

/// Builds the output mention (the one place the unit surface is copied out
/// of the input text).
fn mention(
    num: NumberMatch,
    unit_start: usize,
    surface: &str,
    links: Vec<LinkResult>,
    text: &str,
) -> QuantityMention {
    let unit_end = unit_start + surface.len();
    debug_assert!(text.is_char_boundary(unit_end));
    QuantityMention {
        start: num.start,
        end: unit_end,
        value: num.value,
        value_span: (num.start, num.end),
        unit_surface: surface.to_string(), // lint:allow(hot_alloc, output construction: the mention owns its surface)
        unit_span: (unit_start, unit_end),
        links,
    }
}

/// A byte-window of context around a position, clipped to char boundaries.
/// Borrows from `text` — the annotate hot path never copies the context.
fn context_window(text: &str, pos: usize, radius: usize) -> &str {
    let mut lo = pos.saturating_sub(radius);
    while lo > 0 && !text.is_char_boundary(lo) {
        lo -= 1;
    }
    let mut hi = (pos + radius).min(text.len());
    while hi < text.len() && !text.is_char_boundary(hi) {
        hi += 1;
    }
    // lint:allow(no_panic, lo and hi are walked to char boundaries by the loops above, lo <= pos <= hi <= len)
    &text[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::LinkerConfig;
    use dimkb::DimUnitKb;

    fn annotator() -> Annotator {
        Annotator::new(UnitLinker::new(DimUnitKb::shared(), None, LinkerConfig::default()))
    }

    fn code_of(a: &Annotator, m: &QuantityMention) -> String {
        a.linker().kb().unit(m.best_unit()).code.clone()
    }

    #[test]
    fn fig1_sentence_annotates_both_quantities() {
        let a = annotator();
        let text = "LeBron James's height is 2.06 meters and Stephen Curry's height is 188 cm.";
        let ms = a.annotate(text);
        assert_eq!(ms.len(), 2, "{ms:?}");
        assert_eq!(ms[0].value, 2.06);
        assert_eq!(code_of(&a, &ms[0]), "M");
        assert_eq!(ms[1].value, 188.0);
        assert_eq!(code_of(&a, &ms[1]), "CentiM");
    }

    #[test]
    fn chinese_tight_quantities() {
        let a = annotator();
        let ms = a.annotate("小王要将150千克含药量20%的农药稀释成含药量5%的药水");
        assert!(ms.len() >= 3, "{ms:?}");
        assert_eq!(code_of(&a, &ms[0]), "KiloGM");
        assert_eq!(code_of(&a, &ms[1]), "PERCENT");
        assert_eq!(ms[0].value, 150.0);
    }

    #[test]
    fn longest_cjk_match_wins() {
        let a = annotator();
        let ms = a.annotate("面积为25平方厘米的纸片");
        assert_eq!(ms.len(), 1);
        assert_eq!(code_of(&a, &ms[0]), "CM2", "平方厘米 must not truncate to 米");
    }

    #[test]
    fn compound_symbol_links() {
        let a = annotator();
        let ms = a.annotate("表面张力为30 dyn/cm左右");
        assert_eq!(ms.len(), 1);
        assert_eq!(code_of(&a, &ms[0]), "DYN-PER-CentiM");
    }

    #[test]
    fn device_code_is_heuristically_mislinked() {
        // The paper's motivating failure: 1T inside LPUI-1T links to tesla
        // or tonne at this (pre-filter) stage — Algorithm 1's MLM stage
        // exists to remove it.
        let a = annotator();
        let ms = a.annotate("设备型号为LPUI-1T");
        assert_eq!(ms.len(), 1, "the heuristic stage should over-trigger");
        let code = code_of(&a, &ms[0]);
        assert!(code.contains('T') || code == "TONNE", "got {code}");
    }

    #[test]
    fn number_without_unit_is_skipped() {
        let a = annotator();
        let ms = a.annotate("共有25个苹果分给5个人");
        // 个 links to EACH (a count unit), which is correct behaviour.
        for m in &ms {
            assert_eq!(code_of(&a, m), "EACH");
        }
    }

    #[test]
    fn multiword_english_unit() {
        let a = annotator();
        let ms = a.annotate("a pressure of 3 standard atmosphere inside");
        assert_eq!(ms.len(), 1);
        assert_eq!(code_of(&a, &ms[0]), "ATM");
    }

    #[test]
    fn chinese_numeral_value_with_unit() {
        let a = annotator();
        let ms = a.annotate("这座桥全长三千五百米。");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, 3500.0);
        assert_eq!(code_of(&a, &ms[0]), "M");
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // One scratch space across many texts must give the same output as
        // a fresh scratch per text — buffer reuse is invisible.
        let a = annotator();
        let texts = [
            "面积为25平方厘米的纸片",
            "LeBron James's height is 2.06 meters and 188 cm.",
            "表面张力为30 dyn/cm左右",
            "a pressure of 3 standard atmosphere inside",
            "这座桥全长三千五百米。",
            "no numbers here at all",
            "共有25个苹果分给5个人",
        ];
        let mut reused = ScratchSpace::new();
        for text in texts {
            let fresh = a.annotate(text);
            let warm = a.annotate_with(text, &mut reused);
            assert_eq!(fresh, warm, "text = {text:?}");
        }
    }

    #[test]
    fn batch_matches_sequential_annotation() {
        let a = annotator();
        let texts: Vec<String> = (0..40)
            .map(|i| format!("第{i}段：全长{}米，重量是{} kg，速度为3 km/h。", i + 2, i * 3 + 1))
            .collect();
        let seq: Vec<Vec<QuantityMention>> = texts.iter().map(|t| a.annotate(t)).collect();
        for threads in [1, 2, 4] {
            let batch = a.annotate_batch(&texts, dim_par::Parallelism::new(threads));
            assert_eq!(batch, seq, "threads = {threads}");
        }
    }

    #[test]
    fn decoy_guard_flags_device_codes_not_real_quantities() {
        let a = annotator();
        // The paper's decoy: the heuristic stage links `1T`, the guard sees
        // the value is embedded in `LPUI-1T`.
        let text = "设备型号为LPUI-1T";
        let ms = a.annotate(text);
        assert_eq!(ms.len(), 1);
        assert_eq!(decoy_token_at(text, &ms[0]), Some("LPUI-1T".to_string()));
        // Version-string decoy: `v2.5` ends up as a mention only if a unit
        // follows, but the guard classifies the embedded value regardless.
        let text = "固件为v2.5米"; // adversarial: version number before a unit word
        let ms = a.annotate(text);
        if let Some(m) = ms.first() {
            assert!(decoy_token_at(text, m).is_some(), "{ms:?}");
        }
        // Real quantities are untouched.
        let text = "LeBron James's height is 2.06 meters and Stephen Curry's height is 188 cm.";
        for m in a.annotate(text) {
            assert_eq!(decoy_token_at(text, &m), None);
        }
        let text = "重量是150 kg左右";
        for m in a.annotate(text) {
            assert_eq!(decoy_token_at(text, &m), None);
        }
    }

    #[test]
    fn try_batch_quarantines_decoys_and_matches_classic_elsewhere() {
        let a = annotator();
        let texts = vec![
            "全长3000米的大桥".to_string(),
            "设备型号为LPUI-1T".to_string(),
            "表面张力为30 dyn/cm左右".to_string(),
        ];
        let classic = a.annotate_batch(&texts, dim_par::Parallelism::new(1));
        for threads in [1, 4] {
            let d = a
                .try_annotate_batch(
                    &texts,
                    dim_par::Parallelism::new(threads),
                    ErrorBudget::new(0.5),
                )
                .expect("one decoy in three records is within budget");
            assert_eq!(d.items.len(), 3);
            assert_eq!(d.items[0].as_ref(), Some(&classic[0]), "threads = {threads}");
            assert_eq!(d.items[1], None, "decoy record must be quarantined");
            assert_eq!(d.items[2].as_ref(), Some(&classic[2]));
            assert_eq!(d.quarantine.len(), 1);
            assert_eq!(d.quarantine[0].index, 1);
            assert!(d.quarantine[0].error.contains("LPUI-1T"), "{:?}", d.quarantine[0]);
        }
        // A strict budget turns the same batch into a typed abort.
        let err = a
            .try_annotate_batch(&texts, dim_par::Parallelism::new(1), ErrorBudget::strict())
            .expect_err("strict budget");
        assert_eq!((err.failed, err.total), (1, 3));
    }

    #[test]
    fn try_batch_quarantines_oversized_records() {
        let a = annotator();
        let big = "长度为3米。".repeat(6000); // ~78 KB, over the 64 KB cap
        let texts = vec!["全长3000米".to_string(), big];
        let d = a
            .try_annotate_batch(&texts, dim_par::Parallelism::new(1), ErrorBudget::new(0.5))
            .expect("within budget");
        assert!(d.items[0].is_some());
        assert_eq!(d.items[1], None);
        assert!(d.quarantine[0].error.contains("oversized"));
    }

    #[test]
    fn spans_reconstruct_surface() {
        let a = annotator();
        let text = "重量是150 kg左右";
        let ms = a.annotate(text);
        assert_eq!(ms.len(), 1);
        let m = &ms[0];
        assert_eq!(&text[m.unit_span.0..m.unit_span.1], m.unit_surface);
        assert_eq!(&text[m.value_span.0..m.value_span.1], "150");
    }
}
