//! Number scanning for bilingual text: ASCII decimals, Chinese numerals
//! (三千五百, 一点五), and mixed forms (3万, 1.5亿).

/// A number found in text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumberMatch {
    /// Byte span of the number.
    pub start: usize,
    /// One past the end byte.
    pub end: usize,
    /// Parsed value.
    pub value: f64,
}

const CN_DIGITS: &[(char, f64)] = &[
    ('零', 0.0),
    ('一', 1.0),
    ('二', 2.0),
    ('两', 2.0),
    ('三', 3.0),
    ('四', 4.0),
    ('五', 5.0),
    ('六', 6.0),
    ('七', 7.0),
    ('八', 8.0),
    ('九', 9.0),
];

fn cn_digit(c: char) -> Option<f64> {
    CN_DIGITS.iter().find(|&&(d, _)| d == c).map(|&(_, v)| v)
}

fn cn_small_unit(c: char) -> Option<f64> {
    match c {
        '十' => Some(10.0),
        '百' => Some(100.0),
        '千' => Some(1000.0),
        _ => None,
    }
}

fn cn_section_unit(c: char) -> Option<f64> {
    match c {
        '万' => Some(1e4),
        '亿' => Some(1e8),
        _ => None,
    }
}

fn is_cn_numeral(c: char) -> bool {
    cn_digit(c).is_some() || cn_small_unit(c).is_some() || cn_section_unit(c).is_some() || c == '点'
}

/// Parses a pure Chinese numeral string (already isolated), e.g.
/// `三千五百`, `十五`, `一点五`, `两百零三`. Returns `None` for invalid
/// sequences.
pub fn parse_chinese_numeral(s: &str) -> Option<f64> {
    let chars: Vec<char> = s.chars().collect();
    parse_cn(&chars)
}

/// Slice-based core of [`parse_chinese_numeral`]: the decimal split
/// recurses on the integer-part *slice* instead of re-collecting it into a
/// fresh `String`, so the hot number scanner allocates one char buffer per
/// numeral run, not two.
fn parse_cn(chars: &[char]) -> Option<f64> {
    if chars.is_empty() {
        return None;
    }
    // Split at 点 for decimals.
    if let Some(dot) = chars.iter().position(|&c| c == '点') {
        let int_part = &chars[..dot]; // lint:allow(no_panic, dot is a position() index into chars)
        let frac_part = &chars[dot + 1..]; // lint:allow(no_panic, dot < chars.len() so dot + 1 <= chars.len(), a valid range start)
        if frac_part.is_empty() {
            return None;
        }
        let int_val = if int_part.is_empty() { 0.0 } else { parse_cn(int_part)? };
        let mut frac = 0.0;
        let mut scale = 0.1;
        for &c in frac_part {
            let d = cn_digit(c)?;
            frac += d * scale;
            scale *= 0.1;
        }
        return Some(int_val + frac);
    }
    let mut total = 0.0; // completed 万/亿 sections
    let mut section = 0.0; // current section value
    let mut digit: Option<f64> = None;
    for (i, &c) in chars.iter().enumerate() {
        if let Some(d) = cn_digit(c) {
            if d == 0.0 {
                // 零 is a positional filler.
                if digit.is_some() {
                    return None;
                }
                continue;
            }
            if digit.is_some() {
                return None; // two digits in a row (e.g. 三五) — not a numeral
            }
            digit = Some(d);
        } else if let Some(mult) = cn_small_unit(c) {
            // A bare 十 means 1×10 (十五 = 15); bare 百/千 are invalid.
            let d = match digit.take() {
                Some(d) => d,
                None if c == '十' && i == 0 => 1.0,
                None => return None,
            };
            section += d * mult;
        } else if let Some(mult) = cn_section_unit(c) {
            // 万/亿 closes the current section: 两亿三千万 = 2·10⁸ + 3000·10⁴.
            section += digit.take().unwrap_or(0.0);
            if section == 0.0 {
                return None;
            }
            total += section * mult;
            section = 0.0;
        } else {
            return None;
        }
    }
    if let Some(d) = digit {
        section += d;
    }
    Some(total + section)
}

/// Scans text for all numbers (ASCII and Chinese), longest-match, with
/// trailing 万/亿 multipliers applied to ASCII numbers (`3万` = 30 000).
pub fn scan_numbers(text: &str) -> Vec<NumberMatch> {
    let mut out = Vec::new();
    scan_numbers_into(text, &mut out);
    out
}

/// [`scan_numbers`] into a caller-provided buffer (cleared first), so the
/// per-sentence annotate hot path reuses one allocation across a batch.
pub fn scan_numbers_into(text: &str, out: &mut Vec<NumberMatch>) {
    out.clear();
    let bytes = text.as_bytes();
    let mut idx = 0;
    // Every index handed to this closure is a char boundary: indices only
    // advance by whole-char len_utf8 steps from other boundaries.
    let char_at = |i: usize| text[i..].chars().next(); // lint:allow(no_panic, callers only pass char-boundary offsets <= len, see comment above)
    while idx < bytes.len() {
        let Some(c) = char_at(idx) else { break };
        if c.is_ascii_digit() {
            // ASCII number.
            let start = idx;
            let mut end = idx;
            let mut seen_dot = false;
            while let Some(nc) = char_at(end) {
                if nc.is_ascii_digit() {
                    end += 1;
                } else if nc == '.' && !seen_dot {
                    // decimal point only when followed by a digit
                    let after = char_at(end + 1);
                    if matches!(after, Some(d) if d.is_ascii_digit()) {
                        seen_dot = true;
                        end += 1;
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            // Reject digits embedded in identifiers like "LPUI-1T"?
            // No: Algorithm 1's heuristic annotator deliberately picks
            // those up; the MLM filter removes them later.
            let mut value: f64 = text[start..end].parse().unwrap_or(f64::NAN); // lint:allow(no_panic, start/end bracket a run of ASCII digits and dots, both boundaries)
            let mut full_end = end;
            // Trailing 万/亿 multipliers (only when NOT followed by another
            // CJK numeral continuing a unit like 万米 — we conservatively
            // apply the multiplier and let the unit matcher consume from
            // after it; ambiguity between 万 as count-unit and multiplier is
            // inherent and resolved by the caller trying both spans).
            if let Some(nc) = char_at(full_end) {
                if let Some(mult) = cn_section_unit(nc) {
                    value *= mult;
                    full_end += nc.len_utf8();
                }
            }
            if value.is_finite() {
                out.push(NumberMatch { start, end: full_end, value });
            }
            idx = full_end.max(end).max(idx + 1);
        } else if is_cn_numeral(c) && cn_digit(c).is_some() || c == '十' {
            // Chinese numeral run starting with a digit or 十.
            let start = idx;
            let mut end = idx;
            while let Some(nc) = char_at(end) {
                if is_cn_numeral(nc) {
                    end += nc.len_utf8();
                } else {
                    break;
                }
            }
            // lint:allow(no_panic, start/end advance by whole-char len_utf8 steps, both boundaries)
            match parse_chinese_numeral(&text[start..end]) {
                Some(v) => {
                    out.push(NumberMatch { start, end, value: v });
                    idx = end;
                }
                None => {
                    idx += c.len_utf8();
                }
            }
        } else {
            idx += c.len_utf8();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_decimals() {
        let ms = scan_numbers("height 2.06 meters, weight 98 kg");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].value, 2.06);
        assert_eq!(ms[1].value, 98.0);
    }

    #[test]
    fn chinese_numerals() {
        assert_eq!(parse_chinese_numeral("三千五百"), Some(3500.0));
        assert_eq!(parse_chinese_numeral("十五"), Some(15.0));
        assert_eq!(parse_chinese_numeral("两百零三"), Some(203.0));
        assert_eq!(parse_chinese_numeral("一点五"), Some(1.5));
        assert_eq!(parse_chinese_numeral("九"), Some(9.0));
        assert_eq!(parse_chinese_numeral("三万"), Some(30_000.0));
        assert_eq!(parse_chinese_numeral("两亿"), Some(200_000_000.0));
    }

    #[test]
    fn invalid_chinese_sequences() {
        assert_eq!(parse_chinese_numeral("三五"), None, "two adjacent digits");
        assert_eq!(parse_chinese_numeral(""), None);
        assert_eq!(parse_chinese_numeral("点"), None);
    }

    #[test]
    fn mixed_multiplier() {
        let ms = scan_numbers("人口约3万人");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, 30_000.0);
    }

    #[test]
    fn scan_chinese_in_context() {
        let ms = scan_numbers("全长三千五百米的大桥");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, 3500.0);
    }

    #[test]
    fn device_code_digits_are_scanned() {
        // Algorithm 1's *heuristic* stage deliberately over-triggers here.
        let ms = scan_numbers("型号LPUI-1T");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, 1.0);
    }

    #[test]
    fn spans_are_byte_accurate() {
        let text = "重三千五百克，长2.5米";
        for m in scan_numbers(text) {
            assert!(text.is_char_boundary(m.start) && text.is_char_boundary(m.end));
        }
    }

    #[test]
    fn decimal_point_not_sentence_period() {
        let ms = scan_numbers("it weighs 5. Then more.");
        assert_eq!(ms[0].value, 5.0);
        assert_eq!(&"it weighs 5. Then more."[ms[0].start..ms[0].end], "5");
    }
}
