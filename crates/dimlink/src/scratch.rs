//! Per-worker scratch for the annotate/link hot path.
//!
//! One [`ScratchSpace`] per worker (see `dim_par::par_map_scratch`) holds
//! every buffer the hot path used to reallocate per sentence: the number
//! scanner's match list, the candidate-phrase builder, the normalization
//! and Levenshtein DP buffers, the struct-of-arrays candidate arena, the
//! context-word arena, and a private link memo. All buffers are cleared
//! before each use — results never depend on what earlier items left
//! behind, which is the determinism contract `par_map_scratch` requires.

use crate::linker::LinkResult;
use crate::numparse::NumberMatch;
use dimkb::intern::fnv1a;
use dimkb::UnitId;
use std::collections::HashMap;

/// Upper bound on memoized `(mention, context)` link queries per memo.
/// When a memo fills up it is cleared wholesale — real corpora repeat a
/// small set of surfaces, so evictions are rare and a simple clear beats
/// LRU bookkeeping.
pub(crate) const LINK_MEMO_CAP: usize = 8192;

/// Reusable buffers and memo for the annotate/link hot path. Allocate one
/// per worker and pass it to `Annotator::annotate_with` /
/// `UnitLinker::link_with`; buffers grow to the working-set high-water mark
/// and stay there.
#[derive(Default)]
pub struct ScratchSpace {
    /// Number-scanner output buffer.
    pub(crate) nums: Vec<NumberMatch>,
    /// Byte end-offsets of CJK candidate prefixes (shortest first).
    pub(crate) cjk_ends: Vec<usize>,
    /// Multiword candidate phrase builder.
    pub(crate) phrase: String,
    /// Linker-side buffers and memo.
    pub(crate) link: LinkScratch,
}

impl ScratchSpace {
    /// An empty scratch space; buffers grow on first use.
    pub fn new() -> ScratchSpace {
        ScratchSpace::default()
    }
}

/// The linker's slice of the scratch space.
#[derive(Default)]
pub(crate) struct LinkScratch {
    /// Working buffers for one `link_core` invocation.
    pub(crate) bufs: LinkBufs,
    /// Per-worker memo (lock-free; the shared-linker entry point keeps its
    /// own `Mutex<Memo>` instead).
    pub(crate) memo: Memo,
}

/// Working buffers for candidate generation, scoring, and ranking.
#[derive(Default)]
pub(crate) struct LinkBufs {
    /// Normalization / index-lookup key buffer.
    pub(crate) key: String,
    /// Chars of the normalized mention (the Levenshtein `a` side).
    pub(crate) mention_chars: Vec<char>,
    /// Levenshtein DP rows.
    pub(crate) lev_prev: Vec<usize>,
    /// Levenshtein DP rows.
    pub(crate) lev_cur: Vec<usize>,
    /// Candidate arena, struct-of-arrays: `cand_ids[i]` scored by
    /// `cand_sims[i]` (the max mention similarity seen for that unit).
    pub(crate) cand_ids: Vec<UnitId>,
    /// Parallel to `cand_ids`.
    pub(crate) cand_sims: Vec<f64>,
    /// Ranked results of the current query.
    pub(crate) results: Vec<LinkResult>,
    /// Context words, concatenated (see `dim_embed::tokenize::context_words_into`).
    pub(crate) ctx_arena: String,
    /// Byte spans of each context word within `ctx_arena`.
    pub(crate) ctx_spans: Vec<(usize, usize)>,
}

/// Memo of `(mention, context-hash)` → ranked results, keyed by hash pair
/// with exact-string confirmation inside the bucket, so lookups hash the
/// mention instead of allocating an owned key. Purely a cache: link results
/// depend only on the KB and config, both immutable, so a hit is always
/// value-identical to a recompute.
#[derive(Default)]
pub(crate) struct Memo {
    /// `(fnv1a(mention), fnv1a(context))` → entries whose mention collided.
    map: HashMap<(u64, u64), MemoBucket>,
    /// Total entries across all buckets (the cap is on entries, not keys).
    entries: usize,
}

/// One memo hash bucket: the exact mention strings that collided on a hash
/// pair, each with its ranked results.
type MemoBucket = Vec<(String, Vec<LinkResult>)>;

impl Memo {
    /// Looks up a memoized query without allocating.
    pub(crate) fn get(&self, mention: &str, mention_hash: u64, context_hash: u64) -> Option<&Vec<LinkResult>> {
        let bucket = self.map.get(&(mention_hash, context_hash))?;
        bucket.iter().find(|(m, _)| m == mention).map(|(_, r)| r)
    }

    /// Inserts a computed query, clearing the memo wholesale at the cap.
    /// Double-inserting the same key (two workers racing on the shared
    /// memo) is harmless: `get` returns the first entry, and all entries
    /// for a key hold identical values.
    pub(crate) fn insert(&mut self, mention: &str, mention_hash: u64, context_hash: u64, results: Vec<LinkResult>) {
        if self.entries >= LINK_MEMO_CAP {
            self.map.clear();
            self.entries = 0;
        }
        self.map
            .entry((mention_hash, context_hash))
            .or_default()
            .push((mention.to_string(), results)); // lint:allow(hot_alloc, one owned key per distinct memoized query, amortized across all hits)
        self.entries += 1;
    }
}

/// FNV-1a over a string — the memo's hash, shared with the KB's symbol
/// tables so both sides agree on one function.
pub(crate) fn str_hash(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(score: f64) -> Vec<LinkResult> {
        vec![LinkResult { unit: UnitId(7), score, prior: 0.5, mention_sim: 1.0, context_prob: 0.2 }]
    }

    #[test]
    fn memo_round_trips_and_distinguishes_contexts() {
        let mut memo = Memo::default();
        let (mh, c1, c2) = (str_hash("km"), str_hash("road"), str_hash("sky"));
        assert!(memo.get("km", mh, c1).is_none());
        memo.insert("km", mh, c1, result(0.9));
        memo.insert("km", mh, c2, result(0.1));
        assert_eq!(memo.get("km", mh, c1).unwrap()[0].score, 0.9);
        assert_eq!(memo.get("km", mh, c2).unwrap()[0].score, 0.1);
        // A hash collision with a different mention string must not alias.
        assert!(memo.get("mk", mh, c1).is_none());
    }

    #[test]
    fn memo_clears_wholesale_at_cap() {
        let mut memo = Memo::default();
        for i in 0..LINK_MEMO_CAP {
            let m = format!("m{i}");
            memo.insert(&m, str_hash(&m), 0, result(i as f64));
        }
        assert_eq!(memo.entries, LINK_MEMO_CAP);
        memo.insert("overflow", str_hash("overflow"), 0, result(1.0));
        assert_eq!(memo.entries, 1, "cap clears wholesale, then readmits");
        assert!(memo.get("m0", str_hash("m0"), 0).is_none());
        assert!(memo.get("overflow", str_hash("overflow"), 0).is_some());
    }
}
