//! The unit linking module (Definition 1 of the paper).
//!
//! Given a mention `m` and context `c`, rank candidate units by
//!
//! ```text
//! ũ = argmax_u Pr(u) · Pr(u|m) · Pr(u|c)
//! ```
//!
//! where `Pr(u)` is the KB frequency prior (§III-A4), `Pr(u|m)` is the
//! normalized Levenshtein similarity between mention and the unit's surface
//! forms, and `Pr(u|c)` aggregates cosine similarities between context
//! words and the unit's stored keywords (§III-B2).

use crate::lev;
use dim_embed::tokenize::{tokenize, TokenKind};
use dim_embed::EmbeddingModel;
use dimkb::{DimUnitKb, UnitId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

// Observability (all no-ops unless `dim_obs::enable()` was called). The
// hit/miss pair measures the memo; the lev pair measures how many DP runs
// the char-signature prefilter saves.
static LINK_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("link.link");
static LINK_QUERIES: dim_obs::Counter = dim_obs::Counter::new("link.queries");
static LINK_RESULTS: dim_obs::Counter = dim_obs::Counter::new("link.results");
static MEMO_HIT: dim_obs::Counter = dim_obs::Counter::new("link.memo_hit");
static MEMO_MISS: dim_obs::Counter = dim_obs::Counter::new("link.memo_miss");
static LEV_COMPUTED: dim_obs::Counter = dim_obs::Counter::new("link.lev_computed");
static LEV_PRUNED: dim_obs::Counter = dim_obs::Counter::new("link.lev_pruned");

/// Upper bound on memoized `(mention, context)` link queries. When the memo
/// fills up it is cleared wholesale — real corpora repeat a small set of
/// surfaces, so evictions are rare and a simple clear beats LRU bookkeeping.
const LINK_MEMO_CAP: usize = 8192;

/// Memo of `(mention, context-hash)` → ranked results.
type MemoMap = HashMap<(String, u64), Vec<LinkResult>>;

/// A scored candidate from the linker.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkResult {
    /// The candidate unit.
    pub unit: UnitId,
    /// Combined confidence `Pr(u)·Pr(u|m)·Pr(u|c)`.
    pub score: f64,
    /// The frequency prior `Pr(u)`.
    pub prior: f64,
    /// The mention similarity `Pr(u|m)`.
    pub mention_sim: f64,
    /// The context probability `Pr(u|c)`.
    pub context_prob: f64,
}

/// Linker configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkerConfig {
    /// Minimum `Pr(u|m)` for a candidate to be considered.
    pub mention_threshold: f64,
    /// Maximum number of ranked results returned.
    pub top_k: usize,
    /// Smoothing floor for `Pr(u|c)` so context never zeroes a candidate.
    pub context_floor: f64,
    /// Ablation switch: include the frequency prior `Pr(u)` in the score.
    pub use_prior: bool,
    /// Ablation switch: include the context term `Pr(u|c)` in the score.
    pub use_context: bool,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        LinkerConfig {
            mention_threshold: 0.6,
            top_k: 8,
            context_floor: 0.05,
            use_prior: true,
            use_context: true,
        }
    }
}

/// The unit linker. Owns a reference to the KB and optional embeddings for
/// context disambiguation (without embeddings, `Pr(u|c)` falls back to
/// lexical keyword overlap).
pub struct UnitLinker {
    kb: Arc<DimUnitKb>,
    embeddings: Option<EmbeddingModel>,
    config: LinkerConfig,
    /// Naming-dictionary keys bucketed by char length, each with a
    /// [`char_signature`] for a Levenshtein lower-bound pre-filter.
    keys_by_len: HashMap<usize, Vec<(String, u64)>>,
    /// Memo of `(mention, context-hash)` → ranked results. Purely a cache:
    /// link results depend only on the KB and config, both immutable here.
    memo: Mutex<MemoMap>,
}

/// 64-bit occupancy mask over hashed char values. For two strings with
/// masks `m` and `k`, every bit set in `m & !k` marks a char value present
/// only in the mention — each such distinct value needs at least one edit,
/// so `max(popcount(m & !k), popcount(k & !m))` lower-bounds the
/// Levenshtein distance. Hash collisions merge bits and can only weaken
/// the bound, never overstate it.
fn char_signature(s: &str) -> u64 {
    let mut mask = 0u64;
    for c in s.chars() {
        mask |= 1u64 << (((c as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 58);
    }
    mask
}

/// FNV-1a over the context string, for the memo key.
fn context_hash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl UnitLinker {
    /// Builds a linker over a KB.
    pub fn new(kb: Arc<DimUnitKb>, embeddings: Option<EmbeddingModel>, config: LinkerConfig) -> Self {
        let mut keys_by_len: HashMap<usize, Vec<(String, u64)>> = HashMap::new();
        for (key, _) in kb.naming_dictionary() {
            keys_by_len
                .entry(key.chars().count())
                .or_default()
                .push((key.to_string(), char_signature(key)));
        }
        // Deterministic candidate order regardless of hash-map iteration.
        for bucket in keys_by_len.values_mut() {
            bucket.sort_unstable();
        }
        UnitLinker { kb, embeddings, config, keys_by_len, memo: Mutex::new(HashMap::new()) }
    }

    /// The knowledge base this linker resolves into.
    pub fn kb(&self) -> &DimUnitKb {
        &self.kb
    }

    /// Links a mention within a context, returning ranked candidates
    /// (highest confidence first). Results are memoized per
    /// `(mention, context)` pair.
    pub fn link(&self, mention: &str, context: &str) -> Vec<LinkResult> {
        LINK_QUERIES.inc();
        let key = (mention.to_string(), context_hash(context));
        if let Some(hit) = self.lock_memo().get(&key) {
            MEMO_HIT.inc();
            return hit.clone();
        }
        MEMO_MISS.inc();
        let _span = LINK_SPAN.span();
        let results = self.link_uncached(mention, context);
        LINK_RESULTS.add(results.len() as u64);
        let mut memo = self.lock_memo();
        if memo.len() >= LINK_MEMO_CAP {
            memo.clear();
        }
        memo.insert(key, results.clone());
        results
    }

    /// Locks the memo, recovering from poisoning: the memo is a pure cache
    /// of deterministic link results, so a panic caught mid-insert (the
    /// panic-isolated `par_map` unwinds through here) leaves it valid —
    /// unwrapping the poison would turn one quarantined record into a
    /// process-wide failure.
    fn lock_memo(&self) -> std::sync::MutexGuard<'_, MemoMap> {
        match self.memo.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn link_uncached(&self, mention: &str, context: &str) -> Vec<LinkResult> {
        let mention_norm = dimkb::normalize(mention);
        if mention_norm.is_empty() {
            return Vec::new();
        }
        // Candidate generation: exact hit short-circuits the fuzzy scan.
        // The raw mention goes through the KB's case-aware lookup so `MW`
        // and `mW` resolve differently; the lowercased form only drives the
        // fuzzy Levenshtein pass.
        let mut cand: HashMap<UnitId, f64> = HashMap::new();
        for &id in self.kb.lookup(mention) {
            cand.insert(id, 1.0);
        }
        if cand.is_empty() {
            let m_len = mention_norm.chars().count();
            let m_sig = char_signature(&mention_norm);
            let radius = (m_len as f64 * (1.0 - self.config.mention_threshold)).ceil() as usize;
            let lo = m_len.saturating_sub(radius);
            let hi = m_len + radius;
            for len in lo..=hi {
                let Some(keys) = self.keys_by_len.get(&len) else { continue };
                let max_len = m_len.max(len) as f64;
                for (key, k_sig) in keys {
                    // Signature lower bound: skip the O(m·n) DP when even
                    // the optimistic distance cannot reach the threshold.
                    let dist_lb = (m_sig & !k_sig)
                        .count_ones()
                        .max((k_sig & !m_sig).count_ones());
                    if 1.0 - f64::from(dist_lb) / max_len < self.config.mention_threshold {
                        LEV_PRUNED.inc();
                        continue;
                    }
                    LEV_COMPUTED.inc();
                    let sim = lev::similarity(&mention_norm, key);
                    if sim >= self.config.mention_threshold {
                        for &id in self.kb.lookup(key) {
                            let e = cand.entry(id).or_insert(0.0);
                            if sim > *e {
                                *e = sim;
                            }
                        }
                    }
                }
            }
        }
        if cand.is_empty() {
            return Vec::new();
        }

        let context_words: Vec<String> = tokenize(context)
            .into_iter()
            .filter(|t| matches!(t.kind, TokenKind::Word | TokenKind::Cjk))
            .map(|t| t.text)
            .collect();

        let mut results: Vec<LinkResult> = cand
            .into_iter()
            .map(|(id, mention_sim)| {
                let unit = self.kb.unit(id);
                let prior = unit.frequency;
                let context_prob = self
                    .context_probability(&context_words, &unit.keywords)
                    .max(self.config.context_floor);
                let score = mention_sim
                    * if self.config.use_prior { prior } else { 1.0 }
                    * if self.config.use_context { context_prob } else { 1.0 };
                LinkResult { unit: id, score, prior, mention_sim, context_prob }
            })
            .collect();
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.unit.cmp(&b.unit))
        });
        results.truncate(self.config.top_k);
        results
    }

    /// Convenience: the single best link, if any.
    pub fn best(&self, mention: &str, context: &str) -> Option<LinkResult> {
        self.link(mention, context).into_iter().next()
    }

    /// `Pr(u|c) = (1/n) Σ_i max_j sim(c_i, k_j)` (the paper's formula), with
    /// embedding cosine when available and exact-match overlap as fallback.
    fn context_probability(&self, context_words: &[String], keywords: &[String]) -> f64 {
        if context_words.is_empty() || keywords.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for cw in context_words {
            let mut best: f64 = 0.0;
            for kw in keywords {
                let sim = if cw == kw {
                    1.0
                } else if let Some(model) = &self.embeddings {
                    f64::from(model.similarity(cw, kw)).max(0.0)
                } else {
                    0.0
                };
                if sim > best {
                    best = sim;
                }
            }
            total += best;
        }
        total / context_words.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linker() -> UnitLinker {
        UnitLinker::new(DimUnitKb::shared(), None, LinkerConfig::default())
    }

    #[test]
    fn exact_symbol_links_to_unit() {
        let l = linker();
        let best = l.best("km", "the road is long").expect("km resolves");
        assert_eq!(l.kb().unit(best.unit).code, "KiloM");
        assert_eq!(best.mention_sim, 1.0);
    }

    #[test]
    fn fig1_dyn_per_cm_links() {
        let l = linker();
        let best = l.best("dyn/cm", "surface tension of the liquid").expect("resolves");
        assert_eq!(l.kb().unit(best.unit).code, "DYN-PER-CentiM");
    }

    #[test]
    fn fuzzy_typo_links() {
        let l = linker();
        let best = l.best("kilometr", "distance travelled on the road").expect("fuzzy match");
        let unit = l.kb().unit(best.unit);
        assert!(unit.label_en.contains("kilometre") || unit.aliases.iter().any(|a| a.contains("kilometer")),
            "got {}", unit.label_en);
        assert!(best.mention_sim < 1.0);
    }

    #[test]
    fn frequency_prior_breaks_ties() {
        // "m" is both metre and milli-prefix symbol clash candidates; the
        // frequent metre must win with neutral context.
        let l = linker();
        let best = l.best("m", "").expect("resolves");
        assert_eq!(l.kb().unit(best.unit).code, "M");
    }

    #[test]
    fn chinese_mention_links() {
        let l = linker();
        let best = l.best("千克", "这袋大米的重量").expect("resolves");
        assert_eq!(l.kb().unit(best.unit).code, "KiloGM");
    }

    #[test]
    fn memoized_repeat_query_is_identical() {
        let l = linker();
        let fresh = l.link("kilometr", "distance travelled on the road");
        let cached = l.link("kilometr", "distance travelled on the road");
        assert_eq!(fresh, cached);
        // A different context must not alias into the same memo entry.
        let other = l.link("kilometr", "");
        assert_eq!(other.len(), fresh.len());
    }

    #[test]
    fn garbage_mention_returns_empty() {
        let l = linker();
        assert!(l.link("qqqqzzzzqqqqzzzz", "context").is_empty());
    }

    #[test]
    fn results_are_sorted_and_bounded() {
        let l = linker();
        let results = l.link("degree", "the angle of rotation");
        assert!(results.len() <= LinkerConfig::default().top_k);
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn context_disambiguates_degree_with_embeddings() {
        // Train tiny embeddings where "angle"-context words cluster with the
        // arc-degree keywords and "weather" words with celsius keywords.
        let kb = DimUnitKb::shared();
        let mut sents: Vec<Vec<String>> = Vec::new();
        for _ in 0..40 {
            sents.push(
                ["rotation", "angle", "geometry", "compass"].iter().map(|s| s.to_string()).collect(),
            );
            sents.push(
                ["weather", "temperature", "thermometer", "forecast"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
        }
        let model = dim_embed::EmbeddingModel::train(&sents, dim_embed::EmbedConfig::default());
        let l = UnitLinker::new(kb, Some(model), LinkerConfig::default());
        let angle = l.best("degree", "rotation angle of the compass needle").unwrap();
        let weather = l.best("degree", "weather forecast temperature today").unwrap();
        let angle_unit = l.kb().unit(angle.unit).code.clone();
        let weather_unit = l.kb().unit(weather.unit).code.clone();
        assert_eq!(angle_unit, "DEG-ANGLE");
        // The weather context should shift probability mass toward Celsius
        // relative to the angle context even if the final argmax is shared.
        let celsius_in_weather = l
            .link("degree", "weather forecast temperature today")
            .iter()
            .find(|r| l.kb().unit(r.unit).code == "DEG-C")
            .map(|r| r.context_prob)
            .unwrap_or(0.0);
        let celsius_in_angle = l
            .link("degree", "rotation angle of the compass needle")
            .iter()
            .find(|r| l.kb().unit(r.unit).code == "DEG-C")
            .map(|r| r.context_prob)
            .unwrap_or(0.0);
        assert!(
            celsius_in_weather > celsius_in_angle || weather_unit == "DEG-C",
            "weather context must favour Celsius: {celsius_in_weather} vs {celsius_in_angle}"
        );
    }
}
