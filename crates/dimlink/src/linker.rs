//! The unit linking module (Definition 1 of the paper).
//!
//! Given a mention `m` and context `c`, rank candidate units by
//!
//! ```text
//! ũ = argmax_u Pr(u) · Pr(u|m) · Pr(u|c)
//! ```
//!
//! where `Pr(u)` is the KB frequency prior (§III-A4), `Pr(u|m)` is the
//! normalized Levenshtein similarity between mention and the unit's surface
//! forms, and `Pr(u|c)` aggregates cosine similarities between context
//! words and the unit's stored keywords (§III-B2).
//!
//! The hot implementation ([`UnitLinker::link_with`] / `link_core`) is
//! allocation-free per query: candidate keys are interned `Symbol(u32)`s
//! resolved through the KB's shared [`dimkb::intern::LinkIndex`], candidates
//! accumulate in a struct-of-arrays arena, and normalization, Levenshtein
//! DP rows, and context words all live in a caller-provided
//! [`crate::scratch::ScratchSpace`] reused across queries. The String-based
//! original survives as [`crate::reference`] for differential testing.

use crate::lev;
use crate::scratch::{str_hash, LinkBufs, Memo, ScratchSpace};
use dim_embed::EmbeddingModel;
use dimkb::intern::char_signature;
use dimkb::{DimUnitKb, UnitId};
use std::sync::{Arc, Mutex};

// Observability (all no-ops unless `dim_obs::enable()` was called). The
// hit/miss pair measures the memo; the lev pair measures how many DP runs
// the char-signature prefilter saves.
static LINK_SPAN: dim_obs::Histogram = dim_obs::Histogram::new("link.link");
static LINK_QUERIES: dim_obs::Counter = dim_obs::Counter::new("link.queries");
static LINK_RESULTS: dim_obs::Counter = dim_obs::Counter::new("link.results");
static MEMO_HIT: dim_obs::Counter = dim_obs::Counter::new("link.memo_hit");
static MEMO_MISS: dim_obs::Counter = dim_obs::Counter::new("link.memo_miss");
static LEV_COMPUTED: dim_obs::Counter = dim_obs::Counter::new("link.lev_computed");
static LEV_PRUNED: dim_obs::Counter = dim_obs::Counter::new("link.lev_pruned");

/// A scored candidate from the linker.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkResult {
    /// The candidate unit.
    pub unit: UnitId,
    /// Combined confidence `Pr(u)·Pr(u|m)·Pr(u|c)`.
    pub score: f64,
    /// The frequency prior `Pr(u)`.
    pub prior: f64,
    /// The mention similarity `Pr(u|m)`.
    pub mention_sim: f64,
    /// The context probability `Pr(u|c)`.
    pub context_prob: f64,
}

/// Linker configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkerConfig {
    /// Minimum `Pr(u|m)` for a candidate to be considered.
    pub mention_threshold: f64,
    /// Maximum number of ranked results returned.
    pub top_k: usize,
    /// Smoothing floor for `Pr(u|c)` so context never zeroes a candidate.
    pub context_floor: f64,
    /// Ablation switch: include the frequency prior `Pr(u)` in the score.
    pub use_prior: bool,
    /// Ablation switch: include the context term `Pr(u|c)` in the score.
    pub use_context: bool,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        LinkerConfig {
            mention_threshold: 0.6,
            top_k: 8,
            context_floor: 0.05,
            use_prior: true,
            use_context: true,
        }
    }
}

/// The unit linker. Owns a reference to the KB and optional embeddings for
/// context disambiguation (without embeddings, `Pr(u|c)` falls back to
/// lexical keyword overlap). Candidate tables live in the KB's shared
/// [`dimkb::intern::LinkIndex`] — constructing a linker is cheap.
pub struct UnitLinker {
    kb: Arc<DimUnitKb>,
    embeddings: Option<EmbeddingModel>,
    config: LinkerConfig,
    /// Shared memo for the lock-taking [`Self::link`] entry point. The
    /// scratch-based [`Self::link_with`] uses its worker's private memo
    /// instead. Purely a cache: link results depend only on the KB and
    /// config, both immutable here.
    memo: Mutex<Memo>,
}

impl UnitLinker {
    /// Builds a linker over a KB.
    pub fn new(kb: Arc<DimUnitKb>, embeddings: Option<EmbeddingModel>, config: LinkerConfig) -> Self {
        // Force the shared index now so the first link query (possibly on a
        // worker thread mid-batch) doesn't pay the build.
        let _ = kb.link_index();
        UnitLinker { kb, embeddings, config, memo: Mutex::new(Memo::default()) }
    }

    /// The knowledge base this linker resolves into.
    pub fn kb(&self) -> &DimUnitKb {
        &self.kb
    }

    /// This linker's configuration.
    pub fn config(&self) -> &LinkerConfig {
        &self.config
    }

    /// The embedding model used for context disambiguation, if any.
    pub fn embeddings(&self) -> Option<&EmbeddingModel> {
        self.embeddings.as_ref()
    }

    /// Links a mention within a context, returning ranked candidates
    /// (highest confidence first). Results are memoized per
    /// `(mention, context)` pair in a process-shared memo; batch hot paths
    /// use [`Self::link_with`] with per-worker scratch instead.
    pub fn link(&self, mention: &str, context: &str) -> Vec<LinkResult> {
        LINK_QUERIES.inc();
        let (mhash, chash) = (str_hash(mention), str_hash(context));
        if let Some(hit) = self.lock_memo().get(mention, mhash, chash) {
            MEMO_HIT.inc();
            return hit.clone(); // lint:allow(hot_alloc, memo hits must hand out an owned copy; the shared entry point is not the batch hot path)
        }
        MEMO_MISS.inc();
        let _span = LINK_SPAN.span();
        let mut bufs = LinkBufs::default();
        self.link_core(mention, context, &mut bufs);
        LINK_RESULTS.add(bufs.results.len() as u64);
        let results = std::mem::take(&mut bufs.results);
        self.lock_memo().insert(mention, mhash, chash, results.clone()); // lint:allow(hot_alloc, one owned copy per distinct query enters the memo)
        results
    }

    /// [`Self::link`] against a per-worker [`ScratchSpace`]: no lock, no
    /// allocation on a memo hit beyond the returned `Vec`, and all working
    /// buffers reused across queries. Returns exactly what `link` returns
    /// for the same inputs (the memo is private to the scratch, but link
    /// results are a pure function of `(mention, context)`).
    pub fn link_with(&self, mention: &str, context: &str, scratch: &mut ScratchSpace) -> Vec<LinkResult> {
        self.link_in(mention, context, &mut scratch.link)
    }

    /// Crate-internal core of [`Self::link_with`], taking just the linker's
    /// slice of the scratch so the annotator can hold disjoint borrows of
    /// its own scratch fields (candidate buffers) across the call.
    pub(crate) fn link_in(
        &self,
        mention: &str,
        context: &str,
        ls: &mut crate::scratch::LinkScratch,
    ) -> Vec<LinkResult> {
        LINK_QUERIES.inc();
        let (mhash, chash) = (str_hash(mention), str_hash(context));
        if let Some(hit) = ls.memo.get(mention, mhash, chash) {
            MEMO_HIT.inc();
            return hit.clone(); // lint:allow(hot_alloc, the ranked result Vec is the query's output and must be owned)
        }
        MEMO_MISS.inc();
        let _span = LINK_SPAN.span();
        self.link_core(mention, context, &mut ls.bufs);
        LINK_RESULTS.add(ls.bufs.results.len() as u64);
        let results = ls.bufs.results.clone(); // lint:allow(hot_alloc, output construction: one owned Vec per memo miss)
        ls.memo.insert(mention, mhash, chash, results.clone()); // lint:allow(hot_alloc, one owned copy per distinct query enters the memo)
        results
    }

    /// Locks the shared memo, recovering from poisoning: the memo is a pure
    /// cache of deterministic link results, so a panic caught mid-insert
    /// (the panic-isolated `par_map` unwinds through here) leaves it valid —
    /// unwrapping the poison would turn one quarantined record into a
    /// process-wide failure.
    fn lock_memo(&self) -> std::sync::MutexGuard<'_, Memo> {
        match self.memo.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The interned link query: leaves the ranked results in
    /// `bufs.results`. Result-equivalent to [`crate::reference::link_reference`]
    /// (the retired String-based implementation), which the differential
    /// proptests pin down.
    fn link_core(&self, mention: &str, context: &str, bufs: &mut LinkBufs) {
        bufs.results.clear();
        let idx = self.kb.link_index();
        dimkb::normalize_into(mention, &mut bufs.key);
        if bufs.key.is_empty() {
            return;
        }
        bufs.mention_chars.clear();
        bufs.mention_chars.extend(bufs.key.chars());
        let m_sig = char_signature(&bufs.key);

        // Candidate generation: exact hit short-circuits the fuzzy scan.
        // The raw mention goes through the index's case-aware lookup so `MW`
        // and `mW` resolve differently; the lowercased form only drives the
        // fuzzy Levenshtein pass. (`key` is free again: `lookup` reuses it
        // as its normalization buffer.)
        bufs.cand_ids.clear();
        bufs.cand_sims.clear();
        for &id in idx.lookup(mention, &mut bufs.key) {
            bufs.cand_ids.push(id);
            bufs.cand_sims.push(1.0);
        }
        if bufs.cand_ids.is_empty() {
            let m_len = bufs.mention_chars.len();
            let radius = (m_len as f64 * (1.0 - self.config.mention_threshold)).ceil() as usize;
            let lo = m_len.saturating_sub(radius);
            let hi = m_len + radius;
            for len in lo..=hi {
                let Some(bucket) = idx.bucket(len) else { continue };
                let max_len = m_len.max(len) as f64;
                for (slot, &sym) in bucket.syms.iter().enumerate() {
                    // Signature lower bound: skip the O(m·n) DP when even
                    // the optimistic distance cannot reach the threshold.
                    let k_sig = bucket.sigs[slot]; // lint:allow(no_panic, sigs is parallel to syms by LenBucket construction)
                    let dist_lb = (m_sig & !k_sig)
                        .count_ones()
                        .max((k_sig & !m_sig).count_ones());
                    if 1.0 - f64::from(dist_lb) / max_len < self.config.mention_threshold {
                        LEV_PRUNED.inc();
                        continue;
                    }
                    LEV_COMPUTED.inc();
                    let sim = lev::similarity_with(
                        &bufs.mention_chars,
                        idx.key(sym),
                        len,
                        &mut bufs.lev_prev,
                        &mut bufs.lev_cur,
                    );
                    if sim >= self.config.mention_threshold {
                        for &id in idx.fuzzy_units(sym) {
                            // Dedup-max over the SoA arena: candidate sets
                            // are small (a handful of near keys), so a
                            // linear scan beats hashing.
                            match bufs.cand_ids.iter().position(|&x| x == id) {
                                Some(p) => {
                                    if sim > bufs.cand_sims[p] { // lint:allow(no_panic, cand_sims is parallel to cand_ids, p from position())
                                        bufs.cand_sims[p] = sim; // lint:allow(no_panic, same parallel-arena bound as above)
                                    }
                                }
                                None => {
                                    bufs.cand_ids.push(id);
                                    bufs.cand_sims.push(sim);
                                }
                            }
                        }
                    }
                }
            }
        }
        if bufs.cand_ids.is_empty() {
            return;
        }

        dim_embed::tokenize::context_words_into(context, &mut bufs.ctx_arena, &mut bufs.ctx_spans);

        for (i, &id) in bufs.cand_ids.iter().enumerate() {
            let mention_sim = bufs.cand_sims[i]; // lint:allow(no_panic, cand_sims is parallel to cand_ids by arena construction)
            let unit = self.kb.unit(id);
            let prior = unit.frequency;
            let context_prob = self
                .context_probability(&bufs.ctx_arena, &bufs.ctx_spans, &unit.keywords)
                .max(self.config.context_floor);
            let score = mention_sim
                * if self.config.use_prior { prior } else { 1.0 }
                * if self.config.use_context { context_prob } else { 1.0 };
            bufs.results.push(LinkResult { unit: id, score, prior, mention_sim, context_prob });
        }
        // (score desc, unit asc) is a total order, so the ranking is
        // independent of arena insertion order — the determinism argument
        // for matching the reference implementation's HashMap iteration.
        bufs.results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.unit.cmp(&b.unit))
        });
        bufs.results.truncate(self.config.top_k);
    }

    /// Convenience: the single best link, if any.
    pub fn best(&self, mention: &str, context: &str) -> Option<LinkResult> {
        self.link(mention, context).into_iter().next()
    }

    /// `Pr(u|c) = (1/n) Σ_i max_j sim(c_i, k_j)` (the paper's formula), with
    /// embedding cosine when available and exact-match overlap as fallback.
    /// Context words arrive as spans into an arena (see
    /// `dim_embed::tokenize::context_words_into`) instead of owned strings.
    fn context_probability(
        &self,
        ctx_arena: &str,
        ctx_spans: &[(usize, usize)],
        keywords: &[String],
    ) -> f64 {
        if ctx_spans.is_empty() || keywords.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &(s, e) in ctx_spans {
            let cw = &ctx_arena[s..e]; // lint:allow(no_panic, spans index the arena they were written into by context_words_into)
            let mut best: f64 = 0.0;
            for kw in keywords {
                let sim = if cw == kw.as_str() {
                    1.0
                } else if let Some(model) = &self.embeddings {
                    f64::from(model.similarity(cw, kw)).max(0.0)
                } else {
                    0.0
                };
                if sim > best {
                    best = sim;
                }
            }
            total += best;
        }
        total / ctx_spans.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linker() -> UnitLinker {
        UnitLinker::new(DimUnitKb::shared(), None, LinkerConfig::default())
    }

    #[test]
    fn exact_symbol_links_to_unit() {
        let l = linker();
        let best = l.best("km", "the road is long").expect("km resolves");
        assert_eq!(l.kb().unit(best.unit).code, "KiloM");
        assert_eq!(best.mention_sim, 1.0);
    }

    #[test]
    fn fig1_dyn_per_cm_links() {
        let l = linker();
        let best = l.best("dyn/cm", "surface tension of the liquid").expect("resolves");
        assert_eq!(l.kb().unit(best.unit).code, "DYN-PER-CentiM");
    }

    #[test]
    fn fuzzy_typo_links() {
        let l = linker();
        let best = l.best("kilometr", "distance travelled on the road").expect("fuzzy match");
        let unit = l.kb().unit(best.unit);
        assert!(unit.label_en.contains("kilometre") || unit.aliases.iter().any(|a| a.contains("kilometer")),
            "got {}", unit.label_en);
        assert!(best.mention_sim < 1.0);
    }

    #[test]
    fn frequency_prior_breaks_ties() {
        // "m" is both metre and milli-prefix symbol clash candidates; the
        // frequent metre must win with neutral context.
        let l = linker();
        let best = l.best("m", "").expect("resolves");
        assert_eq!(l.kb().unit(best.unit).code, "M");
    }

    #[test]
    fn chinese_mention_links() {
        let l = linker();
        let best = l.best("千克", "这袋大米的重量").expect("resolves");
        assert_eq!(l.kb().unit(best.unit).code, "KiloGM");
    }

    #[test]
    fn memoized_repeat_query_is_identical() {
        let l = linker();
        let fresh = l.link("kilometr", "distance travelled on the road");
        let cached = l.link("kilometr", "distance travelled on the road");
        assert_eq!(fresh, cached);
        // A different context must not alias into the same memo entry.
        let other = l.link("kilometr", "");
        assert_eq!(other.len(), fresh.len());
    }

    #[test]
    fn scratch_link_matches_shared_link() {
        let l = linker();
        let mut scratch = ScratchSpace::new();
        for (mention, context) in [
            ("km", "the road is long"),
            ("kilometr", "distance travelled on the road"),
            ("千克", "这袋大米的重量"),
            ("dyn/cm", "surface tension of the liquid"),
            ("m", ""),
            ("qqqqzzzzqqqqzzzz", "context"),
            ("", "empty mention"),
            ("degree", "the angle of rotation"),
        ] {
            let shared = l.link(mention, context);
            let scratched = l.link_with(mention, context, &mut scratch);
            assert_eq!(shared, scratched, "mention = {mention:?}");
            // And again through the warm memo.
            let memo_hit = l.link_with(mention, context, &mut scratch);
            assert_eq!(shared, memo_hit, "memo hit for {mention:?}");
        }
    }

    #[test]
    fn garbage_mention_returns_empty() {
        let l = linker();
        assert!(l.link("qqqqzzzzqqqqzzzz", "context").is_empty());
    }

    #[test]
    fn results_are_sorted_and_bounded() {
        let l = linker();
        let results = l.link("degree", "the angle of rotation");
        assert!(results.len() <= LinkerConfig::default().top_k);
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn context_disambiguates_degree_with_embeddings() {
        // Train tiny embeddings where "angle"-context words cluster with the
        // arc-degree keywords and "weather" words with celsius keywords.
        let kb = DimUnitKb::shared();
        let mut sents: Vec<Vec<String>> = Vec::new();
        for _ in 0..40 {
            sents.push(
                ["rotation", "angle", "geometry", "compass"].iter().map(|s| s.to_string()).collect(),
            );
            sents.push(
                ["weather", "temperature", "thermometer", "forecast"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
        }
        let model = dim_embed::EmbeddingModel::train(&sents, dim_embed::EmbedConfig::default());
        let l = UnitLinker::new(kb, Some(model), LinkerConfig::default());
        let angle = l.best("degree", "rotation angle of the compass needle").unwrap();
        let weather = l.best("degree", "weather forecast temperature today").unwrap();
        let angle_unit = l.kb().unit(angle.unit).code.clone();
        let weather_unit = l.kb().unit(weather.unit).code.clone();
        assert_eq!(angle_unit, "DEG-ANGLE");
        // The weather context should shift probability mass toward Celsius
        // relative to the angle context even if the final argmax is shared.
        let celsius_in_weather = l
            .link("degree", "weather forecast temperature today")
            .iter()
            .find(|r| l.kb().unit(r.unit).code == "DEG-C")
            .map(|r| r.context_prob)
            .unwrap_or(0.0);
        let celsius_in_angle = l
            .link("degree", "rotation angle of the compass needle")
            .iter()
            .find(|r| l.kb().unit(r.unit).code == "DEG-C")
            .map(|r| r.context_prob)
            .unwrap_or(0.0);
        assert!(
            celsius_in_weather > celsius_in_angle || weather_unit == "DEG-C",
            "weather context must favour Celsius: {celsius_in_weather} vs {celsius_in_angle}"
        );
    }
}
