//! Built-vs-snapshot differential battery for the linking stack: a linker
//! or annotator over the snapshot-loaded KB must produce exactly the same
//! results as one over the freshly built KB — the snapshot stores every
//! derived index (naming dictionaries, interners, fuzzy prefilter), so any
//! divergence means a codec bug, not a tolerance.

use dimkb::DimUnitKb;
use dimlink::{Annotator, LinkerConfig, ScratchSpace, UnitLinker};
use proptest::prelude::*;

fn built_linker() -> UnitLinker {
    UnitLinker::new(DimUnitKb::shared(), None, LinkerConfig::default())
}

fn snap_linker() -> UnitLinker {
    UnitLinker::new(DimUnitKb::shared_snap(), None, LinkerConfig::default())
}

#[test]
fn link_matches_on_curated_mentions() {
    let built = built_linker();
    let snapped = snap_linker();
    let mut scratch = ScratchSpace::new();
    let cases: &[(&str, &str)] = &[
        ("km", "the road is 12 km long"),
        ("kilometre", ""),
        ("千米", "全程约三千米"),
        ("mW", "laser output of 5 mW"),
        ("MW", "a 5 MW turbine"),
        ("t", "a 3 t truck"),
        ("T", "a 3 T magnet"),
        ("dyn/cm", "surface tension in dyn/cm"),
        ("kilometer", "spelling variant"),
        ("kilmetre", "typo goes through the fuzzy prefilter"),
        ("degree", "an angle of one degree"),
        ("°C", "water boils at 100 °C"),
        ("light year", "4.2 light year away"),
        ("nonsense-unit", "no such thing"),
        ("", ""),
    ];
    for (mention, context) in cases {
        assert_eq!(
            built.link(mention, context),
            snapped.link(mention, context),
            "link({mention:?}, {context:?}) must match built KB"
        );
        assert_eq!(
            built.link(mention, context),
            snapped.link_with(mention, context, &mut scratch),
            "link_with({mention:?}) must match built KB"
        );
    }
}

#[test]
fn annotate_batch_matches_at_widths_1_and_4() {
    let built = Annotator::new(built_linker());
    let snapped = Annotator::new(snap_linker());
    let texts: Vec<&str> = vec![
        "The pipe carries 30 L/s at 2.5 bar.",
        "全长约120千米，限速80公里每小时。",
        "A 5 mW laser and a 5 MW plant.",
        "Dose was 20 mg/kg twice daily.",
        "Surface tension of 72 dyn/cm at 25 °C.",
        "no quantities here at all",
        "",
        "3 t of cargo in a 3 T field",
    ];
    for par in [1usize, 4] {
        assert_eq!(
            built.annotate_batch(&texts, dim_par::Parallelism::new(par)),
            snapped.annotate_batch(&texts, dim_par::Parallelism::new(par)),
            "annotate_batch at width {par} must match built KB"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary mentions and contexts link identically through the
    /// snapshot-loaded KB.
    #[test]
    fn link_matches_on_arbitrary_utf8(
        mention in "\\PC{0,24}",
        context in "\\PC{0,48}",
    ) {
        let built = built_linker();
        let snapped = snap_linker();
        prop_assert_eq!(
            built.link(&mention, &context),
            snapped.link(&mention, &context)
        );
    }

    /// Arbitrary sentence batches annotate identically at widths 1 and 4.
    #[test]
    fn annotate_batch_matches_on_arbitrary_texts(
        texts in prop::collection::vec("\\PC{0,48}", 0..8)
    ) {
        let built = Annotator::new(built_linker());
        let snapped = Annotator::new(snap_linker());
        for par in [1usize, 4] {
            prop_assert_eq!(
                built.annotate_batch(&texts, dim_par::Parallelism::new(par)),
                snapped.annotate_batch(&texts, dim_par::Parallelism::new(par))
            );
        }
    }
}
